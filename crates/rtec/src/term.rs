//! First-order terms, bindings and unification.
//!
//! Terms are the universal currency of the crate: event patterns, fluents,
//! fluent values, background facts and arithmetic expressions are all
//! [`Term`]s. Names are interned [`Symbol`]s; see [`crate::symbol`].

use crate::symbol::{Symbol, SymbolTable};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A first-order term.
///
/// Prolog lists are given their own variant rather than being encoded as
/// `'.'/2` chains; this keeps the similarity metric's tree representation
/// (paper Definition 4.7) aligned with how humans read a rule.
#[derive(Clone, Debug)]
pub enum Term {
    /// A logic variable, e.g. `Vessel`.
    Var(Symbol),
    /// A constant, e.g. `fishing`.
    Atom(Symbol),
    /// An integer constant, e.g. a time-point.
    Int(i64),
    /// A floating-point constant, e.g. a speed threshold.
    Float(f64),
    /// A compound term `functor(arg1, ..., argk)` with `k >= 1`.
    Compound(Symbol, Vec<Term>),
    /// A Prolog list `[t1, ..., tk]`.
    List(Vec<Term>),
}

impl Term {
    /// Builds a compound term; collapses to [`Term::Atom`] when `args` is empty.
    pub fn compound(functor: Symbol, args: Vec<Term>) -> Term {
        if args.is_empty() {
            Term::Atom(functor)
        } else {
            Term::Compound(functor, args)
        }
    }

    /// The functor symbol of an atom or compound term.
    pub fn functor(&self) -> Option<Symbol> {
        match self {
            Term::Atom(s) | Term::Compound(s, _) => Some(*s),
            _ => None,
        }
    }

    /// The arity: 0 for atoms/numbers/variables, `k` for compounds and lists.
    pub fn arity(&self) -> usize {
        match self {
            Term::Compound(_, args) => args.len(),
            Term::List(items) => items.len(),
            _ => 0,
        }
    }

    /// The `(functor, arity)` signature of an atom or compound term.
    pub fn signature(&self) -> Option<(Symbol, usize)> {
        self.functor().map(|f| (f, self.arity()))
    }

    /// Argument slice for compounds and lists; empty otherwise.
    pub fn args(&self) -> &[Term] {
        match self {
            Term::Compound(_, args) => args,
            Term::List(items) => items,
            _ => &[],
        }
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Atom(_) | Term::Int(_) | Term::Float(_) => true,
            Term::Compound(_, args) => args.iter().all(Term::is_ground),
            Term::List(items) => items.iter().all(Term::is_ground),
        }
    }

    /// Whether the term is a number (integer or float).
    pub fn is_number(&self) -> bool {
        matches!(self, Term::Int(_) | Term::Float(_))
    }

    /// Numeric value of an [`Term::Int`] or [`Term::Float`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Int(i) => Some(*i as f64),
            Term::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Collects the variables of the term, in depth-first left-to-right
    /// order, with duplicates.
    pub fn variables_into(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Compound(_, args) => args.iter().for_each(|a| a.variables_into(out)),
            Term::List(items) => items.iter().for_each(|a| a.variables_into(out)),
            _ => {}
        }
    }

    /// The distinct variables of the term, in first-occurrence order.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut all = Vec::new();
        self.variables_into(&mut all);
        let mut seen = Vec::new();
        for v in all {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// Applies `bindings`, replacing bound variables with their values.
    /// Unbound variables are left in place.
    pub fn apply(&self, bindings: &Bindings) -> Term {
        match self {
            Term::Var(v) => bindings
                .lookup(*v)
                .map(|t| t.apply(bindings))
                .unwrap_or_else(|| self.clone()),
            Term::Compound(f, args) => {
                Term::Compound(*f, args.iter().map(|a| a.apply(bindings)).collect())
            }
            Term::List(items) => Term::List(items.iter().map(|a| a.apply(bindings)).collect()),
            _ => self.clone(),
        }
    }

    /// Renders the term against a symbol table.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> TermDisplay<'a> {
        TermDisplay {
            term: self,
            symbols,
        }
    }
}

impl PartialEq for Term {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Term::Var(a), Term::Var(b)) => a == b,
            (Term::Atom(a), Term::Atom(b)) => a == b,
            (Term::Int(a), Term::Int(b)) => a == b,
            // Bit-level equality so that Term can be a hash-map key; NaN
            // never appears in well-formed event descriptions.
            (Term::Float(a), Term::Float(b)) => a.to_bits() == b.to_bits(),
            (Term::Compound(f, a), Term::Compound(g, b)) => f == g && a == b,
            (Term::List(a), Term::List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Term {}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Term::Var(s) | Term::Atom(s) => s.hash(state),
            Term::Int(i) => i.hash(state),
            Term::Float(f) => f.to_bits().hash(state),
            Term::Compound(f, args) => {
                f.hash(state);
                args.hash(state);
            }
            Term::List(items) => items.hash(state),
        }
    }
}

/// A ground fluent-value pair, used as the key of recognition results.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundFvp {
    /// The ground fluent term, e.g. `withinArea(v42, fishing)`.
    pub fluent: Term,
    /// The ground value term, e.g. `true`.
    pub value: Term,
}

impl GroundFvp {
    /// Creates a ground FVP; returns `None` if either part has variables.
    pub fn new(fluent: Term, value: Term) -> Option<GroundFvp> {
        if fluent.is_ground() && value.is_ground() {
            Some(GroundFvp { fluent, value })
        } else {
            None
        }
    }

    /// Renders the FVP as `fluent=value` against a symbol table.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> String {
        format!(
            "{}={}",
            self.fluent.display(symbols),
            self.value.display(symbols)
        )
    }
}

/// A substitution: an ordered set of `variable -> term` pairs.
///
/// Bindings are tiny (rules rarely have more than ten variables), so a
/// vector with linear lookup beats a hash map here.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bindings {
    pairs: Vec<(Symbol, Term)>,
}

impl Bindings {
    /// An empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bound value of `var`, if any.
    pub fn lookup(&self, var: Symbol) -> Option<&Term> {
        self.pairs.iter().find(|(v, _)| *v == var).map(|(_, t)| t)
    }

    /// Binds `var` to `value`.
    ///
    /// # Panics
    /// Panics in debug builds if `var` is already bound; unification must
    /// check for existing bindings first.
    pub fn bind(&mut self, var: Symbol, value: Term) {
        debug_assert!(self.lookup(var).is_none(), "variable already bound");
        self.pairs.push((var, value));
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Truncates to the first `n` bindings — used to undo speculative
    /// bindings after a failed unification branch.
    pub fn truncate(&mut self, n: usize) {
        self.pairs.truncate(n);
    }

    /// Iterates over `(variable, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Term)> {
        self.pairs.iter().map(|(v, t)| (*v, t))
    }
}

/// Unifies `pattern` (which may contain variables) against `fact`,
/// extending `bindings` in place. On failure the bindings are restored to
/// their prior state and `false` is returned.
///
/// `fact` is typically ground (an input event or a background fact) but the
/// implementation is a full syntactic one-sided match: variables in `fact`
/// are treated as constants, which suffices because facts in RTEC streams
/// and background knowledge are ground.
pub fn match_term(pattern: &Term, fact: &Term, bindings: &mut Bindings) -> bool {
    let mark = bindings.len();
    if match_inner(pattern, fact, bindings) {
        true
    } else {
        bindings.truncate(mark);
        false
    }
}

fn match_inner(pattern: &Term, fact: &Term, bindings: &mut Bindings) -> bool {
    match pattern {
        Term::Var(v) => {
            if let Some(bound) = bindings.lookup(*v).cloned() {
                match_inner(&bound, fact, bindings)
            } else {
                bindings.bind(*v, fact.clone());
                true
            }
        }
        Term::Atom(a) => matches!(fact, Term::Atom(b) if a == b),
        Term::Int(i) => match fact {
            Term::Int(j) => i == j,
            Term::Float(f) => (*i as f64) == *f,
            _ => false,
        },
        Term::Float(x) => match fact {
            Term::Float(y) => x == y,
            Term::Int(j) => *x == (*j as f64),
            _ => false,
        },
        Term::Compound(f, args) => match fact {
            Term::Compound(g, fargs) if f == g && args.len() == fargs.len() => args
                .iter()
                .zip(fargs)
                .all(|(p, q)| match_inner(p, q, bindings)),
            _ => false,
        },
        Term::List(items) => match fact {
            Term::List(fitems) if items.len() == fitems.len() => items
                .iter()
                .zip(fitems)
                .all(|(p, q)| match_inner(p, q, bindings)),
            _ => false,
        },
    }
}

/// Re-interns `term` from one symbol table into another, preserving
/// structure. Used to feed an input stream built against one event
/// description into an engine compiled from another (e.g. running the same
/// maritime stream against the gold-standard and an LLM-generated
/// description). For bulk translation use [`SymbolMapper`], which
/// memoises the per-symbol name lookups.
pub fn translate(term: &Term, from: &SymbolTable, to: &mut SymbolTable) -> Term {
    SymbolMapper::new().translate(term, from, to)
}

/// Memoising symbol translator: maps each source symbol to its
/// destination symbol once, so translating a whole stream is O(1) hash
/// work per *distinct* name rather than per occurrence.
#[derive(Debug, Default)]
pub struct SymbolMapper {
    map: Vec<Option<Symbol>>,
}

impl SymbolMapper {
    /// Creates an empty mapper (tied to one `(from, to)` table pair by
    /// usage convention).
    pub fn new() -> SymbolMapper {
        SymbolMapper::default()
    }

    fn map_sym(&mut self, s: Symbol, from: &SymbolTable, to: &mut SymbolTable) -> Symbol {
        let idx = s.index();
        if idx >= self.map.len() {
            self.map.resize(idx + 1, None);
        }
        if let Some(mapped) = self.map[idx] {
            return mapped;
        }
        let name = from.try_name(s).unwrap_or("<unknown-symbol>");
        let mapped = to.intern(name);
        self.map[idx] = Some(mapped);
        mapped
    }

    /// Translates one term, reusing previously resolved symbols.
    pub fn translate(&mut self, term: &Term, from: &SymbolTable, to: &mut SymbolTable) -> Term {
        match term {
            Term::Var(s) => Term::Var(self.map_sym(*s, from, to)),
            Term::Atom(s) => Term::Atom(self.map_sym(*s, from, to)),
            Term::Int(i) => Term::Int(*i),
            Term::Float(f) => Term::Float(*f),
            Term::Compound(f, args) => {
                let nf = self.map_sym(*f, from, to);
                Term::Compound(
                    nf,
                    args.iter().map(|a| self.translate(a, from, to)).collect(),
                )
            }
            Term::List(items) => {
                Term::List(items.iter().map(|a| self.translate(a, from, to)).collect())
            }
        }
    }
}

/// Display adaptor produced by [`Term::display`].
pub struct TermDisplay<'a> {
    term: &'a Term,
    symbols: &'a SymbolTable,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(f, self.term, self.symbols)
    }
}

fn write_term(f: &mut fmt::Formatter<'_>, t: &Term, symbols: &SymbolTable) -> fmt::Result {
    match t {
        Term::Var(s) | Term::Atom(s) => {
            f.write_str(symbols.try_name(*s).unwrap_or("<unknown-symbol>"))
        }
        Term::Int(i) => write!(f, "{i}"),
        Term::Float(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                write!(f, "{x:.1}")
            } else {
                write!(f, "{x}")
            }
        }
        Term::Compound(func, args) => {
            let name = symbols.try_name(*func).unwrap_or("<unknown-symbol>");
            // Render infix operators the way the paper writes them,
            // parenthesising operands whose own operator binds no tighter
            // than this one, so that display output re-parses to the same
            // tree (e.g. `(A - B) * C`, `A - (B + C)`).
            if args.len() == 2 && is_infix(name) {
                let parent = infix_prec(name);
                let operand =
                    |f: &mut fmt::Formatter<'_>, arg: &Term, is_right: bool| -> fmt::Result {
                        let child = arg
                            .functor()
                            .and_then(|s| symbols.try_name(s))
                            .filter(|n| arg.arity() == 2 && is_infix(n))
                            .map(infix_prec);
                        let wrap = match child {
                            Some(c) => c < parent || (c == parent && is_right),
                            None => false,
                        };
                        if wrap {
                            f.write_str("(")?;
                            write_term(f, arg, symbols)?;
                            f.write_str(")")
                        } else {
                            write_term(f, arg, symbols)
                        }
                    };
                operand(f, &args[0], false)?;
                if name == "=" {
                    write!(f, "{name}")?;
                } else {
                    write!(f, " {name} ")?;
                }
                return operand(f, &args[1], true);
            }
            f.write_str(name)?;
            f.write_str("(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_term(f, a, symbols)?;
            }
            f.write_str(")")
        }
        Term::List(items) => {
            f.write_str("[")?;
            for (i, a) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_term(f, a, symbols)?;
            }
            f.write_str("]")
        }
    }
}

fn is_infix(name: &str) -> bool {
    matches!(
        name,
        "=" | "<" | ">" | "=<" | ">=" | "\\=" | "+" | "-" | "*" | "/"
    )
}

/// Display precedence classes mirroring the parser: comparisons loosest,
/// then additive, then multiplicative.
fn infix_prec(name: &str) -> u8 {
    match name {
        "=" | "<" | ">" | "=<" | ">=" | "\\=" => 1,
        "+" | "-" => 2,
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn ground_checks() {
        let mut t = table();
        let v = Term::Var(t.intern("X"));
        let a = Term::Atom(t.intern("a"));
        let c = Term::Compound(t.intern("f"), vec![a.clone(), v.clone()]);
        assert!(!v.is_ground());
        assert!(a.is_ground());
        assert!(!c.is_ground());
        assert!(Term::Compound(t.intern("g"), vec![a]).is_ground());
    }

    #[test]
    fn match_binds_variables() {
        let mut t = table();
        let x = t.intern("X");
        let f = t.intern("entersArea");
        let v42 = Term::Atom(t.intern("v42"));
        let a1 = Term::Atom(t.intern("a1"));
        let pattern = Term::Compound(f, vec![Term::Var(x), a1.clone()]);
        let fact = Term::Compound(f, vec![v42.clone(), a1]);
        let mut b = Bindings::new();
        assert!(match_term(&pattern, &fact, &mut b));
        assert_eq!(b.lookup(x), Some(&v42));
    }

    #[test]
    fn match_fails_and_restores_bindings() {
        let mut t = table();
        let x = t.intern("X");
        let f = t.intern("f");
        let g = t.intern("g");
        let a = Term::Atom(t.intern("a"));
        let b_atom = Term::Atom(t.intern("b"));
        // f(X, X) against f(a, b) must fail and leave bindings empty.
        let pattern = Term::Compound(f, vec![Term::Var(x), Term::Var(x)]);
        let fact = Term::Compound(f, vec![a.clone(), b_atom]);
        let mut b = Bindings::new();
        assert!(!match_term(&pattern, &fact, &mut b));
        assert!(b.is_empty());
        // Completely different functor also fails.
        let fact2 = Term::Compound(g, vec![a.clone(), a]);
        assert!(!match_term(&pattern, &fact2, &mut b));
        assert!(b.is_empty());
    }

    #[test]
    fn match_respects_existing_bindings() {
        let mut t = table();
        let x = t.intern("X");
        let a = Term::Atom(t.intern("a"));
        let b_atom = Term::Atom(t.intern("b"));
        let mut b = Bindings::new();
        b.bind(x, a.clone());
        assert!(match_term(&Term::Var(x), &a, &mut b));
        assert!(!match_term(&Term::Var(x), &b_atom, &mut b));
    }

    #[test]
    fn numeric_cross_type_match() {
        let mut b = Bindings::new();
        assert!(match_term(&Term::Int(3), &Term::Float(3.0), &mut b));
        assert!(match_term(&Term::Float(2.0), &Term::Int(2), &mut b));
        assert!(!match_term(&Term::Int(3), &Term::Float(3.5), &mut b));
    }

    #[test]
    fn apply_substitutes_recursively() {
        let mut t = table();
        let x = t.intern("X");
        let y = t.intern("Y");
        let f = t.intern("f");
        let a = Term::Atom(t.intern("a"));
        let mut b = Bindings::new();
        b.bind(x, Term::Var(y));
        b.bind(y, a.clone());
        let term = Term::Compound(f, vec![Term::Var(x)]);
        assert_eq!(term.apply(&b), Term::Compound(f, vec![a]));
    }

    #[test]
    fn display_round_trip_shapes() {
        let mut t = table();
        let f = t.intern("entersArea");
        let v = Term::Var(t.intern("Vl"));
        let a = Term::Atom(t.intern("a1"));
        let term = Term::Compound(f, vec![v, a]);
        assert_eq!(term.display(&t).to_string(), "entersArea(Vl, a1)");
        let eq = t.intern("=");
        let tru = Term::Atom(t.intern("true"));
        let fvp = Term::Compound(eq, vec![term, tru]);
        assert_eq!(fvp.display(&t).to_string(), "entersArea(Vl, a1)=true");
    }

    #[test]
    fn infix_display_parenthesises_for_round_trip() {
        use crate::parser::parse_term;
        let mut t = table();
        for src in [
            "(A - B) * C",
            "A - (B + C)",
            "A / (B / C)",
            "(A + B) * (C - D)",
            "abs(A - B) > T",
        ] {
            let parsed = parse_term(src, &mut t).unwrap();
            let printed = parsed.display(&t).to_string();
            let reparsed = parse_term(&printed, &mut t).unwrap();
            assert_eq!(parsed, reparsed, "{src} -> {printed}");
        }
        // No spurious parentheses where associativity already agrees.
        let plain = parse_term("A - B + C", &mut t).unwrap();
        assert_eq!(plain.display(&t).to_string(), "A - B + C");
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let mut t = table();
        let x = t.intern("X");
        let y = t.intern("Y");
        let f = t.intern("f");
        let term = Term::Compound(f, vec![Term::Var(y), Term::Var(x), Term::Var(y)]);
        assert_eq!(term.variables(), vec![y, x]);
    }

    #[test]
    fn list_matching() {
        let mut t = table();
        let x = t.intern("X");
        let a = Term::Atom(t.intern("a"));
        let b_atom = Term::Atom(t.intern("b"));
        let pat = Term::List(vec![Term::Var(x), b_atom.clone()]);
        let fact = Term::List(vec![a.clone(), b_atom]);
        let mut b = Bindings::new();
        assert!(match_term(&pat, &fact, &mut b));
        assert_eq!(b.lookup(x), Some(&a));
        // Different lengths never match.
        let short = Term::List(vec![a]);
        let mut b2 = Bindings::new();
        assert!(!match_term(&pat, &short, &mut b2));
    }
}
