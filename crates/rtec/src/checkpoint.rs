//! Engine state snapshots: serialize the retained window state of an
//! [`Engine`](crate::engine::Engine) so a supervisor can respawn a
//! crashed worker and resume recognition from the last window boundary
//! with byte-identical output.
//!
//! # What is captured
//!
//! Everything `run_to` depends on between windows: the engine-local
//! symbol table (description symbols plus translated stream constants,
//! in interning order, so re-interning reproduces identical ids), the
//! pending event queue, the input-fluent interval lists, the simple-
//! fluent inertia carry, the processed frontier, the accumulated
//! recognition output, the deduplicated warning log, and the run-time
//! counters. The per-window [`FluentCache`](crate::eval::cache) is
//! rebuilt from scratch every chunk, so it never needs snapshotting.
//!
//! # Wire format
//!
//! A checkpoint renders to a single JSON document:
//!
//! ```json
//! {"version": 1, "crc": "<16 hex digits>", "state": {...}}
//! ```
//!
//! `crc` is an FNV-1a 64 hash of the canonical `state` serialization, so
//! torn or truncated writes are detected on [`EngineCheckpoint::from_json`]
//! rather than silently restoring garbage. Map-shaped state (inputs,
//! inertia, output) is sorted by its encoded form, so the same engine
//! state always produces byte-identical checkpoint documents.
//!
//! Terms are encoded structurally with **raw symbol ids** — not names —
//! because a sharded service hands workers terms interned in the
//! session's *master* table, whose ids exceed the worker engine's local
//! table. Ids are only meaningful together with the symbol-name list in
//! the same checkpoint (or, for the service, the session's master-table
//! snapshot), which travels alongside.

use crate::engine::EngineStats;
use crate::eval::simple::InertiaState;
use crate::interval::{Interval, IntervalList, Timepoint};
use crate::symbol::Symbol;
use crate::term::{GroundFvp, Term};
use serde_json::Value;
use std::collections::BTreeMap;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: i64 = 1;

/// Encoded inertia state: ground fluent term paired with its open
/// `(value, start)` entries.
pub(crate) type InertiaEntries = Vec<(Term, Vec<(Term, Timepoint)>)>;

/// The sliding-window overlap of an engine: inertia snapshots at past
/// query times plus the retained events of the current window. Absent
/// for tumbling engines, so their checkpoint bytes are unchanged from
/// earlier versions.
#[derive(Clone, Debug, Default)]
pub(crate) struct SlidingSection {
    /// `(query time, inertia as of that time)`, ascending.
    pub(crate) snapshots: Vec<(Timepoint, InertiaEntries)>,
    /// Evaluated events still inside the overlap, time-sorted.
    pub(crate) retained: Vec<(Term, Timepoint)>,
}

/// A serializable snapshot of an engine's retained window state.
///
/// Produced by [`Engine::checkpoint`](crate::engine::Engine::checkpoint),
/// consumed by [`Engine::restore`](crate::engine::Engine::restore).
#[derive(Clone, Debug)]
pub struct EngineCheckpoint {
    /// Engine-local symbol names in interning order.
    pub(crate) symbols: Vec<String>,
    /// Queued, not-yet-evaluated events.
    pub(crate) pending: Vec<(Term, Timepoint)>,
    /// Input-fluent interval lists.
    pub(crate) inputs: Vec<(GroundFvp, IntervalList)>,
    /// Simple-fluent inertia carry (open value + start per fluent).
    pub(crate) inertia: Vec<(Term, Vec<(Term, Timepoint)>)>,
    /// The processed frontier.
    pub(crate) processed_to: Timepoint,
    /// Accumulated recognition output.
    pub(crate) output: Vec<(GroundFvp, IntervalList)>,
    /// Deduplicated warnings in first-occurrence order.
    pub(crate) warnings: Vec<String>,
    /// Run-time counters.
    pub(crate) stats: EngineStats,
    /// Sliding-window overlap state; `None` for tumbling engines (and
    /// for checkpoints written before sliding windows existed).
    pub(crate) sliding: Option<SlidingSection>,
    /// Label of the evaluation strategy that wrote the checkpoint
    /// (`"interpreter"` or `"plan"`). Informational only: it lives in the
    /// JSON envelope, outside the checksummed state, and restore ignores
    /// it — checkpoints are portable across evaluation modes.
    pub(crate) eval_mode: Option<String>,
}

impl EngineCheckpoint {
    /// Builds a checkpoint from raw engine state (crate-internal; use
    /// [`Engine::checkpoint`](crate::engine::Engine::checkpoint)).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        symbols: Vec<String>,
        pending: Vec<(Term, Timepoint)>,
        inputs: Vec<(GroundFvp, IntervalList)>,
        inertia: &InertiaState,
        processed_to: Timepoint,
        output: Vec<(GroundFvp, IntervalList)>,
        warnings: Vec<String>,
        stats: EngineStats,
        sliding: Option<SlidingSection>,
        eval_mode: Option<String>,
    ) -> EngineCheckpoint {
        let inertia = inertia
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        EngineCheckpoint {
            symbols,
            pending,
            inputs,
            inertia,
            processed_to,
            output,
            warnings,
            stats,
            sliding,
            eval_mode,
        }
    }

    /// The evaluation-strategy label recorded when the checkpoint was
    /// written, if any. Informational; restore never consults it.
    pub fn eval_mode(&self) -> Option<&str> {
        self.eval_mode.as_deref()
    }

    /// The processed frontier captured in this checkpoint.
    pub fn processed_to(&self) -> Timepoint {
        self.processed_to
    }

    /// The run-time counters captured in this checkpoint.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The symbol names captured in this checkpoint, in interning order.
    pub fn symbol_names(&self) -> &[String] {
        &self.symbols
    }

    /// The inertia carry, for restore (crate-internal).
    pub(crate) fn inertia_state(&self) -> InertiaState {
        self.inertia.iter().cloned().collect()
    }

    /// The sliding-window overlap, for restore (crate-internal).
    pub(crate) fn sliding_section(&self) -> Option<&SlidingSection> {
        self.sliding.as_ref()
    }

    /// Serializes the checkpoint state to a JSON [`Value`] (no version
    /// envelope). Used both by [`EngineCheckpoint::to_json`] and by the
    /// service, which embeds per-shard engine states into a session
    /// checkpoint document.
    pub fn to_value(&self) -> Value {
        let mut state = BTreeMap::new();
        state.insert(
            "symbols".to_string(),
            Value::Array(
                self.symbols
                    .iter()
                    .map(|s| Value::from(s.as_str()))
                    .collect(),
            ),
        );
        state.insert(
            "pending".to_string(),
            Value::Array(
                self.pending
                    .iter()
                    .map(|(term, t)| Value::Array(vec![encode_term(term), Value::from(*t)]))
                    .collect(),
            ),
        );
        state.insert(
            "inputs".to_string(),
            sorted_entries(self.inputs.iter().map(|(fvp, list)| {
                Value::Array(vec![encode_fvp(fvp), encode_interval_list(list)])
            })),
        );
        state.insert("inertia".to_string(), encode_inertia_entries(&self.inertia));
        state.insert("processed_to".to_string(), Value::from(self.processed_to));
        if let Some(sliding) = &self.sliding {
            let mut section = BTreeMap::new();
            section.insert(
                "snapshots".to_string(),
                Value::Array(
                    sliding
                        .snapshots
                        .iter()
                        .map(|(t, entries)| {
                            Value::Array(vec![Value::from(*t), encode_inertia_entries(entries)])
                        })
                        .collect(),
                ),
            );
            section.insert(
                "retained".to_string(),
                Value::Array(
                    sliding
                        .retained
                        .iter()
                        .map(|(term, t)| Value::Array(vec![encode_term(term), Value::from(*t)]))
                        .collect(),
                ),
            );
            state.insert("sliding".to_string(), Value::Object(section));
        }
        state.insert(
            "output".to_string(),
            sorted_entries(self.output.iter().map(|(fvp, list)| {
                Value::Array(vec![encode_fvp(fvp), encode_interval_list(list)])
            })),
        );
        state.insert(
            "warnings".to_string(),
            Value::Array(
                self.warnings
                    .iter()
                    .map(|w| Value::from(w.as_str()))
                    .collect(),
            ),
        );
        let mut stats = BTreeMap::new();
        stats.insert("windows".to_string(), counter(self.stats.windows));
        stats.insert(
            "events_processed".to_string(),
            counter(self.stats.events_processed),
        );
        stats.insert(
            "events_dropped".to_string(),
            counter(self.stats.events_dropped),
        );
        state.insert("stats".to_string(), Value::Object(stats));
        Value::Object(state)
    }

    /// Reconstructs a checkpoint from the state [`Value`] produced by
    /// [`EngineCheckpoint::to_value`].
    pub fn from_value(state: &Value) -> Result<EngineCheckpoint, String> {
        let symbols = str_array(state, "symbols")?;
        let pending = array_field(state, "pending")?
            .iter()
            .map(|entry| {
                let pair = pair_of(entry, "pending")?;
                Ok((decode_term(&pair[0])?, timepoint(&pair[1], "pending")?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let inputs = decode_fvp_entries(state, "inputs")?;
        let inertia = decode_inertia_entries(
            state
                .get("inertia")
                .ok_or("checkpoint: missing array field \"inertia\"")?,
        )?;
        // Absent in tumbling engines and pre-sliding checkpoints.
        let sliding = match state.get("sliding") {
            None => None,
            Some(section) => {
                let snapshots = section
                    .get("snapshots")
                    .and_then(Value::as_array)
                    .ok_or("checkpoint: sliding section missing \"snapshots\"")?
                    .iter()
                    .map(|entry| {
                        let pair = pair_of(entry, "sliding snapshot")?;
                        let t = timepoint(&pair[0], "sliding snapshot")?;
                        Ok((t, decode_inertia_entries(&pair[1])?))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let retained = section
                    .get("retained")
                    .and_then(Value::as_array)
                    .ok_or("checkpoint: sliding section missing \"retained\"")?
                    .iter()
                    .map(|entry| {
                        let pair = pair_of(entry, "sliding retained")?;
                        Ok((decode_term(&pair[0])?, timepoint(&pair[1], "retained")?))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                if snapshots.is_empty() {
                    return Err("checkpoint: sliding section has no snapshots".to_string());
                }
                Some(SlidingSection {
                    snapshots,
                    retained,
                })
            }
        };
        let processed_to = state
            .get("processed_to")
            .and_then(Value::as_i64)
            .ok_or("checkpoint: missing \"processed_to\"")?;
        let output = decode_fvp_entries(state, "output")?;
        let warnings = str_array(state, "warnings")?;
        let stats_value = state.get("stats").ok_or("checkpoint: missing \"stats\"")?;
        let stat = |name: &str| -> Result<usize, String> {
            stats_value
                .get(name)
                .and_then(Value::as_i64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("checkpoint: bad stats field \"{name}\""))
        };
        let stats = EngineStats {
            windows: stat("windows")?,
            events_processed: stat("events_processed")?,
            events_dropped: stat("events_dropped")?,
        };
        Ok(EngineCheckpoint {
            symbols,
            pending,
            inputs,
            inertia,
            processed_to,
            output,
            warnings,
            stats,
            sliding,
            eval_mode: None,
        })
    }

    /// Serializes the checkpoint to its versioned, checksummed JSON
    /// document. The same engine state always yields byte-identical
    /// documents (map entries are sorted canonically).
    pub fn to_json(&self) -> String {
        let state = self.to_value();
        let payload = serde_json::to_string(&state).unwrap_or_else(|_| "{}".into());
        let mut doc = BTreeMap::new();
        doc.insert("version".to_string(), Value::from(CHECKPOINT_VERSION));
        doc.insert(
            "crc".to_string(),
            Value::from(fnv1a_hex(payload.as_bytes())),
        );
        if let Some(mode) = &self.eval_mode {
            doc.insert("eval_mode".to_string(), Value::from(mode.as_str()));
        }
        doc.insert("state".to_string(), state);
        serde_json::to_string(&Value::Object(doc)).unwrap_or_else(|_| "{}".into())
    }

    /// Parses and verifies a checkpoint document: version must match,
    /// and the embedded checksum must agree with the state payload —
    /// a torn or truncated write fails here instead of restoring
    /// corrupt engine state.
    pub fn from_json(text: &str) -> Result<EngineCheckpoint, String> {
        let doc: Value =
            serde_json::from_str(text).map_err(|e| format!("checkpoint: malformed JSON: {e}"))?;
        let version = doc
            .get("version")
            .and_then(Value::as_i64)
            .ok_or("checkpoint: missing \"version\"")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint: unsupported version {version} (expected {CHECKPOINT_VERSION})"
            ));
        }
        let crc = doc
            .get("crc")
            .and_then(Value::as_str)
            .ok_or("checkpoint: missing \"crc\"")?;
        let state = doc.get("state").ok_or("checkpoint: missing \"state\"")?;
        let payload = serde_json::to_string(state).map_err(|e| format!("checkpoint: {e}"))?;
        let actual = fnv1a_hex(payload.as_bytes());
        if actual != crc {
            return Err(format!(
                "checkpoint: checksum mismatch (stored {crc}, computed {actual}) — torn write?"
            ));
        }
        let mut checkpoint = EngineCheckpoint::from_value(state)?;
        // Informational envelope field; absent in pre-existing documents.
        checkpoint.eval_mode = doc
            .get("eval_mode")
            .and_then(Value::as_str)
            .map(str::to_owned);
        Ok(checkpoint)
    }
}

/// Encodes inertia entries (ground fluent -> open values) canonically
/// sorted, the shape shared by the `inertia` field and the per-snapshot
/// states of the `sliding` section.
fn encode_inertia_entries(entries: &InertiaEntries) -> Value {
    sorted_entries(entries.iter().map(|(fluent, open)| {
        let open: Vec<Value> = open
            .iter()
            .map(|(value, start)| Value::Array(vec![encode_term(value), Value::from(*start)]))
            .collect();
        Value::Array(vec![encode_term(fluent), Value::Array(open)])
    }))
}

/// Decodes inertia entries encoded by [`encode_inertia_entries`].
fn decode_inertia_entries(value: &Value) -> Result<InertiaEntries, String> {
    value
        .as_array()
        .ok_or("checkpoint: inertia entries must be an array")?
        .iter()
        .map(|entry| {
            let pair = pair_of(entry, "inertia")?;
            let fluent = decode_term(&pair[0])?;
            let open = pair[1]
                .as_array()
                .ok_or("checkpoint: inertia opens must be an array")?
                .iter()
                .map(|ov| {
                    let ov = pair_of(ov, "inertia open")?;
                    Ok((decode_term(&ov[0])?, timepoint(&ov[1], "inertia open")?))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok((fluent, open))
        })
        .collect()
}

/// Collects entry values, sorts them by their canonical serialization
/// (HashMap iteration order must not leak into checkpoint bytes), and
/// wraps them in an array.
fn sorted_entries(entries: impl Iterator<Item = Value>) -> Value {
    let mut rendered: Vec<(String, Value)> = entries
        .map(|v| (serde_json::to_string(&v).unwrap_or_default(), v))
        .collect();
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(rendered.into_iter().map(|(_, v)| v).collect())
}

/// Encodes a term structurally with raw symbol ids:
/// `{"v": id}` variable, `{"a": id}` atom, `{"i": n}` integer,
/// `{"f": "<hex bits>"}` float (exact bit pattern), `{"c": [id, args…]}`
/// compound, `{"l": [elems…]}` list.
pub fn encode_term(term: &Term) -> Value {
    let mut map = BTreeMap::new();
    match term {
        Term::Var(sym) => {
            map.insert("v".to_string(), Value::from(i64::from(sym.0)));
        }
        Term::Atom(sym) => {
            map.insert("a".to_string(), Value::from(i64::from(sym.0)));
        }
        Term::Int(n) => {
            map.insert("i".to_string(), Value::from(*n));
        }
        Term::Float(f) => {
            // Bit-exact: JSON float round-trips could perturb the value.
            map.insert(
                "f".to_string(),
                Value::from(format!("{:016x}", f.to_bits())),
            );
        }
        Term::Compound(functor, args) => {
            let mut items = vec![Value::from(i64::from(functor.0))];
            items.extend(args.iter().map(encode_term));
            map.insert("c".to_string(), Value::Array(items));
        }
        Term::List(elems) => {
            map.insert(
                "l".to_string(),
                Value::Array(elems.iter().map(encode_term).collect()),
            );
        }
    }
    Value::Object(map)
}

/// Decodes a term encoded by [`encode_term`].
pub fn decode_term(value: &Value) -> Result<Term, String> {
    let obj = value
        .as_object()
        .ok_or("checkpoint: term must be an object")?;
    let (tag, payload) = obj.iter().next().ok_or("checkpoint: empty term object")?;
    match tag.as_str() {
        "v" => Ok(Term::Var(symbol(payload)?)),
        "a" => Ok(Term::Atom(symbol(payload)?)),
        "i" => payload
            .as_i64()
            .map(Term::Int)
            .ok_or_else(|| "checkpoint: integer term must be a number".to_string()),
        "f" => {
            let hex = payload
                .as_str()
                .ok_or("checkpoint: float term must be a hex string")?;
            let bits = u64::from_str_radix(hex, 16)
                .map_err(|e| format!("checkpoint: bad float bits \"{hex}\": {e}"))?;
            Ok(Term::Float(f64::from_bits(bits)))
        }
        "c" => {
            let items = payload
                .as_array()
                .filter(|a| !a.is_empty())
                .ok_or("checkpoint: compound term must be a non-empty array")?;
            let functor = symbol(&items[0])?;
            let args = items[1..]
                .iter()
                .map(decode_term)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Term::Compound(functor, args))
        }
        "l" => {
            let items = payload
                .as_array()
                .ok_or("checkpoint: list term must be an array")?;
            Ok(Term::List(
                items
                    .iter()
                    .map(decode_term)
                    .collect::<Result<Vec<_>, _>>()?,
            ))
        }
        other => Err(format!("checkpoint: unknown term tag \"{other}\"")),
    }
}

/// Encodes a ground fluent-value pair as `[fluent, value]`.
pub fn encode_fvp(fvp: &GroundFvp) -> Value {
    Value::Array(vec![encode_term(&fvp.fluent), encode_term(&fvp.value)])
}

/// Decodes a ground fluent-value pair encoded by [`encode_fvp`].
pub fn decode_fvp(value: &Value) -> Result<GroundFvp, String> {
    let pair = pair_of(value, "fvp")?;
    let fluent = decode_term(&pair[0])?;
    let value = decode_term(&pair[1])?;
    GroundFvp::new(fluent, value).ok_or_else(|| "checkpoint: non-ground fvp".to_string())
}

/// Encodes an interval list as `[[start, end], …]` (end may be `INF`).
pub fn encode_interval_list(list: &IntervalList) -> Value {
    Value::Array(
        list.as_slice()
            .iter()
            .map(|iv| Value::Array(vec![Value::from(iv.start), Value::from(iv.end)]))
            .collect(),
    )
}

/// Decodes an interval list encoded by [`encode_interval_list`].
pub fn decode_interval_list(value: &Value) -> Result<IntervalList, String> {
    let pairs = value
        .as_array()
        .ok_or("checkpoint: intervals must be an array")?;
    let ivs = pairs
        .iter()
        .map(|pair| {
            let pair = pair_of(pair, "interval")?;
            let start = timepoint(&pair[0], "interval")?;
            let end = timepoint(&pair[1], "interval")?;
            if start >= end {
                return Err(format!("checkpoint: empty interval [{start}, {end})"));
            }
            Ok(Interval::new(start, end))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(IntervalList::from_intervals(ivs))
}

fn decode_fvp_entries(
    state: &Value,
    field: &str,
) -> Result<Vec<(GroundFvp, IntervalList)>, String> {
    array_field(state, field)?
        .iter()
        .map(|entry| {
            let pair = pair_of(entry, field)?;
            Ok((decode_fvp(&pair[0])?, decode_interval_list(&pair[1])?))
        })
        .collect()
}

fn symbol(value: &Value) -> Result<Symbol, String> {
    value
        .as_i64()
        .and_then(|n| u32::try_from(n).ok())
        .map(Symbol)
        .ok_or_else(|| "checkpoint: symbol id must be a non-negative integer".to_string())
}

fn timepoint(value: &Value, what: &str) -> Result<Timepoint, String> {
    value
        .as_i64()
        .ok_or_else(|| format!("checkpoint: {what} time-point must be an integer"))
}

fn pair_of<'v>(value: &'v Value, what: &str) -> Result<&'v [Value], String> {
    value
        .as_array()
        .filter(|a| a.len() == 2)
        .map(Vec::as_slice)
        .ok_or_else(|| format!("checkpoint: {what} entry must be a two-element array"))
}

fn array_field<'v>(state: &'v Value, field: &str) -> Result<&'v Vec<Value>, String> {
    state
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("checkpoint: missing array field \"{field}\""))
}

fn str_array(state: &Value, field: &str) -> Result<Vec<String>, String> {
    array_field(state, field)?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("checkpoint: \"{field}\" entries must be strings"))
        })
        .collect()
}

fn counter(n: usize) -> Value {
    Value::from(i64::try_from(n).unwrap_or(i64::MAX))
}

/// FNV-1a 64-bit hash, rendered as 16 hex digits — the checksum used by
/// checkpoint envelopes (engine-level here, session-level in the
/// service's persistence layer).
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn term(src: &str, sym: &mut SymbolTable) -> Term {
        crate::parser::parse_term(src, sym).unwrap()
    }

    #[test]
    fn terms_round_trip_structurally() {
        let mut sym = SymbolTable::new();
        for src in [
            "a",
            "f(a, b)",
            "g(f(a), 42, X)",
            "h([a, 1, [b]])",
            "nested(f(g(h(x))), Y)",
        ] {
            let t = term(src, &mut sym);
            let decoded = decode_term(&encode_term(&t)).unwrap();
            assert_eq!(t, decoded, "{src}");
        }
        let f = Term::Float(std::f64::consts::PI);
        assert_eq!(f, decode_term(&encode_term(&f)).unwrap());
    }

    #[test]
    fn interval_lists_round_trip_including_open() {
        for list in [
            IntervalList::new(),
            IntervalList::from_pairs(&[(0, 5), (9, 12)]),
            IntervalList::from_intervals(vec![Interval::new(3, 7), Interval::open(100)]),
        ] {
            let decoded = decode_interval_list(&encode_interval_list(&list)).unwrap();
            assert_eq!(list, decoded);
        }
    }

    #[test]
    fn corrupt_documents_are_rejected() {
        let ck = EngineCheckpoint {
            symbols: vec!["a".into()],
            pending: Vec::new(),
            inputs: Vec::new(),
            inertia: Vec::new(),
            processed_to: 7,
            output: Vec::new(),
            warnings: vec!["w".into()],
            stats: EngineStats::default(),
            sliding: None,
            eval_mode: Some("interpreter".into()),
        };
        let json = ck.to_json();
        assert!(EngineCheckpoint::from_json(&json).is_ok());
        // Torn write: truncation breaks parsing or the checksum.
        let torn = &json[..json.len() - 10];
        assert!(EngineCheckpoint::from_json(torn).is_err());
        // Flipped payload byte: checksum mismatch.
        let tampered = json.replace("\"processed_to\":7", "\"processed_to\":8");
        let err = EngineCheckpoint::from_json(&tampered).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        // Wrong version.
        let wrong = json.replace("\"version\":1", "\"version\":99");
        assert!(EngineCheckpoint::from_json(&wrong).is_err());
    }

    #[test]
    fn documents_are_deterministic() {
        let mut sym = SymbolTable::new();
        let mut mk = || {
            let mut inputs = Vec::new();
            let mut output = Vec::new();
            let f1 = GroundFvp::new(term("p(a, b)", &mut sym), term("true", &mut sym)).unwrap();
            let f2 = GroundFvp::new(term("q(c)", &mut sym), term("true", &mut sym)).unwrap();
            inputs.push((f1.clone(), IntervalList::from_pairs(&[(0, 9)])));
            inputs.push((f2.clone(), IntervalList::from_pairs(&[(4, 6)])));
            output.push((f2, IntervalList::from_pairs(&[(5, 6)])));
            output.push((f1, IntervalList::from_pairs(&[(1, 2)])));
            EngineCheckpoint {
                symbols: vec!["p".into(), "q".into()],
                pending: Vec::new(),
                inputs,
                inertia: Vec::new(),
                processed_to: 10,
                output,
                warnings: Vec::new(),
                stats: EngineStats::default(),
                sliding: None,
                eval_mode: None,
            }
        };
        let a = mk().to_json();
        let mut reversed = mk();
        reversed.inputs.reverse();
        reversed.output.reverse();
        assert_eq!(
            a,
            reversed.to_json(),
            "entry order must not leak into bytes"
        );
    }
}
