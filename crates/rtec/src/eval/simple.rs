//! Evaluation of simple fluents under the common-sense law of inertia.
//!
//! For each simple FVP, RTEC first computes its initiation and termination
//! points by evaluating the `initiatedAt`/`terminatedAt` rules, then builds
//! maximal intervals by matching each initiation `Ts` with the first
//! termination `Te` *after* `Ts`, ignoring intermediate initiations
//! (paper, Section 2 "Reasoning"). Initiating `F=V'` implicitly terminates
//! `F=V` for `V != V'` — fluents are functions of time.
//!
//! State that survives across processing windows is the *open* value of
//! each ground fluent: if `F=V` held at the end of the previous window and
//! nothing terminated it, it keeps holding (inertia).

use crate::ast::{BodyLiteral, FluentKey, SimpleKind};
use crate::description::CompiledDescription;
use crate::eval::body::{solve, BodyCtx};
use crate::eval::cache::FluentCache;
use crate::eval::events::EventIndex;
use crate::eval::WarningSink;
use crate::interval::{Interval, IntervalList, Timepoint};
use crate::symbol::Symbol;
use crate::term::{match_term, Bindings, GroundFvp, Term};
use std::collections::HashMap;

/// Open FVPs carried across windows: ground fluent term -> open
/// `(value, interval start)` pairs. A well-behaved fluent has at most one
/// open value; the vector tolerates degenerate rule sets that initiate two
/// values at the same time-point.
pub type InertiaState = HashMap<Term, Vec<(Term, Timepoint)>>;

/// Initiation/termination points collected for one ground fluent.
///
/// Values are kept in first-recorded order, *not* hashed: the order
/// flows into the open-value vector of the [`InertiaState`] (observable
/// in checkpoints) when a degenerate rule set leaves several values of
/// one fluent open at once, so it must be deterministic and identical
/// across evaluators, not an artifact of hash iteration.
#[derive(Debug, Default)]
struct PointSets {
    /// value -> (initiations, explicit terminations)
    by_value: Vec<(Term, InitTermPoints)>,
}

/// (initiation time-points, explicit-termination time-points).
type InitTermPoints = (Vec<Timepoint>, Vec<Timepoint>);

impl PointSets {
    fn entry(&mut self, value: &Term) -> &mut InitTermPoints {
        match self.by_value.iter().position(|(v, _)| v == value) {
            Some(i) => &mut self.by_value[i].1,
            None => {
                self.by_value.push((value.clone(), Default::default()));
                &mut self.by_value.last_mut().expect("just pushed").1
            }
        }
    }

    fn get(&self, value: &Term) -> Option<&InitTermPoints> {
        self.by_value
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, e)| e)
    }

    fn contains(&self, value: &Term) -> bool {
        self.by_value.iter().any(|(v, _)| v == value)
    }
}

/// Accumulates the initiation/termination points fired by the rules of
/// one simple fluent within one window. Both the AST interpreter and the
/// plan evaluator (rtec-plan) feed a collector and then hand it to
/// [`finalize_simple_fluent`], so the inertia/interval-assembly semantics
/// cannot diverge between the two.
#[derive(Debug, Default)]
pub struct PointCollector {
    points: HashMap<Term, PointSets>,
    /// Terminations whose head was not fully instantiated; expanded
    /// against the known ground instances at finalization.
    pattern_terminations: Vec<(Term, Timepoint)>,
}

impl PointCollector {
    /// Creates an empty collector.
    pub fn new() -> PointCollector {
        PointCollector::default()
    }

    /// Records a rule firing for a ground head `fluent = value` at `t`.
    pub fn record(&mut self, kind: SimpleKind, fluent: Term, value: Term, t: Timepoint) {
        let entry = self.points.entry(fluent).or_default().entry(&value);
        match kind {
            SimpleKind::Initiated => entry.0.push(t),
            SimpleKind::Terminated => entry.1.push(t),
        }
    }

    /// Records a termination whose head pattern `F=V` kept unbound
    /// variables; it terminates every matching ground instance.
    pub fn record_pattern_termination(&mut self, pattern: Term, t: Timepoint) {
        self.pattern_terminations.push((pattern, t));
    }
}

/// Evaluates all rules of the simple fluent `key` for the window
/// `(window_start, window_end]`, inserting per-FVP interval lists into the
/// cache and updating the inertia state.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_simple_fluent(
    desc: &CompiledDescription,
    key: FluentKey,
    events: &EventIndex,
    cache: &mut FluentCache<'_>,
    inertia: &mut InertiaState,
    warnings: &mut WarningSink,
) {
    let Some(rule_ids) = desc.simple_by_fluent.get(&key) else {
        return;
    };

    // 1. Collect initiation and termination points per ground FVP.
    // Terminations whose head is not fully instantiated by the body apply
    // universally: e.g. `terminatedAt(withinArea(Vl, AreaType)=true, T) :-
    // happensAt(gap_start(Vl), T).` (paper rule (3)) terminates
    // withinArea(v, *every* AreaType). They are expanded against the known
    // ground instances after collection.
    let mut collector = PointCollector::new();
    // Warnings raised inside the solution callback (which already borrows
    // the main sink through `solve`) are buffered here.
    let mut deferred_warnings: Vec<String> = Vec::new();
    {
        let ctx = BodyCtx {
            desc,
            events,
            cache,
        };
        for &rid in rule_ids {
            let rule = &desc.simple[rid];
            let Some(BodyLiteral::HappensAt {
                negated: false,
                event,
            }) = rule.body.first()
            else {
                // Validation guarantees this shape; defensive skip.
                continue;
            };
            let Some(sig) = event.signature() else {
                continue;
            };
            for (t, ev) in events.all(sig) {
                let mut bindings = Bindings::new();
                if !match_term(event, ev, &mut bindings) {
                    continue;
                }
                // The head's time variable is visible to comparisons.
                if bindings.lookup(rule.time_var).is_none() {
                    bindings.bind(rule.time_var, Term::Int(*t));
                }
                let t = *t;
                solve(
                    &ctx,
                    &rule.body,
                    1,
                    t,
                    &mut bindings,
                    warnings,
                    &mut |b: &mut Bindings| {
                        let fluent = rule.fvp.fluent.apply(b);
                        let value = rule.fvp.value.apply(b);
                        if !fluent.is_ground() || !value.is_ground() {
                            if rule.kind == SimpleKind::Terminated {
                                let pat = Term::Compound(desc.sys.eq, vec![fluent, value]);
                                collector.record_pattern_termination(pat, t);
                            } else {
                                deferred_warnings.push(format!(
                                    "initiatedAt head '{}' not fully instantiated; \
                                     instance dropped",
                                    rule.fvp.display(&desc.symbols)
                                ));
                            }
                            return;
                        }
                        collector.record(rule.kind, fluent, value, t);
                    },
                );
            }
        }
    }

    for w in deferred_warnings {
        warnings.push(w);
    }

    finalize_simple_fluent(key, desc.sys.eq, collector, cache, inertia);
}

/// Turns the collected initiation/termination points of one simple fluent
/// into maximal intervals (law of inertia), inserting them into the cache
/// and updating the inertia state. Shared verbatim by the AST interpreter
/// and the plan evaluator.
pub fn finalize_simple_fluent(
    key: FluentKey,
    eq: Symbol,
    collector: PointCollector,
    cache: &mut FluentCache<'_>,
    inertia: &mut InertiaState,
) {
    let PointCollector {
        mut points,
        pattern_terminations,
    } = collector;

    // 2. Fold in carried-open values of fluents with this key so that
    //    cross-value initiations can terminate them.
    let carried: Vec<Term> = inertia
        .keys()
        .filter(|fl| fl.signature() == Some(key))
        .cloned()
        .collect();
    for fl in carried {
        points.entry(fl).or_default();
    }

    // 2b. Expand pattern terminations against the known ground instances
    //     (instances with rule firings this window plus carried-open
    //     ones). The common shape — ground fluent, unbound value, e.g.
    //     `terminatedAt(movingSpeed(v7)=Value, T)` — resolves with one
    //     hash lookup; only patterns with a non-ground fluent scan.
    if !pattern_terminations.is_empty() {
        let mut candidates: HashMap<Term, Vec<Term>> = HashMap::new();
        for (fluent, sets) in &points {
            let bucket = candidates.entry(fluent.clone()).or_default();
            for (value, _) in &sets.by_value {
                bucket.push(value.clone());
            }
            if let Some(open) = inertia.get(fluent) {
                for (value, _) in open {
                    if !sets.contains(value) {
                        bucket.push(value.clone());
                    }
                }
            }
        }
        let add_termination =
            |points: &mut HashMap<Term, PointSets>, fluent: &Term, value: &Term, t: Timepoint| {
                points
                    .get_mut(fluent)
                    .expect("candidate came from points")
                    .entry(value)
                    .1
                    .push(t);
            };
        // Candidate pairs for the non-ground-fluent fallback, built once
        // for all pattern terminations instead of per firing.
        let needs_fallback = pattern_terminations.iter().any(|(pat, _)| {
            !matches!(pat, Term::Compound(f, args)
                if *f == eq && args.len() == 2 && args[0].is_ground())
        });
        let all_pairs: Vec<(Term, Term)> = if needs_fallback {
            candidates
                .iter()
                .flat_map(|(fluent, values)| {
                    values.iter().map(move |v| (fluent.clone(), v.clone()))
                })
                .collect()
        } else {
            Vec::new()
        };
        for (pat, t) in &pattern_terminations {
            let (pat_fluent, pat_value) = match pat {
                Term::Compound(f, args) if *f == eq && args.len() == 2 => (&args[0], &args[1]),
                _ => continue,
            };
            if pat_fluent.is_ground() {
                let Some(values) = candidates.get(pat_fluent) else {
                    continue;
                };
                for value in values {
                    let mut b = Bindings::new();
                    if match_term(pat_value, value, &mut b) {
                        add_termination(&mut points, pat_fluent, value, *t);
                    }
                }
            } else {
                for (fluent, value) in &all_pairs {
                    let mut b = Bindings::new();
                    if match_term(pat_fluent, fluent, &mut b)
                        && match_term(pat_value, value, &mut b)
                    {
                        add_termination(&mut points, fluent, value, *t);
                    }
                }
            }
        }
    }

    // 3. Build maximal intervals per ground fluent.
    for (fluent, sets) in points {
        let open_values: Vec<(Term, Timepoint)> = inertia.get(&fluent).cloned().unwrap_or_default();
        let mut new_open: Vec<(Term, Timepoint)> = Vec::new();

        // Values to consider: those with rule firings plus carried ones.
        let mut values: Vec<Term> = sets.by_value.iter().map(|(v, _)| v.clone()).collect();
        for (v, _) in &open_values {
            if !values.contains(v) {
                values.push(v.clone());
            }
        }

        for value in values {
            let (inits, terms) = sets.get(&value).cloned().unwrap_or_default();
            // Initiations of *other* values terminate this one.
            let mut all_terms = terms;
            for (other_value, (other_inits, _)) in &sets.by_value {
                if *other_value != value {
                    all_terms.extend_from_slice(other_inits);
                }
            }
            let carry = open_values
                .iter()
                .find(|(v, _)| *v == value)
                .map(|(_, s)| *s);
            let (list, open) = make_intervals(carry, inits, all_terms);
            if let Some(start) = open {
                new_open.push((value.clone(), start));
            }
            if !list.is_empty() {
                let g = GroundFvp {
                    fluent: fluent.clone(),
                    value,
                };
                cache.insert(g, list);
            }
        }

        if new_open.is_empty() {
            inertia.remove(&fluent);
        } else {
            inertia.insert(fluent, new_open);
        }
    }
}

/// Matches initiations with the first strictly-later termination.
///
/// `carry` is the start (already on the interval scale, i.e. `Ts + 1`) of
/// an interval open at the beginning of the window. Returns the maximal
/// intervals plus the start of the interval still open at the end, if any.
/// Open intervals are emitted with an infinite end; the engine clips them
/// to the window when folding into the global output.
pub fn make_intervals(
    carry: Option<Timepoint>,
    mut inits: Vec<Timepoint>,
    mut terms: Vec<Timepoint>,
) -> (IntervalList, Option<Timepoint>) {
    inits.sort_unstable();
    inits.dedup();
    terms.sort_unstable();
    terms.dedup();

    let mut out = IntervalList::new();
    let mut open: Option<Timepoint> = carry;
    let (mut i, mut j) = (0, 0);
    while i < inits.len() || j < terms.len() {
        // Terminations are processed before initiations at the same
        // time-point: a termination at T closes an interval initiated
        // earlier, and an initiation at T re-opens from T + 1.
        let take_term = match (inits.get(i), terms.get(j)) {
            (Some(&ti), Some(&tj)) => tj <= ti,
            (None, Some(_)) => true,
            _ => false,
        };
        if take_term {
            let te = terms[j];
            j += 1;
            if let Some(s) = open {
                // The first termination strictly after the initiation:
                // interval [s, te + 1) is non-empty iff te >= s.
                if te >= s {
                    out.push(Interval::new(s, te + 1));
                    open = None;
                }
            }
        } else {
            let ts = inits[i];
            i += 1;
            if open.is_none() {
                open = Some(ts + 1);
            }
        }
    }
    if let Some(s) = open {
        out.push(Interval::open(s));
    }
    (out, open)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::INF;

    fn closed(l: &IntervalList) -> Vec<(Timepoint, Timepoint)> {
        l.iter().map(|iv| (iv.start, iv.end)).collect()
    }

    #[test]
    fn basic_matching() {
        let (l, open) = make_intervals(None, vec![10], vec![25]);
        assert_eq!(closed(&l), vec![(11, 26)]);
        assert!(open.is_none());
    }

    #[test]
    fn intermediate_initiations_ignored() {
        let (l, open) = make_intervals(None, vec![10, 15, 20], vec![25]);
        assert_eq!(closed(&l), vec![(11, 26)]);
        assert!(open.is_none());
    }

    #[test]
    fn unterminated_initiation_stays_open() {
        let (l, open) = make_intervals(None, vec![10], vec![]);
        assert_eq!(closed(&l), vec![(11, INF)]);
        assert_eq!(open, Some(11));
    }

    #[test]
    fn termination_without_initiation_is_noop() {
        let (l, open) = make_intervals(None, vec![], vec![5]);
        assert!(l.is_empty());
        assert!(open.is_none());
    }

    #[test]
    fn same_point_termination_does_not_close_new_initiation() {
        // Initiated at 10 and terminated at 10: the termination is not
        // strictly after the initiation, so the fluent keeps holding.
        let (l, open) = make_intervals(None, vec![10], vec![10]);
        assert_eq!(closed(&l), vec![(11, INF)]);
        assert_eq!(open, Some(11));
    }

    #[test]
    fn same_point_termination_closes_earlier_interval_then_reopens() {
        // Open since 3 (carry), terminated at 10, re-initiated at 10:
        // continuous holding, single amalgamated open interval from 3.
        // The carried start for the next window is the re-initiation (11);
        // window merging amalgamates the seam.
        let (l, open) = make_intervals(Some(3), vec![10], vec![10]);
        assert_eq!(closed(&l), vec![(3, INF)]);
        assert_eq!(open, Some(11));
    }

    #[test]
    fn carry_closed_by_first_termination() {
        let (l, open) = make_intervals(Some(3), vec![], vec![7, 20]);
        assert_eq!(closed(&l), vec![(3, 8)]);
        assert!(open.is_none());
    }

    #[test]
    fn multiple_cycles() {
        let (l, open) = make_intervals(None, vec![1, 10, 30], vec![5, 20]);
        assert_eq!(closed(&l), vec![(2, 6), (11, 21), (31, INF)]);
        assert_eq!(open, Some(31));
    }

    #[test]
    fn unsorted_duplicated_input_points() {
        let (l, open) = make_intervals(None, vec![10, 1, 10], vec![20, 5, 5]);
        assert_eq!(closed(&l), vec![(2, 6), (11, 21)]);
        assert!(open.is_none());
    }
}
