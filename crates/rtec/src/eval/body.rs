//! Backtracking solver for simple-rule bodies (Definition 2.2).
//!
//! Given a candidate time-point `T` (fixed by the rule's leading
//! `happensAt` literal), the solver threads a substitution through the
//! remaining literals left-to-right, branching where a literal has several
//! matches (additional events at `T`, background facts, fluent instances)
//! and applying negation-by-failure for `not` literals.

use crate::ast::{BodyLiteral, Fvp};
use crate::description::CompiledDescription;
use crate::eval::arith::{compare, CompareOutcome};
use crate::eval::cache::FluentCache;
use crate::eval::events::EventIndex;
use crate::eval::WarningSink;
use crate::interval::Timepoint;
use crate::term::{match_term, Bindings, GroundFvp, Term};

/// Evaluation context shared by all rules of one window.
pub struct BodyCtx<'a> {
    /// The compiled event description (rules, facts, symbols).
    pub desc: &'a CompiledDescription,
    /// This window's events.
    pub events: &'a EventIndex,
    /// Interval lists of lower-strata and input fluents.
    pub cache: &'a FluentCache<'a>,
}

/// Solves `literals[idx..]` at time `t` under `bindings`, invoking
/// `on_solution` for every complete solution. Bindings are restored on
/// return.
pub fn solve(
    ctx: &BodyCtx<'_>,
    literals: &[BodyLiteral],
    idx: usize,
    t: Timepoint,
    bindings: &mut Bindings,
    warnings: &mut WarningSink,
    on_solution: &mut dyn FnMut(&mut Bindings),
) {
    let Some(lit) = literals.get(idx) else {
        on_solution(bindings);
        return;
    };
    let mark = bindings.len();
    match lit {
        BodyLiteral::HappensAt {
            negated: false,
            event,
        } => {
            if let Some(sig) = event.apply(bindings).signature() {
                // Collect matches eagerly: recursion borrows bindings.
                let hits: Vec<Term> = ctx
                    .events
                    .at(sig, t)
                    .iter()
                    .map(|(_, ev)| ev.clone())
                    .collect();
                for ev in hits {
                    if match_term(event, &ev, bindings) {
                        solve(ctx, literals, idx + 1, t, bindings, warnings, on_solution);
                        bindings.truncate(mark);
                    }
                }
            }
        }
        BodyLiteral::HappensAt {
            negated: true,
            event,
        } => {
            let pattern = event.apply(bindings);
            let exists = pattern.signature().is_some_and(|sig| {
                ctx.events
                    .at(sig, t)
                    .iter()
                    .any(|(_, ev)| match_term(&pattern, ev, &mut Bindings::new()))
            });
            if !exists {
                solve(ctx, literals, idx + 1, t, bindings, warnings, on_solution);
                bindings.truncate(mark);
            }
        }
        BodyLiteral::HoldsAt { negated, fvp } => {
            solve_holds_at(
                ctx,
                literals,
                idx,
                t,
                *negated,
                fvp,
                bindings,
                warnings,
                on_solution,
            );
        }
        BodyLiteral::Atemporal {
            negated: false,
            pattern,
        } => {
            // Buffer solutions to avoid aliasing `bindings` in the closure.
            let mut exts: Vec<Bindings> = Vec::new();
            ctx.desc.facts.for_each_match(pattern, bindings, |b| {
                exts.push(b.clone());
            });
            if !ctx.desc.facts.has_signature_of(pattern) {
                warn_unknown_fact(ctx, pattern, warnings);
            }
            for mut ext in exts {
                solve(ctx, literals, idx + 1, t, &mut ext, warnings, on_solution);
            }
        }
        BodyLiteral::Atemporal {
            negated: true,
            pattern,
        } => {
            if !ctx.desc.facts.any_match(pattern, bindings) {
                solve(ctx, literals, idx + 1, t, bindings, warnings, on_solution);
                bindings.truncate(mark);
            }
        }
        BodyLiteral::Compare { op, lhs, rhs } => {
            match compare(*op, lhs, rhs, bindings, &ctx.desc.symbols) {
                CompareOutcome::Decided(true) | CompareOutcome::Bound => {
                    solve(ctx, literals, idx + 1, t, bindings, warnings, on_solution);
                    bindings.truncate(mark);
                }
                CompareOutcome::Decided(false) => {}
                CompareOutcome::Failed(issue) => {
                    warnings.push(format!("comparison skipped: {issue}"));
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn solve_holds_at(
    ctx: &BodyCtx<'_>,
    literals: &[BodyLiteral],
    idx: usize,
    t: Timepoint,
    negated: bool,
    fvp: &Fvp,
    bindings: &mut Bindings,
    warnings: &mut WarningSink,
    on_solution: &mut dyn FnMut(&mut Bindings),
) {
    let mark = bindings.len();
    let fluent = fvp.fluent.apply(bindings);
    let value = fvp.value.apply(bindings);
    let Some(key) = fluent.signature() else {
        warnings.push("holdsAt over a non-predicate fluent".to_string());
        return;
    };
    if !ctx.desc.defines(key) && !ctx.cache.knows_key(key) {
        warnings.push(format!(
            "undefined fluent '{}/{}' referenced in a rule body; it never holds",
            ctx.desc.symbols.name(key.0),
            key.1
        ));
        // Negation-by-failure: an undefined fluent never holds, so a
        // negated literal succeeds.
        if negated {
            solve(ctx, literals, idx + 1, t, bindings, warnings, on_solution);
            bindings.truncate(mark);
        }
        return;
    }
    if fluent.is_ground() && value.is_ground() {
        let g = GroundFvp { fluent, value };
        let holds = ctx.cache.holds_at(&g, t);
        if holds != negated {
            solve(ctx, literals, idx + 1, t, bindings, warnings, on_solution);
            bindings.truncate(mark);
        }
        return;
    }
    // Non-ground FVP: positive literals enumerate matching instances that
    // hold at t; negated literals succeed iff no instance matches & holds.
    let eq = ctx.desc.sys.eq;
    let pattern = Term::Compound(eq, vec![fluent, value]);
    let mut matching: Vec<Bindings> = Vec::new();
    for inst in ctx.cache.instances(key) {
        if !ctx.cache.holds_at(inst, t) {
            continue;
        }
        let inst_term = Term::Compound(eq, vec![inst.fluent.clone(), inst.value.clone()]);
        let m = bindings.len();
        if match_term(&pattern, &inst_term, bindings) {
            matching.push(bindings.clone());
            bindings.truncate(m);
        }
    }
    if negated {
        if matching.is_empty() {
            solve(ctx, literals, idx + 1, t, bindings, warnings, on_solution);
            bindings.truncate(mark);
        }
    } else {
        for mut ext in matching {
            solve(ctx, literals, idx + 1, t, &mut ext, warnings, on_solution);
        }
    }
}

fn warn_unknown_fact(ctx: &BodyCtx<'_>, pattern: &Term, warnings: &mut WarningSink) {
    if let Some((f, a)) = pattern.signature() {
        warnings.push(format!(
            "no background facts for '{}/{}'",
            ctx.desc.symbols.name(f),
            a
        ));
    }
}
