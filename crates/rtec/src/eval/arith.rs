//! Arithmetic expression evaluation and comparisons.
//!
//! Rule bodies may compare arithmetic expressions over numbers bound from
//! events and background knowledge, e.g. `Speed > Max * 1.1` or
//! `abs(Heading - Cog) >= Thr`. Supported functions: `+`, `-`, `*`, `/`
//! (binary), `abs`, `min`, `max`.

use crate::ast::CmpOp;
use crate::symbol::SymbolTable;
use crate::term::{Bindings, Term};

/// Why an arithmetic evaluation failed; surfaced as an engine warning.
#[derive(Clone, Debug, PartialEq)]
pub enum ArithIssue {
    /// A variable in the expression is not bound at evaluation time.
    Unbound(String),
    /// A sub-term is not numeric and not a known function.
    NotNumeric(String),
    /// Division by zero.
    DivisionByZero,
}

impl std::fmt::Display for ArithIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArithIssue::Unbound(v) => write!(f, "unbound variable '{v}' in arithmetic"),
            ArithIssue::NotNumeric(t) => write!(f, "non-numeric term '{t}' in arithmetic"),
            ArithIssue::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

/// Evaluates `term` to a number under `bindings`.
pub fn eval_num(
    term: &Term,
    bindings: &Bindings,
    symbols: &SymbolTable,
) -> Result<f64, ArithIssue> {
    match term {
        Term::Int(i) => Ok(*i as f64),
        Term::Float(f) => Ok(*f),
        Term::Var(v) => match bindings.lookup(*v) {
            Some(bound) => eval_num(&bound.clone(), bindings, symbols),
            None => Err(ArithIssue::Unbound(symbols.name(*v).to_owned())),
        },
        Term::Compound(f, args) => {
            let name = symbols.name(*f);
            match (name, args.len()) {
                ("+", 2) => {
                    Ok(eval_num(&args[0], bindings, symbols)?
                        + eval_num(&args[1], bindings, symbols)?)
                }
                ("-", 2) => {
                    Ok(eval_num(&args[0], bindings, symbols)?
                        - eval_num(&args[1], bindings, symbols)?)
                }
                ("*", 2) => {
                    Ok(eval_num(&args[0], bindings, symbols)?
                        * eval_num(&args[1], bindings, symbols)?)
                }
                ("/", 2) => {
                    let d = eval_num(&args[1], bindings, symbols)?;
                    if d == 0.0 {
                        return Err(ArithIssue::DivisionByZero);
                    }
                    Ok(eval_num(&args[0], bindings, symbols)? / d)
                }
                ("abs", 1) => Ok(eval_num(&args[0], bindings, symbols)?.abs()),
                ("min", 2) => Ok(eval_num(&args[0], bindings, symbols)?
                    .min(eval_num(&args[1], bindings, symbols)?)),
                ("max", 2) => Ok(eval_num(&args[0], bindings, symbols)?
                    .max(eval_num(&args[1], bindings, symbols)?)),
                _ => Err(ArithIssue::NotNumeric(term.display(symbols).to_string())),
            }
        }
        _ => Err(ArithIssue::NotNumeric(term.display(symbols).to_string())),
    }
}

/// Outcome of a comparison attempt.
pub enum CompareOutcome {
    /// The comparison evaluated to a boolean.
    Decided(bool),
    /// `=` acted as an assignment, binding a variable (already applied to
    /// the bindings).
    Bound,
    /// The comparison could not be evaluated.
    Failed(ArithIssue),
}

/// Evaluates `lhs op rhs` under `bindings`.
///
/// `=` additionally supports Prolog-style one-sided unification: when one
/// operand is an unbound variable and the other is ground, the variable is
/// bound (LLM-generated rules use this for intermediate values).
pub fn compare(
    op: CmpOp,
    lhs: &Term,
    rhs: &Term,
    bindings: &mut Bindings,
    symbols: &SymbolTable,
) -> CompareOutcome {
    // Numeric fast path.
    let ln = eval_num(lhs, bindings, symbols);
    let rn = eval_num(rhs, bindings, symbols);
    if let (Ok(l), Ok(r)) = (&ln, &rn) {
        let v = match op {
            CmpOp::Eq => l == r,
            CmpOp::Neq => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Gt => l > r,
            CmpOp::Le => l <= r,
            CmpOp::Ge => l >= r,
        };
        return CompareOutcome::Decided(v);
    }
    let la = lhs.apply(bindings);
    let ra = rhs.apply(bindings);
    // When `=` acts as an assignment of an arithmetic expression
    // (`Diff = A - B`), bind the *evaluated* number, not the raw compound:
    // the bound variable may later appear in structural-match positions
    // (holdsAt values, event arguments), where `+(5, 1)` would never
    // match the integer 6.
    let as_value = |side: Term, num: Result<f64, ArithIssue>| -> Term {
        match (&side, num) {
            (Term::Compound(..), Ok(x)) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    Term::Int(x as i64)
                } else {
                    Term::Float(x)
                }
            }
            _ => side,
        }
    };
    match op {
        CmpOp::Eq => {
            if la.is_ground() && ra.is_ground() {
                CompareOutcome::Decided(la == ra)
            } else if let (Term::Var(v), true) = (&la, ra.is_ground()) {
                let v = *v;
                let value = as_value(ra, rn);
                bindings.bind(v, value);
                CompareOutcome::Bound
            } else if let (true, Term::Var(v)) = (la.is_ground(), &ra) {
                let v = *v;
                let value = as_value(la, ln);
                bindings.bind(v, value);
                CompareOutcome::Bound
            } else {
                CompareOutcome::Failed(ArithIssue::Unbound(format!(
                    "{} = {}",
                    la.display(symbols),
                    ra.display(symbols)
                )))
            }
        }
        CmpOp::Neq => {
            if la.is_ground() && ra.is_ground() {
                CompareOutcome::Decided(la != ra)
            } else {
                CompareOutcome::Failed(ArithIssue::Unbound(format!(
                    "{} \\= {}",
                    la.display(symbols),
                    ra.display(symbols)
                )))
            }
        }
        _ => CompareOutcome::Failed(match (ln, rn) {
            (Err(e), _) | (_, Err(e)) => e,
            _ => unreachable!("numeric fast path handled Ok/Ok"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    fn setup(expr: &str) -> (Term, SymbolTable) {
        let mut sym = SymbolTable::new();
        let t = parse_term(expr, &mut sym).unwrap();
        (t, sym)
    }

    #[test]
    fn evaluates_nested_arithmetic() {
        let (t, sym) = setup("abs(3 - 10) * 2 + 1");
        let b = Bindings::new();
        assert_eq!(eval_num(&t, &b, &sym).unwrap(), 15.0);
    }

    #[test]
    fn variables_resolve_through_bindings() {
        let mut sym = SymbolTable::new();
        let t = parse_term("X + 1", &mut sym).unwrap();
        let x = sym.get("X").unwrap();
        let mut b = Bindings::new();
        b.bind(x, Term::Float(2.5));
        assert_eq!(eval_num(&t, &b, &sym).unwrap(), 3.5);
    }

    #[test]
    fn unbound_variable_is_reported() {
        let (t, sym) = setup("Speed");
        let b = Bindings::new();
        assert!(matches!(
            eval_num(&t, &b, &sym),
            Err(ArithIssue::Unbound(v)) if v == "Speed"
        ));
    }

    #[test]
    fn division_by_zero_is_reported() {
        let (t, sym) = setup("1 / 0");
        let b = Bindings::new();
        assert_eq!(eval_num(&t, &b, &sym), Err(ArithIssue::DivisionByZero));
    }

    #[test]
    fn min_max_functions() {
        let (t, sym) = setup("min(3, 5) + max(3, 5)");
        let b = Bindings::new();
        assert_eq!(eval_num(&t, &b, &sym).unwrap(), 8.0);
    }

    #[test]
    fn numeric_comparison() {
        let mut sym = SymbolTable::new();
        let l = parse_term("3.5", &mut sym).unwrap();
        let r = parse_term("3", &mut sym).unwrap();
        let mut b = Bindings::new();
        assert!(matches!(
            compare(CmpOp::Gt, &l, &r, &mut b, &sym),
            CompareOutcome::Decided(true)
        ));
        assert!(matches!(
            compare(CmpOp::Le, &l, &r, &mut b, &sym),
            CompareOutcome::Decided(false)
        ));
    }

    #[test]
    fn structural_equality_on_atoms() {
        let mut sym = SymbolTable::new();
        let l = parse_term("fishing", &mut sym).unwrap();
        let r = parse_term("fishing", &mut sym).unwrap();
        let r2 = parse_term("anchorage", &mut sym).unwrap();
        let mut b = Bindings::new();
        assert!(matches!(
            compare(CmpOp::Eq, &l, &r, &mut b, &sym),
            CompareOutcome::Decided(true)
        ));
        assert!(matches!(
            compare(CmpOp::Neq, &l, &r2, &mut b, &sym),
            CompareOutcome::Decided(true)
        ));
    }

    #[test]
    fn eq_binds_evaluated_number_not_raw_expression() {
        let mut sym = SymbolTable::new();
        let lhs = parse_term("Diff", &mut sym).unwrap();
        let rhs = parse_term("S + 1", &mut sym).unwrap();
        let s = sym.get("S").unwrap();
        let diff = sym.get("Diff").unwrap();
        let mut b = Bindings::new();
        b.bind(s, Term::Int(5));
        assert!(matches!(
            compare(CmpOp::Eq, &lhs, &rhs, &mut b, &sym),
            CompareOutcome::Bound
        ));
        // The variable must hold 6, not the compound +(5, 1), so that it
        // structurally matches integer values elsewhere.
        assert_eq!(b.lookup(diff), Some(&Term::Int(6)));
        // Non-numeric ground terms still bind structurally.
        let lhs2 = parse_term("X", &mut sym).unwrap();
        let rhs2 = parse_term("f(a)", &mut sym).unwrap();
        let x = sym.get("X").unwrap();
        assert!(matches!(
            compare(CmpOp::Eq, &lhs2, &rhs2, &mut b, &sym),
            CompareOutcome::Bound
        ));
        assert_eq!(b.lookup(x), Some(&rhs2));
    }

    #[test]
    fn eq_binds_unbound_variable() {
        let mut sym = SymbolTable::new();
        let l = parse_term("X", &mut sym).unwrap();
        let r = parse_term("fishing", &mut sym).unwrap();
        let x = sym.get("X").unwrap();
        let mut b = Bindings::new();
        assert!(matches!(
            compare(CmpOp::Eq, &l, &r, &mut b, &sym),
            CompareOutcome::Bound
        ));
        assert_eq!(b.lookup(x), Some(&r));
    }

    #[test]
    fn ordered_comparison_of_atoms_fails() {
        let mut sym = SymbolTable::new();
        let l = parse_term("fishing", &mut sym).unwrap();
        let r = parse_term("anchorage", &mut sym).unwrap();
        let mut b = Bindings::new();
        assert!(matches!(
            compare(CmpOp::Lt, &l, &r, &mut b, &sym),
            CompareOutcome::Failed(_)
        ));
    }
}
