//! Evaluation of statically-determined fluents (Definition 2.4).
//!
//! A `holdsFor` rule derives the maximal intervals of its head FVP by
//! fetching the interval lists of lower-level FVPs and combining them with
//! `union_all`, `intersect_all` and `relative_complement_all`.
//!
//! Evaluation is grounding-driven: candidate variable bindings are seeded
//! from the cached ground instances matching *any* `holdsFor` condition of
//! the rule (so `underWay(V)` is derived for a vessel that was only ever
//! `movingSpeed(V)=above`, even though the rule's first condition mentions
//! `movingSpeed(V)=below`, whose list is empty for that vessel). Each
//! candidate is then evaluated left-to-right; `holdsFor` conditions over
//! ground FVPs yield the cached list or the empty list, and conditions
//! with remaining unbound variables branch over the cache.

use crate::ast::{FluentKey, StaticLiteral, StaticRule};
use crate::description::CompiledDescription;
use crate::eval::arith::{compare, CompareOutcome};
use crate::eval::cache::FluentCache;
use crate::eval::WarningSink;
use crate::interval::IntervalList;
use crate::symbol::Symbol;
use crate::term::{match_term, Bindings, GroundFvp, Term};
use std::collections::{HashMap, HashSet};

/// Evaluates all `holdsFor` rules of fluent `key`, inserting derived
/// interval lists into the cache.
pub fn evaluate_static_fluent(
    desc: &CompiledDescription,
    key: FluentKey,
    cache: &mut FluentCache<'_>,
    warnings: &mut WarningSink,
) {
    let Some(rule_ids) = desc.static_by_fluent.get(&key) else {
        return;
    };
    for &rid in rule_ids {
        let rule = &desc.statics[rid];
        let candidates = seed_candidates(desc, rule, cache, warnings);
        let mut results: Vec<(GroundFvp, IntervalList)> = Vec::new();
        for mut cand in candidates {
            let mut env: HashMap<Symbol, IntervalList> = HashMap::new();
            eval_literals(
                desc,
                rule,
                0,
                &mut cand,
                &mut env,
                cache,
                warnings,
                &mut results,
            );
        }
        for (g, list) in results {
            cache.insert(g, list);
        }
    }
}

/// Phase 1: bindings obtained by matching every `holdsFor` condition
/// against the cached ground instances, deduplicated.
fn seed_candidates(
    desc: &CompiledDescription,
    rule: &StaticRule,
    cache: &FluentCache<'_>,
    warnings: &mut WarningSink,
) -> Vec<Bindings> {
    let eq = desc.sys.eq;
    let mut out: Vec<Bindings> = Vec::new();
    let mut seen: HashSet<Vec<(Symbol, Term)>> = HashSet::new();
    let push = |b: Bindings, seen: &mut HashSet<Vec<(Symbol, Term)>>, out: &mut Vec<Bindings>| {
        let mut sig: Vec<(Symbol, Term)> = b.iter().map(|(v, t)| (v, t.clone())).collect();
        sig.sort_by_key(|(v, _)| *v);
        if seen.insert(sig) {
            out.push(b);
        }
    };

    for lit in &rule.body {
        let StaticLiteral::HoldsFor { fvp, .. } = lit else {
            continue;
        };
        let Some(k) = fvp.key() else { continue };
        if !desc.defines(k) && !cache.knows_key(k) {
            warnings.push(format!(
                "undefined fluent '{}/{}' referenced in a holdsFor rule; it never holds",
                desc.symbols.name(k.0),
                k.1
            ));
            continue;
        }
        if fvp.fluent.is_ground() && fvp.value.is_ground() {
            push(Bindings::new(), &mut seen, &mut out);
            continue;
        }
        let pattern = Term::Compound(eq, vec![fvp.fluent.clone(), fvp.value.clone()]);
        for inst in cache.instances(k) {
            let inst_term = Term::Compound(eq, vec![inst.fluent.clone(), inst.value.clone()]);
            let mut b = Bindings::new();
            if match_term(&pattern, &inst_term, &mut b) {
                push(b, &mut seen, &mut out);
            }
        }
    }
    out
}

/// Phase 2: left-to-right evaluation with backtracking.
#[allow(clippy::too_many_arguments)]
fn eval_literals(
    desc: &CompiledDescription,
    rule: &StaticRule,
    idx: usize,
    bindings: &mut Bindings,
    env: &mut HashMap<Symbol, IntervalList>,
    cache: &FluentCache<'_>,
    warnings: &mut WarningSink,
    results: &mut Vec<(GroundFvp, IntervalList)>,
) {
    let Some(lit) = rule.body.get(idx) else {
        // All conditions satisfied: emit the head instance.
        let fluent = rule.fvp.fluent.apply(bindings);
        let value = rule.fvp.value.apply(bindings);
        if !fluent.is_ground() || !value.is_ground() {
            warnings.push(format!(
                "holdsFor head '{}' not fully instantiated; instance dropped",
                rule.fvp.display(&desc.symbols)
            ));
            return;
        }
        let Some(list) = env.get(&rule.out) else {
            return; // validation guarantees presence; defensive
        };
        if !list.is_empty() {
            results.push((GroundFvp { fluent, value }, list.clone()));
        }
        return;
    };

    match lit {
        StaticLiteral::HoldsFor { fvp, out } => {
            let fluent = fvp.fluent.apply(bindings);
            let value = fvp.value.apply(bindings);
            if fluent.is_ground() && value.is_ground() {
                let g = GroundFvp { fluent, value };
                let list = cache.get(&g).cloned().unwrap_or_default();
                env.insert(*out, list);
                eval_literals(desc, rule, idx + 1, bindings, env, cache, warnings, results);
                env.remove(out);
            } else {
                let Some(k) = fluent.signature() else { return };
                let eq = desc.sys.eq;
                let pattern = Term::Compound(eq, vec![fluent, value]);
                // Branch over matching cached instances.
                let matches: Vec<(Bindings, IntervalList)> = cache
                    .instances(k)
                    .into_iter()
                    .filter_map(|inst| {
                        let inst_term =
                            Term::Compound(eq, vec![inst.fluent.clone(), inst.value.clone()]);
                        let mut b = bindings.clone();
                        match_term(&pattern, &inst_term, &mut b)
                            .then(|| (b, cache.get(inst).cloned().unwrap_or_default()))
                    })
                    .collect();
                for (mut b, list) in matches {
                    env.insert(*out, list);
                    eval_literals(desc, rule, idx + 1, &mut b, env, cache, warnings, results);
                    env.remove(out);
                }
            }
        }
        StaticLiteral::Union { inputs, out } => {
            let lists: Vec<&IntervalList> = inputs.iter().filter_map(|v| env.get(v)).collect();
            if lists.len() != inputs.len() {
                return; // undefined interval variable; validation rejects this
            }
            let u = IntervalList::union_all(&lists);
            env.insert(*out, u);
            eval_literals(desc, rule, idx + 1, bindings, env, cache, warnings, results);
            env.remove(out);
        }
        StaticLiteral::Intersect { inputs, out } => {
            let lists: Vec<&IntervalList> = inputs.iter().filter_map(|v| env.get(v)).collect();
            if lists.len() != inputs.len() {
                return;
            }
            let i = IntervalList::intersect_all(&lists);
            env.insert(*out, i);
            eval_literals(desc, rule, idx + 1, bindings, env, cache, warnings, results);
            env.remove(out);
        }
        StaticLiteral::RelComplement {
            base,
            subtract,
            out,
        } => {
            let Some(base_list) = env.get(base).cloned() else {
                return;
            };
            let lists: Vec<&IntervalList> = subtract.iter().filter_map(|v| env.get(v)).collect();
            if lists.len() != subtract.len() {
                return;
            }
            let rc = base_list.relative_complement_all(&lists);
            env.insert(*out, rc);
            eval_literals(desc, rule, idx + 1, bindings, env, cache, warnings, results);
            env.remove(out);
        }
        StaticLiteral::Atemporal {
            negated: false,
            pattern,
        } => {
            let mut exts: Vec<Bindings> = Vec::new();
            desc.facts.for_each_match(pattern, bindings, |b| {
                exts.push(b.clone());
            });
            if !desc.facts.has_signature_of(pattern) {
                if let Some((f, a)) = pattern.signature() {
                    warnings.push(format!(
                        "no background facts for '{}/{}'",
                        desc.symbols.name(f),
                        a
                    ));
                }
            }
            for mut ext in exts {
                eval_literals(desc, rule, idx + 1, &mut ext, env, cache, warnings, results);
            }
        }
        StaticLiteral::Atemporal {
            negated: true,
            pattern,
        } => {
            if !desc.facts.any_match(pattern, bindings) {
                eval_literals(desc, rule, idx + 1, bindings, env, cache, warnings, results);
            }
        }
        StaticLiteral::Compare { op, lhs, rhs } => {
            let mark = bindings.len();
            match compare(*op, lhs, rhs, bindings, &desc.symbols) {
                CompareOutcome::Decided(true) | CompareOutcome::Bound => {
                    eval_literals(desc, rule, idx + 1, bindings, env, cache, warnings, results);
                    bindings.truncate(mark);
                }
                CompareOutcome::Decided(false) => {}
                CompareOutcome::Failed(issue) => {
                    warnings.push(format!("comparison skipped: {issue}"));
                }
            }
        }
    }
}
