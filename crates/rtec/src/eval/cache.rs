//! The per-window fluent cache.
//!
//! RTEC evaluates hierarchical event descriptions bottom-up, caching the
//! maximal intervals of every fluent-value pair so that higher-level
//! definitions reuse them (the paper's "activity hierarchies that pave the
//! way for caching"). The cache also fronts the *input* fluents — interval
//! lists supplied with the stream, such as vessel `proximity` in the
//! maritime domain.

use crate::ast::FluentKey;
use crate::interval::{IntervalList, Timepoint};
use crate::term::GroundFvp;
use std::cell::Cell;
use std::collections::HashMap;

/// Interval lists of ground FVPs known in the current window: computed
/// (lower-strata) fluents plus input fluents.
#[derive(Debug)]
pub struct FluentCache<'a> {
    chunk: HashMap<GroundFvp, IntervalList>,
    chunk_by_key: HashMap<FluentKey, Vec<GroundFvp>>,
    inputs: &'a HashMap<GroundFvp, IntervalList>,
    inputs_by_key: &'a HashMap<FluentKey, Vec<GroundFvp>>,
    // Hit/miss tallies stay in thread-local `Cell`s on the hot lookup
    // path and reach the global atomic counters once, on drain.
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<'a> FluentCache<'a> {
    /// Creates a cache fronting the given input-fluent maps.
    pub fn new(
        inputs: &'a HashMap<GroundFvp, IntervalList>,
        inputs_by_key: &'a HashMap<FluentKey, Vec<GroundFvp>>,
    ) -> FluentCache<'a> {
        FluentCache {
            chunk: HashMap::new(),
            chunk_by_key: HashMap::new(),
            inputs,
            inputs_by_key,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The interval list of `fvp`, if known (computed first, inputs second).
    pub fn get(&self, fvp: &GroundFvp) -> Option<&IntervalList> {
        let found = self.chunk.get(fvp).or_else(|| self.inputs.get(fvp));
        let tally = if found.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        tally.set(tally.get() + 1);
        found
    }

    /// Whether `fvp` holds at `t` according to the cache.
    pub fn holds_at(&self, fvp: &GroundFvp, t: Timepoint) -> bool {
        self.get(fvp).is_some_and(|l| l.contains(t))
    }

    /// All ground instances with the given fluent key (computed plus
    /// input), without duplicates.
    pub fn instances(&self, key: FluentKey) -> Vec<&GroundFvp> {
        let mut out: Vec<&GroundFvp> = Vec::new();
        if let Some(v) = self.chunk_by_key.get(&key) {
            out.extend(v.iter());
        }
        if let Some(v) = self.inputs_by_key.get(&key) {
            for f in v {
                if !self.chunk.contains_key(f) {
                    out.push(f);
                }
            }
        }
        out
    }

    /// Whether the cache knows any instance (computed or input) of `key`.
    pub fn knows_key(&self, key: FluentKey) -> bool {
        self.chunk_by_key.contains_key(&key) || self.inputs_by_key.contains_key(&key)
    }

    /// Records the interval list of a computed FVP, unioning with any list
    /// already recorded for it. Empty lists are ignored.
    pub fn insert(&mut self, fvp: GroundFvp, list: IntervalList) {
        if list.is_empty() {
            return;
        }
        match self.chunk.get_mut(&fvp) {
            Some(existing) => existing.merge(&list),
            None => {
                if let Some(key) = fvp.fluent.signature() {
                    self.chunk_by_key.entry(key).or_default().push(fvp.clone());
                }
                self.chunk.insert(fvp, list);
            }
        }
    }

    /// Drains the computed entries (called when folding a window's results
    /// into the global recognition output) and flushes the hit/miss
    /// tallies to the global metrics.
    pub fn into_computed(self) -> HashMap<GroundFvp, IntervalList> {
        let metrics = crate::obs::metrics();
        metrics.cache_hits.add(self.hits.get());
        metrics.cache_misses.add(self.misses.get());
        self.chunk
    }

    /// Iterates over the computed entries.
    pub fn computed(&self) -> impl Iterator<Item = (&GroundFvp, &IntervalList)> {
        self.chunk.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;
    use crate::symbol::SymbolTable;
    use crate::term::Term;

    fn gfvp(sym: &mut SymbolTable, fluent: &str, value: &str) -> GroundFvp {
        let f = parse_term(fluent, sym).unwrap();
        let v = parse_term(value, sym).unwrap();
        GroundFvp::new(f, v).unwrap()
    }

    #[test]
    fn inputs_are_visible_through_cache() {
        let mut sym = SymbolTable::new();
        let fvp = gfvp(&mut sym, "proximity(v1, v2)", "true");
        let key = fvp.fluent.signature().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(fvp.clone(), IntervalList::from_pairs(&[(0, 10)]));
        let mut by_key = HashMap::new();
        by_key.insert(key, vec![fvp.clone()]);
        let cache = FluentCache::new(&inputs, &by_key);
        assert!(cache.holds_at(&fvp, 5));
        assert!(!cache.holds_at(&fvp, 10));
        assert_eq!(cache.instances(key).len(), 1);
    }

    #[test]
    fn insert_unions_duplicate_entries() {
        let mut sym = SymbolTable::new();
        let fvp = gfvp(&mut sym, "f(v1)", "true");
        let inputs = HashMap::new();
        let by_key = HashMap::new();
        let mut cache = FluentCache::new(&inputs, &by_key);
        cache.insert(fvp.clone(), IntervalList::from_pairs(&[(0, 5)]));
        cache.insert(fvp.clone(), IntervalList::from_pairs(&[(5, 9)]));
        assert_eq!(cache.get(&fvp).unwrap().len(), 1);
        assert!(cache.holds_at(&fvp, 8));
    }

    #[test]
    fn empty_insert_is_ignored() {
        let mut sym = SymbolTable::new();
        let fvp = gfvp(&mut sym, "f(v1)", "true");
        let inputs = HashMap::new();
        let by_key = HashMap::new();
        let mut cache = FluentCache::new(&inputs, &by_key);
        cache.insert(fvp.clone(), IntervalList::new());
        assert!(cache.get(&fvp).is_none());
        let _ = Term::Int(0); // silence unused import in some cfgs
    }
}
