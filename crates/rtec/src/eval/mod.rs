//! The recognition engine's evaluation internals.
//!
//! Split by concern: [`arith`] evaluates arithmetic comparisons,
//! [`events`] indexes a window's input events, [`cache`] holds computed and
//! input interval lists, [`body`] solves simple-rule bodies by backtracking,
//! [`simple`] derives maximal intervals of simple fluents under the law of
//! inertia, and [`statics`] evaluates statically-determined fluents via the
//! interval constructs.

pub mod arith;
pub mod body;
pub mod cache;
pub mod delta;
pub mod events;
pub mod simple;
pub mod statics;

use std::collections::HashSet;

/// Collects deduplicated, human-readable evaluation warnings (undefined
/// fluents, unbound arithmetic, non-ground rule heads, ...).
#[derive(Debug, Default)]
pub struct WarningSink {
    seen: HashSet<String>,
    ordered: Vec<String>,
}

impl WarningSink {
    /// Creates an empty sink.
    pub fn new() -> WarningSink {
        WarningSink::default()
    }

    /// Records a warning once; duplicates are dropped.
    pub fn push(&mut self, message: impl Into<String>) {
        let message = message.into();
        if self.seen.insert(message.clone()) {
            self.ordered.push(message);
        }
    }

    /// The warnings in first-occurrence order.
    pub fn messages(&self) -> &[String] {
        &self.ordered
    }

    /// Consumes the sink, returning the ordered warnings.
    pub fn into_messages(self) -> Vec<String> {
        self.ordered
    }

    /// Number of distinct warnings.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// Whether no warnings were recorded.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warnings_are_deduplicated() {
        let mut w = WarningSink::new();
        w.push("a");
        w.push("b");
        w.push("a");
        assert_eq!(w.messages(), &["a".to_string(), "b".to_string()]);
        assert_eq!(w.len(), 2);
    }
}
