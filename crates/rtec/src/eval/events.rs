//! Per-window index over input events.

use crate::interval::Timepoint;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::HashMap;

/// Events of one processing window, indexed by `(functor, arity)` and
/// sorted by time within each bucket.
#[derive(Debug, Default)]
pub struct EventIndex {
    by_sig: HashMap<(Symbol, usize), Vec<(Timepoint, Term)>>,
    count: usize,
}

impl EventIndex {
    /// Builds the index from `(event, time)` pairs. Events without a
    /// functor (numbers, variables) are ignored.
    pub fn build(events: impl IntoIterator<Item = (Term, Timepoint)>) -> EventIndex {
        let mut idx = EventIndex::default();
        for (ev, t) in events {
            let Some(sig) = ev.signature() else { continue };
            idx.by_sig.entry(sig).or_default().push((t, ev));
            idx.count += 1;
        }
        for bucket in idx.by_sig.values_mut() {
            bucket.sort_by_key(|(t, _)| *t);
        }
        idx
    }

    /// Total number of indexed events.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the index holds no events.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// All events with the given signature, time-ordered.
    pub fn all(&self, sig: (Symbol, usize)) -> &[(Timepoint, Term)] {
        self.by_sig.get(&sig).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The events with the given signature occurring exactly at `t`.
    pub fn at(&self, sig: (Symbol, usize), t: Timepoint) -> &[(Timepoint, Term)] {
        let bucket = self.all(sig);
        let lo = bucket.partition_point(|(et, _)| *et < t);
        let hi = bucket.partition_point(|(et, _)| *et <= t);
        &bucket[lo..hi]
    }

    /// The signatures present in this window.
    pub fn signatures(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.by_sig.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;
    use crate::symbol::SymbolTable;

    #[test]
    fn index_and_point_lookup() {
        let mut sym = SymbolTable::new();
        let e1 = parse_term("e(v1)", &mut sym).unwrap();
        let e2 = parse_term("e(v2)", &mut sym).unwrap();
        let f1 = parse_term("f(v1)", &mut sym).unwrap();
        let idx = EventIndex::build(vec![
            (e1.clone(), 5),
            (e2.clone(), 5),
            (f1, 5),
            (e1.clone(), 9),
        ]);
        assert_eq!(idx.len(), 4);
        let e = sym.get("e").unwrap();
        assert_eq!(idx.all((e, 1)).len(), 3);
        assert_eq!(idx.at((e, 1), 5).len(), 2);
        assert_eq!(idx.at((e, 1), 9).len(), 1);
        assert!(idx.at((e, 1), 7).is_empty());
    }

    #[test]
    fn unknown_signature_is_empty() {
        let idx = EventIndex::build(Vec::new());
        let mut sym = SymbolTable::new();
        let g = sym.intern("g");
        assert!(idx.all((g, 2)).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn buckets_are_time_sorted() {
        let mut sym = SymbolTable::new();
        let e = parse_term("e(v1)", &mut sym).unwrap();
        let idx = EventIndex::build(vec![(e.clone(), 9), (e.clone(), 3), (e, 6)]);
        let sig = (sym.get("e").unwrap(), 1);
        let times: Vec<_> = idx.all(sig).iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![3, 6, 9]);
    }
}
