//! Per-window change detection for incremental re-evaluation.
//!
//! Candidate instances of a simple fluent's rules come *only* from the
//! first body literal (a positive `happensAt`): the evaluators scan the
//! window's [`EventIndex`] for events matching that literal's signature
//! and solve the remaining conditions per candidate. A fluent key whose
//! rules find **zero** candidate events therefore evaluates exactly as
//! if the window were empty — the finalization step folds the carried
//! inertia and nothing else. [`WindowDelta`] precomputes that emptiness
//! per key, so incremental mode can hand such "clean" keys an empty
//! index and skip the event scan while remaining identical by
//! construction (same code path, same finalization, same warnings —
//! none in either case).
//!
//! The analysis is deliberately conservative:
//!
//! * a rule whose first literal is not the expected positive
//!   `happensAt` shape (the validator forbids this; evaluators skip such
//!   rules defensively) marks its key dirty,
//! * statically-determined fluents are **not** tracked — they read the
//!   cache and the input-fluent intervals, both of which may change
//!   without any event arriving, so they are always re-evaluated,
//! * dependency effects need no tracking at all: a clean key has zero
//!   candidates, so its body conditions (which are only solved *per
//!   candidate*) never read another fluent's output.

use crate::ast::{BodyLiteral, FluentKey};
use crate::description::CompiledDescription;
use crate::eval::events::EventIndex;
use std::collections::HashSet;

/// The set of simple-fluent keys whose rules can match at least one
/// event of the current window ("dirty"). Keys absent from the set are
/// provably unaffected by the window's events and may be evaluated
/// against an empty index.
#[derive(Debug, Default)]
pub struct WindowDelta {
    dirty: HashSet<FluentKey>,
    simple_keys: usize,
}

impl WindowDelta {
    /// Computes the dirty set of one window: a simple-fluent key is
    /// dirty iff some event of `events` matches the signature of the
    /// first body literal of one of its rules (or a rule has an
    /// unexpected shape, conservatively).
    pub fn compute(desc: &CompiledDescription, events: &EventIndex) -> WindowDelta {
        let mut dirty = HashSet::new();
        let mut simple_keys = 0;
        for (key, rule_ids) in &desc.simple_by_fluent {
            simple_keys += 1;
            let affected = rule_ids.iter().any(|&rid| {
                let rule = &desc.simple[rid];
                match rule.body.first() {
                    Some(BodyLiteral::HappensAt {
                        negated: false,
                        event,
                    }) => match event.signature() {
                        Some(sig) => !events.all(sig).is_empty(),
                        // First literal without a functor: defensive.
                        None => true,
                    },
                    // Validation guarantees the shape; defensive.
                    _ => true,
                }
            });
            if affected {
                dirty.insert(*key);
            }
        }
        WindowDelta { dirty, simple_keys }
    }

    /// Whether the window's events can affect the simple fluent `key`.
    pub fn is_dirty(&self, key: FluentKey) -> bool {
        self.dirty.contains(&key)
    }

    /// Number of dirty simple-fluent keys.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Number of simple-fluent keys provably unaffected by the window.
    pub fn clean_count(&self) -> usize {
        self.simple_keys - self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::EventDescription;

    const SRC: &str = "
        initiatedAt(a(V)=true, T) :- happensAt(astart(V), T).
        terminatedAt(a(V)=true, T) :- happensAt(aend(V), T).
        initiatedAt(b(V)=true, T) :- happensAt(bstart(V), T).
    ";

    #[test]
    fn only_matching_keys_are_dirty() {
        let mut desc = EventDescription::parse(SRC).unwrap();
        let ev = desc.term("bstart(v1)").unwrap();
        let compiled = desc.compile().unwrap();
        let b = compiled.symbols.get("b").unwrap();
        let a = compiled.symbols.get("a").unwrap();
        let index = EventIndex::build(vec![(ev, 5)]);
        let delta = WindowDelta::compute(&compiled, &index);
        assert!(delta.is_dirty((b, 1)));
        assert!(!delta.is_dirty((a, 1)));
        assert_eq!(delta.dirty_count(), 1);
        assert_eq!(delta.clean_count(), 1);
    }

    #[test]
    fn empty_window_is_all_clean() {
        let desc = EventDescription::parse(SRC).unwrap().compile().unwrap();
        let delta = WindowDelta::compute(&desc, &EventIndex::build(Vec::new()));
        assert_eq!(delta.dirty_count(), 0);
        assert_eq!(delta.clean_count(), 2);
    }
}
