//! Background ("atemporal") knowledge store.
//!
//! RTEC rules consult static domain knowledge such as
//! `areaType(AreaId, AreaType)`, `vesselType(Vessel, Type)` and
//! `thresholds(Name, Value)`. Facts are ground; queries are patterns with
//! variables that get bound by matching.

use crate::symbol::Symbol;
use crate::term::{match_term, Bindings, Term};
use std::collections::HashMap;

/// An indexed store of ground facts.
///
/// Facts are indexed by `(functor, arity)` and additionally by their
/// first argument: rule bodies overwhelmingly query with the first
/// argument already bound (e.g. `vesselType(v17, Type)` after the
/// vessel was bound by an event), so the first-argument index turns the
/// dominant lookups into O(1) bucket probes instead of scans over every
/// fact of the predicate.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    by_signature: HashMap<(Symbol, usize), Vec<Term>>,
    by_first_arg: HashMap<(Symbol, usize, Term), Vec<Term>>,
    len: usize,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> FactStore {
        FactStore::default()
    }

    /// Builds a store from ground facts; non-indexable terms (numbers,
    /// variables) are ignored.
    pub fn from_facts(facts: impl IntoIterator<Item = Term>) -> FactStore {
        let mut s = FactStore::new();
        for f in facts {
            s.add(f);
        }
        s
    }

    /// Adds one ground fact. Duplicates are stored once.
    pub fn add(&mut self, fact: Term) {
        let Some(sig) = fact.signature() else { return };
        let bucket = self.by_signature.entry(sig).or_default();
        if !bucket.contains(&fact) {
            if let Some(first) = fact.args().first() {
                self.by_first_arg
                    .entry((sig.0, sig.1, first.clone()))
                    .or_default()
                    .push(fact.clone());
            }
            bucket.push(fact);
            self.len += 1;
        }
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether any fact has the given signature.
    pub fn has_signature(&self, sig: (Symbol, usize)) -> bool {
        self.by_signature.contains_key(&sig)
    }

    /// Whether any fact shares `pattern`'s signature.
    pub fn has_signature_of(&self, pattern: &Term) -> bool {
        pattern
            .signature()
            .is_some_and(|sig| self.has_signature(sig))
    }

    /// The facts that can possibly match `pattern`: the first-argument
    /// bucket when the pattern's first argument is ground, else the full
    /// signature bucket.
    pub fn candidates(&self, pattern: &Term) -> &[Term] {
        let Some(sig) = pattern.signature() else {
            return &[];
        };
        if let Some(first) = pattern.args().first() {
            if first.is_ground() {
                return self
                    .by_first_arg
                    .get(&(sig.0, sig.1, first.clone()))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
            }
        }
        self.by_signature
            .get(&sig)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Calls `on_solution` once per fact matching `pattern` under
    /// `bindings`; bindings are extended for the duration of each call and
    /// restored afterwards.
    ///
    /// The pattern is instantiated with the current bindings *before* the
    /// index lookup, so a variable first argument that is already bound
    /// still hits the narrow first-argument bucket.
    pub fn for_each_match(
        &self,
        pattern: &Term,
        bindings: &mut Bindings,
        mut on_solution: impl FnMut(&mut Bindings),
    ) {
        let applied = pattern.apply(bindings);
        let mark = bindings.len();
        for fact in self.candidates(&applied) {
            if match_term(&applied, fact, bindings) {
                on_solution(bindings);
                bindings.truncate(mark);
            }
        }
    }

    /// Whether at least one fact matches `pattern` under `bindings`
    /// (bindings are left untouched).
    pub fn any_match(&self, pattern: &Term, bindings: &mut Bindings) -> bool {
        let applied = pattern.apply(bindings);
        let mark = bindings.len();
        for fact in self.candidates(&applied) {
            if match_term(&applied, fact, bindings) {
                bindings.truncate(mark);
                return true;
            }
        }
        false
    }

    /// Iterates over all facts.
    pub fn iter(&self) -> impl Iterator<Item = &Term> {
        self.by_signature.values().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;
    use crate::symbol::SymbolTable;

    fn store(facts: &[&str], sym: &mut SymbolTable) -> FactStore {
        FactStore::from_facts(facts.iter().map(|f| parse_term(f, sym).unwrap()))
    }

    #[test]
    fn add_and_query() {
        let mut sym = SymbolTable::new();
        let s = store(
            &["areaType(a1, fishing)", "areaType(a2, anchorage)"],
            &mut sym,
        );
        assert_eq!(s.len(), 2);
        let pat = parse_term("areaType(X, fishing)", &mut sym).unwrap();
        let mut b = Bindings::new();
        let mut hits = 0;
        s.for_each_match(&pat, &mut b, |bb| {
            hits += 1;
            let x = sym.get("X").unwrap();
            assert!(bb.lookup(x).is_some());
        });
        assert_eq!(hits, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn duplicates_stored_once() {
        let mut sym = SymbolTable::new();
        let s = store(&["f(a)", "f(a)"], &mut sym);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn any_match_restores_bindings() {
        let mut sym = SymbolTable::new();
        let s = store(&["thresholds(max, 5.0)"], &mut sym);
        let pat = parse_term("thresholds(max, V)", &mut sym).unwrap();
        let mut b = Bindings::new();
        assert!(s.any_match(&pat, &mut b));
        assert!(b.is_empty());
        let miss = parse_term("thresholds(min, V)", &mut sym).unwrap();
        assert!(!s.any_match(&miss, &mut b));
    }

    #[test]
    fn multiple_solutions_enumerated() {
        let mut sym = SymbolTable::new();
        let s = store(
            &[
                "areaType(a1, fishing)",
                "areaType(a2, fishing)",
                "areaType(a3, natura)",
            ],
            &mut sym,
        );
        let pat = parse_term("areaType(X, fishing)", &mut sym).unwrap();
        let mut b = Bindings::new();
        let mut ids = Vec::new();
        let x = sym.get("X").unwrap();
        s.for_each_match(&pat, &mut b, |bb| {
            ids.push(bb.lookup(x).unwrap().clone());
        });
        assert_eq!(ids.len(), 2);
    }
}
