//! Raw clauses and the typed rule IR produced by validation.
//!
//! A [`Clause`] is exactly what the parser saw: a head term and body terms.
//! The similarity metric (paper Section 4) works on this purely syntactic
//! level. Validation ([`crate::validate`]) refines clauses into
//! [`SimpleRule`]s (Definition 2.2), [`StaticRule`]s (Definition 2.4) and
//! ground background facts, which is what the engine executes.

use crate::error::Pos;
use crate::symbol::{Symbol, SymbolTable};
use crate::term::Term;

/// A parsed clause: `head.` or `head :- b1, ..., bn.`
#[derive(Clone, Debug, PartialEq)]
pub struct Clause {
    /// Head term.
    pub head: Term,
    /// Body terms, empty for facts. A negated literal is wrapped as
    /// `not(L)`.
    pub body: Vec<Term>,
    /// Source position of the clause start.
    pub pos: Pos,
}

impl Clause {
    /// Renders the clause back to concrete syntax.
    pub fn display(&self, symbols: &SymbolTable) -> String {
        if self.body.is_empty() {
            format!("{}.", self.head.display(symbols))
        } else {
            let body = self
                .body
                .iter()
                .map(|b| {
                    // Render `not(L)` as prefix `not L`, as in the paper.
                    if let Term::Compound(f, args) = b {
                        if symbols.name(*f) == "not" && args.len() == 1 {
                            return format!("not {}", args[0].display(symbols));
                        }
                    }
                    b.display(symbols).to_string()
                })
                .collect::<Vec<_>>()
                .join(",\n    ");
            format!("{} :-\n    {}.", self.head.display(symbols), body)
        }
    }

    /// The distinct variables of the clause in first-occurrence order
    /// (head first, then body).
    pub fn variables(&self) -> Vec<Symbol> {
        let mut all = Vec::new();
        self.head.variables_into(&mut all);
        for b in &self.body {
            b.variables_into(&mut all);
        }
        let mut seen = Vec::new();
        for v in all {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }
}

/// A fluent-value pair `F=V`, possibly non-ground.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Fvp {
    /// The fluent term, e.g. `withinArea(Vl, AreaType)`.
    pub fluent: Term,
    /// The value term, e.g. `true` or `nearPorts`.
    pub value: Term,
}

impl Fvp {
    /// Destructures a term of the form `=(F, V)` into an FVP.
    pub fn from_term(t: &Term, eq_sym: Symbol) -> Option<Fvp> {
        match t {
            Term::Compound(f, args) if *f == eq_sym && args.len() == 2 => Some(Fvp {
                fluent: args[0].clone(),
                value: args[1].clone(),
            }),
            _ => None,
        }
    }

    /// The `(functor, arity)` key of the fluent, used for dependency
    /// analysis and caching.
    pub fn key(&self) -> Option<FluentKey> {
        self.fluent.signature()
    }

    /// Renders the FVP as `fluent=value`.
    pub fn display(&self, symbols: &SymbolTable) -> String {
        format!(
            "{}={}",
            self.fluent.display(symbols),
            self.value.display(symbols)
        )
    }
}

/// Identifies a fluent by functor and arity, e.g. `(withinArea, 2)`.
pub type FluentKey = (Symbol, usize);

/// Comparison operators usable in rule bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` — arithmetic or structural equality.
    Eq,
    /// `\=`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=<`
    Le,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The concrete-syntax spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "\\=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "=<",
            CmpOp::Ge => ">=",
        }
    }

    /// The complementary operator: `not (l op r)` is equivalent to
    /// `l op.negate() r` for these total comparisons.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Le => CmpOp::Gt,
        }
    }

    /// Parses an operator name.
    pub fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "=" => CmpOp::Eq,
            "\\=" => CmpOp::Neq,
            "<" => CmpOp::Lt,
            ">" => CmpOp::Gt,
            "=<" => CmpOp::Le,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// A body literal of a simple-fluent rule (Definition 2.2, extended with
/// background-knowledge conditions and arithmetic comparisons, which the
/// paper's own example rules use).
#[derive(Clone, Debug, PartialEq)]
pub enum BodyLiteral {
    /// `[not] happensAt(E, T)` — all literals share the rule's time variable.
    HappensAt {
        /// Whether the literal is negated.
        negated: bool,
        /// The event pattern.
        event: Term,
    },
    /// `[not] holdsAt(F=V, T)`.
    HoldsAt {
        /// Whether the literal is negated.
        negated: bool,
        /// The fluent-value pair queried.
        fvp: Fvp,
    },
    /// `[not] p(args...)` — a background-knowledge lookup such as
    /// `areaType(AreaId, AreaType)` or `thresholds(hcNearCoastMax, Max)`.
    Atemporal {
        /// Whether the literal is negated.
        negated: bool,
        /// The fact pattern.
        pattern: Term,
    },
    /// An arithmetic comparison such as `Speed > Max`.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand (arithmetic expression term).
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
}

/// Whether a simple rule initiates or terminates its FVP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimpleKind {
    /// `initiatedAt(F=V, T)` head.
    Initiated,
    /// `terminatedAt(F=V, T)` head.
    Terminated,
}

/// A validated simple-fluent rule.
#[derive(Clone, Debug, PartialEq)]
pub struct SimpleRule {
    /// Initiation or termination.
    pub kind: SimpleKind,
    /// The head FVP (typically non-ground).
    pub fvp: Fvp,
    /// The head's time variable.
    pub time_var: Symbol,
    /// Body literals in source order; the first is a positive `happensAt`.
    pub body: Vec<BodyLiteral>,
    /// Index of the originating clause in the event description.
    pub clause: usize,
}

/// A body element of a statically-determined-fluent rule (Definition 2.4,
/// extended with background conditions, which real RTEC event descriptions
/// such as the maritime one rely on).
#[derive(Clone, Debug, PartialEq)]
pub enum StaticLiteral {
    /// `holdsFor(F=V, I)` — fetches the maximal intervals of `F=V` into the
    /// interval variable `out`.
    HoldsFor {
        /// The fluent-value pair referenced.
        fvp: Fvp,
        /// The interval variable receiving the list.
        out: Symbol,
    },
    /// `union_all([I1, ..., Ik], Out)`.
    Union {
        /// Input interval variables.
        inputs: Vec<Symbol>,
        /// Output interval variable.
        out: Symbol,
    },
    /// `intersect_all([I1, ..., Ik], Out)`.
    Intersect {
        /// Input interval variables.
        inputs: Vec<Symbol>,
        /// Output interval variable.
        out: Symbol,
    },
    /// `relative_complement_all(I, [I1, ..., Ik], Out)`.
    RelComplement {
        /// The base interval variable.
        base: Symbol,
        /// Interval variables whose union is subtracted from `base`.
        subtract: Vec<Symbol>,
        /// Output interval variable.
        out: Symbol,
    },
    /// `[not] p(args...)` background lookup.
    Atemporal {
        /// Whether the literal is negated.
        negated: bool,
        /// The fact pattern.
        pattern: Term,
    },
    /// Arithmetic comparison.
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
}

/// A validated statically-determined-fluent rule.
#[derive(Clone, Debug, PartialEq)]
pub struct StaticRule {
    /// The head FVP.
    pub fvp: Fvp,
    /// The head's output interval variable.
    pub out: Symbol,
    /// Body elements in source order.
    pub body: Vec<StaticLiteral>,
    /// Index of the originating clause in the event description.
    pub clause: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn clause_display_round_trips_structure() {
        let mut sym = SymbolTable::new();
        let src = "initiatedAt(f(V)=true, T) :- happensAt(e(V), T), not holdsAt(g(V)=true, T).";
        let clauses = parse_program(src, &mut sym).unwrap();
        let printed = clauses[0].display(&sym);
        // Reparse the printed form; it must be structurally identical.
        let reparsed = parse_program(&printed, &mut sym).unwrap();
        assert_eq!(clauses[0].head, reparsed[0].head);
        assert_eq!(clauses[0].body, reparsed[0].body);
    }

    #[test]
    fn fvp_from_term() {
        let mut sym = SymbolTable::new();
        let clauses = parse_program("holdsAt(f(V)=true, T).", &mut sym).unwrap();
        let eq = sym.get("=").unwrap();
        let inner = &clauses[0].head.args()[0];
        let fvp = Fvp::from_term(inner, eq).unwrap();
        assert_eq!(fvp.value, Term::Atom(sym.get("true").unwrap()));
        assert_eq!(fvp.key().unwrap().1, 1);
    }

    #[test]
    fn clause_variables_ordered() {
        let mut sym = SymbolTable::new();
        let src = "initiatedAt(f(B)=true, T) :- happensAt(e(A, B), T).";
        let clauses = parse_program(src, &mut sym).unwrap();
        let vars = clauses[0].variables();
        let names: Vec<_> = vars.iter().map(|v| sym.name(*v)).collect();
        assert_eq!(names, vec!["B", "T", "A"]);
    }

    #[test]
    fn cmp_op_round_trip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Gt,
            CmpOp::Le,
            CmpOp::Ge,
        ] {
            assert_eq!(CmpOp::parse(op.as_str()), Some(op));
        }
        assert_eq!(CmpOp::parse("=="), None);
    }
}
