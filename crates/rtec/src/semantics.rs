//! Shared semantic model: the fluent dependency graph.
//!
//! Both the compiler ([`crate::description`], which needs a bottom-up
//! stratum order for evaluation) and external analyzers (rtec-lint's
//! RL0301 cycle check, rtec-plan's stratum schedule) reason over the same
//! graph: defined fluents as nodes, "the definition of `head` references
//! `dep`" as edges. This module is the single home of that graph so the
//! three consumers cannot drift apart.
//!
//! Determinism contract: node iteration is sorted by [`FluentKey`],
//! dependency iteration is sorted, [`FluentGraph::stratify`] processes
//! zero-indegree nodes in sorted order (Kahn's algorithm), and
//! [`FluentGraph::cycles`] visits nodes and neighbours in sorted order —
//! so every derived artefact (stratum order, cycle reports) is a pure
//! function of the rule set.

use crate::ast::{BodyLiteral, FluentKey, SimpleRule, StaticLiteral, StaticRule};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Why no stratum order exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StratifyFailure {
    /// A fluent's definition references the fluent itself.
    SelfCycle(FluentKey),
    /// A dependency cycle through the listed fluents (sorted).
    Cycle(Vec<FluentKey>),
}

/// The fluent dependency graph of one event description.
#[derive(Clone, Debug, Default)]
pub struct FluentGraph {
    defined: BTreeSet<FluentKey>,
    /// head -> referenced defined fluents (self-edges included).
    deps: BTreeMap<FluentKey, BTreeSet<FluentKey>>,
    /// Self-referencing heads, in the order they were recorded.
    self_deps: Vec<FluentKey>,
}

impl FluentGraph {
    /// Creates a graph over the given defined fluents, with no edges yet.
    pub fn new(defined: impl IntoIterator<Item = FluentKey>) -> FluentGraph {
        FluentGraph {
            defined: defined.into_iter().collect(),
            deps: BTreeMap::new(),
            self_deps: Vec::new(),
        }
    }

    /// Builds the graph of a validated rule set: an edge `head -> dep` for
    /// every `holdsAt` condition of a simple rule and every `holdsFor`
    /// condition of a static rule whose fluent is itself defined.
    pub fn from_rules(
        defined: impl IntoIterator<Item = FluentKey>,
        simple: &[SimpleRule],
        statics: &[StaticRule],
    ) -> FluentGraph {
        let mut g = FluentGraph::new(defined);
        for r in simple {
            let Some(head) = r.fvp.key() else { continue };
            for lit in &r.body {
                if let BodyLiteral::HoldsAt { fvp, .. } = lit {
                    if let Some(dep) = fvp.key() {
                        g.add_dependency(head, dep);
                    }
                }
            }
        }
        for r in statics {
            let Some(head) = r.fvp.key() else { continue };
            for lit in &r.body {
                if let StaticLiteral::HoldsFor { fvp, .. } = lit {
                    if let Some(dep) = fvp.key() {
                        g.add_dependency(head, dep);
                    }
                }
            }
        }
        g
    }

    /// Records that the definition of `head` references `dep`. Edges whose
    /// endpoints are not defined fluents are ignored.
    pub fn add_dependency(&mut self, head: FluentKey, dep: FluentKey) {
        if !self.defined.contains(&head) || !self.defined.contains(&dep) {
            return;
        }
        if head == dep {
            self.self_deps.push(head);
        }
        self.deps.entry(head).or_default().insert(dep);
    }

    /// The defined fluents, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = FluentKey> + '_ {
        self.defined.iter().copied()
    }

    /// The defined fluents referenced by `head`'s definition, sorted.
    pub fn dependencies(&self, head: FluentKey) -> impl Iterator<Item = FluentKey> + '_ {
        self.deps.get(&head).into_iter().flatten().copied()
    }

    /// A bottom-up evaluation order (dependencies before dependents) via
    /// Kahn's algorithm, deterministic under the sorted-queue tie-break.
    ///
    /// A self-referencing fluent is reported before any longer cycle; when
    /// several definitions self-reference, the last recorded one wins
    /// (matching the compiler's historical rule-scan order).
    pub fn stratify(&self) -> Result<Vec<FluentKey>, StratifyFailure> {
        if let Some(&k) = self.self_deps.last() {
            return Err(StratifyFailure::SelfCycle(k));
        }
        let nodes: Vec<FluentKey> = self.defined.iter().copied().collect();
        let mut indegree: HashMap<FluentKey, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        // dep -> dependents
        let mut dependents: HashMap<FluentKey, Vec<FluentKey>> = HashMap::new();
        for (&head, deps) in &self.deps {
            for &dep in deps {
                if dep == head {
                    continue;
                }
                dependents.entry(dep).or_default().push(head);
                *indegree.entry(head).or_default() += 1;
            }
        }
        let mut queue: Vec<FluentKey> =
            nodes.iter().filter(|n| indegree[n] == 0).copied().collect();
        queue.sort_unstable();
        let mut order = Vec::with_capacity(nodes.len());
        let mut qi = 0;
        while qi < queue.len() {
            let n = queue[qi];
            qi += 1;
            order.push(n);
            if let Some(ds) = dependents.get(&n) {
                let mut newly_free: Vec<FluentKey> = Vec::new();
                for &d in ds {
                    let e = indegree.get_mut(&d).expect("node exists");
                    *e -= 1;
                    if *e == 0 {
                        newly_free.push(d);
                    }
                }
                newly_free.sort_unstable();
                queue.extend(newly_free);
            }
        }
        if order.len() != nodes.len() {
            let remaining: Vec<FluentKey> = nodes
                .iter()
                .filter(|n| !order.contains(n))
                .copied()
                .collect();
            return Err(StratifyFailure::Cycle(remaining));
        }
        Ok(order)
    }

    /// Enumerates dependency cycles by depth-first search, one
    /// representative path per distinct cycle (deduplicated by member
    /// set), in deterministic discovery order. A self-edge yields a
    /// one-element cycle.
    pub fn cycles(&self) -> Vec<Vec<FluentKey>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        fn dfs(
            node: FluentKey,
            deps: &BTreeMap<FluentKey, BTreeSet<FluentKey>>,
            color: &mut BTreeMap<FluentKey, Color>,
            stack: &mut Vec<FluentKey>,
            found: &mut Vec<Vec<FluentKey>>,
        ) {
            color.insert(node, Color::Grey);
            stack.push(node);
            if let Some(next) = deps.get(&node) {
                for &n in next {
                    match color.get(&n).copied().unwrap_or(Color::Black) {
                        Color::White => dfs(n, deps, color, stack, found),
                        Color::Grey => {
                            let start = stack.iter().position(|&k| k == n).unwrap_or(0);
                            found.push(stack[start..].to_vec());
                        }
                        Color::Black => {}
                    }
                }
            }
            stack.pop();
            color.insert(node, Color::Black);
        }

        let mut color: BTreeMap<FluentKey, Color> =
            self.defined.iter().map(|&k| (k, Color::White)).collect();
        let mut found = Vec::new();
        for &k in &self.defined {
            if color.get(&k) == Some(&Color::White) {
                dfs(k, &self.deps, &mut color, &mut Vec::new(), &mut found);
            }
        }
        let mut seen: BTreeSet<BTreeSet<FluentKey>> = BTreeSet::new();
        found
            .into_iter()
            .filter(|cycle| seen.insert(cycle.iter().copied().collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn key(sym: &mut SymbolTable, name: &str) -> FluentKey {
        (sym.intern(name), 1)
    }

    #[test]
    fn stratify_orders_dependencies_first() {
        let mut sym = SymbolTable::new();
        let (a, b, c) = (key(&mut sym, "a"), key(&mut sym, "b"), key(&mut sym, "c"));
        let mut g = FluentGraph::new([a, b, c]);
        g.add_dependency(c, b); // c references b
        g.add_dependency(b, a); // b references a
        assert_eq!(g.stratify().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn self_cycle_beats_longer_cycle() {
        let mut sym = SymbolTable::new();
        let (a, b) = (key(&mut sym, "a"), key(&mut sym, "b"));
        let mut g = FluentGraph::new([a, b]);
        g.add_dependency(a, b);
        g.add_dependency(b, a);
        g.add_dependency(b, b);
        assert_eq!(g.stratify(), Err(StratifyFailure::SelfCycle(b)));
    }

    #[test]
    fn cycle_lists_members_sorted() {
        let mut sym = SymbolTable::new();
        let (a, b, c) = (key(&mut sym, "a"), key(&mut sym, "b"), key(&mut sym, "c"));
        let mut g = FluentGraph::new([a, b, c]);
        g.add_dependency(a, b);
        g.add_dependency(b, a);
        match g.stratify() {
            Err(StratifyFailure::Cycle(members)) => assert_eq!(members, vec![a, b]),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn cycles_deduplicates_by_member_set() {
        let mut sym = SymbolTable::new();
        let (a, b) = (key(&mut sym, "a"), key(&mut sym, "b"));
        let mut g = FluentGraph::new([a, b]);
        g.add_dependency(a, b);
        g.add_dependency(b, a);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![a, b]);
    }

    #[test]
    fn undefined_endpoints_are_ignored() {
        let mut sym = SymbolTable::new();
        let (a, x) = (key(&mut sym, "a"), key(&mut sym, "x"));
        let mut g = FluentGraph::new([a]);
        g.add_dependency(a, x);
        g.add_dependency(x, a);
        assert_eq!(g.stratify().unwrap(), vec![a]);
        assert!(g.cycles().is_empty());
    }
}
