//! Recursive-descent parser producing raw clauses.
//!
//! The parser turns token streams into [`Clause`]s — a head [`Term`] plus a
//! list of body [`Term`]s — without imposing RTEC's rule syntax; that is the
//! job of [`crate::validate`]. Keeping the raw, purely syntactic form around
//! matters for this project: the similarity metric of the paper (Section 4)
//! operates on expressions as written, including rules that are *not* valid
//! RTEC.
//!
//! Operator precedence (loosest to tightest): comparisons
//! (`=`, `\=`, `<`, `>`, `=<`, `>=`), additive (`+`, `-`), multiplicative
//! (`*`, `/`), unary minus, primary. `not` is recognised at literal
//! position and wrapped as a unary `not/1` compound.

use crate::ast::Clause;
use crate::error::{Pos, RtecError, RtecResult};
use crate::lexer::{tokenize, Spanned, Token};
use crate::symbol::SymbolTable;
use crate::term::Term;

/// Parses a whole event-description source into clauses, stopping at the
/// first error.
pub fn parse_program(src: &str, symbols: &mut SymbolTable) -> RtecResult<Vec<Clause>> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(&tokens, symbols);
    let mut clauses = Vec::new();
    while !p.at_end() {
        clauses.push(p.clause()?);
    }
    Ok(clauses)
}

/// Lenient variant: parses as many clauses as possible, collecting an error
/// per unparseable clause and resynchronising at the next `.` token.
///
/// LLM-generated event descriptions routinely contain one or two malformed
/// rules; the paper's pipeline must still score the rest.
pub fn parse_program_lenient(
    src: &str,
    symbols: &mut SymbolTable,
) -> (Vec<Clause>, Vec<RtecError>) {
    let tokens = match tokenize(src) {
        Ok(t) => t,
        Err(e) => {
            // Lexical failure: retry line-by-line so one bad line does not
            // sink the whole description.
            return parse_line_chunks(src, symbols, e);
        }
    };
    let mut p = Parser::new(&tokens, symbols);
    let mut clauses = Vec::new();
    let mut errors = Vec::new();
    while !p.at_end() {
        match p.clause() {
            Ok(c) => clauses.push(c),
            Err(e) => {
                errors.push(e);
                p.synchronize();
            }
        }
    }
    (clauses, errors)
}

/// Fallback used when tokenisation itself fails: split the source into
/// clause-sized chunks (at periods followed by line ends) and parse each
/// independently.
fn parse_line_chunks(
    src: &str,
    symbols: &mut SymbolTable,
    first: RtecError,
) -> (Vec<Clause>, Vec<RtecError>) {
    let mut clauses = Vec::new();
    let mut errors = vec![first];
    for chunk in split_clause_chunks(src) {
        match parse_program(&chunk, symbols) {
            Ok(mut cs) => clauses.append(&mut cs),
            Err(e) => errors.push(e),
        }
    }
    (clauses, errors)
}

/// Splits source text at clause boundaries (a `.` at end of line or before
/// blank space that is not part of a number). Purely textual; used only in
/// the degraded path.
pub fn split_clause_chunks(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev: Option<char> = None;
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        cur.push(c);
        if c == '.' {
            let next = chars.peek().copied();
            let digit_before = prev.is_some_and(|p| p.is_ascii_digit());
            let digit_after = next.is_some_and(|n| n.is_ascii_digit());
            if !(digit_before && digit_after) {
                let trimmed = cur.trim();
                if !trimmed.is_empty() && trimmed != "." {
                    out.push(cur.trim().to_owned());
                }
                cur.clear();
            }
        }
        prev = Some(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

/// Parses a single term (no `:-`, no final period), e.g. for constructing
/// query patterns in tests and examples.
pub fn parse_term(src: &str, symbols: &mut SymbolTable) -> RtecResult<Term> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(&tokens, symbols);
    let t = p.expr()?;
    if !p.at_end() {
        return Err(p.error("trailing tokens after term"));
    }
    Ok(t)
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
    symbols: &'a mut SymbolTable,
    /// Counter for freshening anonymous variables (`_`), which are
    /// distinct per occurrence in Prolog.
    anon: u32,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Spanned], symbols: &'a mut SymbolTable) -> Self {
        Parser {
            tokens,
            pos: 0,
            symbols,
            anon: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn here(&self) -> Pos {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| s.pos)
            .unwrap_or_default()
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos).map(|s| &s.token);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> RtecError {
        RtecError::Parse {
            pos: self.here(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Token, what: &str) -> RtecResult<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected {what}, found {}", t.describe()))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    /// Skips tokens until just past the next `.`, for error recovery.
    fn synchronize(&mut self) {
        while let Some(t) = self.bump() {
            if *t == Token::Period {
                break;
            }
        }
    }

    fn clause(&mut self) -> RtecResult<Clause> {
        let pos = self.here();
        let head = self.expr()?;
        let mut body = Vec::new();
        if self.peek() == Some(&Token::If) {
            self.pos += 1;
            loop {
                body.push(self.literal()?);
                match self.peek() {
                    Some(Token::Comma) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Token::Period, "'.' at end of clause")?;
        Ok(Clause { head, body, pos })
    }

    /// A body literal: an expression, optionally prefixed by `not`.
    fn literal(&mut self) -> RtecResult<Term> {
        if let Some(Token::Atom(a)) = self.peek() {
            if a == "not" && !matches!(self.peek2(), Some(Token::LParen)) {
                // `not X` prefix form (Prolog's `\+` analogue used by RTEC).
                self.pos += 1;
                let inner = self.literal()?;
                let not_sym = self.symbols.intern("not");
                return Ok(Term::Compound(not_sym, vec![inner]));
            }
            if a == "not" && matches!(self.peek2(), Some(Token::LParen)) {
                // `not(X)` call form; normalise to the same shape.
                self.pos += 1;
                self.pos += 1; // '('
                let inner = self.literal()?;
                self.expect(&Token::RParen, "')'")?;
                let not_sym = self.symbols.intern("not");
                return Ok(Term::Compound(not_sym, vec![inner]));
            }
        }
        self.expr()
    }

    /// Comparison-level expression.
    fn expr(&mut self) -> RtecResult<Term> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => "=",
            Some(Token::Neq) => "\\=",
            Some(Token::Lt) => "<",
            Some(Token::Gt) => ">",
            Some(Token::Le) => "=<",
            Some(Token::Ge) => ">=",
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.additive()?;
        let sym = self.symbols.intern(op);
        Ok(Term::Compound(sym, vec![lhs, rhs]))
    }

    fn additive(&mut self) -> RtecResult<Term> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => "+",
                Some(Token::Minus) => "-",
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            let sym = self.symbols.intern(op);
            lhs = Term::Compound(sym, vec![lhs, rhs]);
        }
    }

    fn multiplicative(&mut self) -> RtecResult<Term> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => "*",
                Some(Token::Slash) => "/",
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary()?;
            let sym = self.symbols.intern(op);
            lhs = Term::Compound(sym, vec![lhs, rhs]);
        }
    }

    fn unary(&mut self) -> RtecResult<Term> {
        if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(match inner {
                Term::Int(i) => Term::Int(-i),
                Term::Float(f) => Term::Float(-f),
                other => {
                    let sym = self.symbols.intern("-");
                    Term::Compound(sym, vec![Term::Int(0), other])
                }
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> RtecResult<Term> {
        match self.peek().cloned() {
            Some(Token::Atom(name)) => {
                self.pos += 1;
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() == Some(&Token::RParen) {
                        return Err(self.error("empty argument list"));
                    }
                    loop {
                        args.push(self.expr()?);
                        match self.peek() {
                            Some(Token::Comma) => {
                                self.pos += 1;
                            }
                            Some(Token::RParen) => {
                                self.pos += 1;
                                break;
                            }
                            Some(t) => {
                                return Err(self.error(format!(
                                    "expected ',' or ')' in argument list, found {}",
                                    t.describe()
                                )))
                            }
                            None => {
                                return Err(self.error("unterminated argument list at end of input"))
                            }
                        }
                    }
                    let sym = self.symbols.intern(&name);
                    Ok(Term::Compound(sym, args))
                } else {
                    Ok(Term::Atom(self.symbols.intern(&name)))
                }
            }
            Some(Token::Var(name)) => {
                self.pos += 1;
                if name == "_" {
                    // Each bare `_` is a fresh variable; naming them
                    // `_G<n>` keeps occurrences from aliasing each other.
                    let fresh = format!("_G{}", self.anon);
                    self.anon += 1;
                    return Ok(Term::Var(self.symbols.intern(&fresh)));
                }
                Ok(Term::Var(self.symbols.intern(&name)))
            }
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Term::Int(i))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Term::Float(f))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token::LBracket) => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(&Token::RBracket) {
                    self.pos += 1;
                    return Ok(Term::List(items));
                }
                loop {
                    items.push(self.expr()?);
                    match self.peek() {
                        Some(Token::Comma) => {
                            self.pos += 1;
                        }
                        Some(Token::RBracket) => {
                            self.pos += 1;
                            break;
                        }
                        Some(t) => {
                            return Err(self.error(format!(
                                "expected ',' or ']' in list, found {}",
                                t.describe()
                            )))
                        }
                        None => return Err(self.error("unterminated list at end of input")),
                    }
                }
                Ok(Term::List(items))
            }
            Some(t) => Err(self.error(format!("expected a term, found {}", t.describe()))),
            None => Err(self.error("expected a term, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> (Clause, SymbolTable) {
        let mut sym = SymbolTable::new();
        let mut cs = parse_program(src, &mut sym).unwrap();
        assert_eq!(cs.len(), 1, "expected one clause");
        (cs.remove(0), sym)
    }

    #[test]
    fn parses_fact() {
        let (c, sym) = parse_one("areaType(a1, fishing).");
        assert!(c.body.is_empty());
        assert_eq!(c.head.display(&sym).to_string(), "areaType(a1, fishing)");
    }

    #[test]
    fn parses_simple_rule() {
        let (c, sym) = parse_one(
            "initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
             happensAt(entersArea(Vl, AreaId), T), areaType(AreaId, AreaType).",
        );
        assert_eq!(c.body.len(), 2);
        assert_eq!(
            c.head.display(&sym).to_string(),
            "initiatedAt(withinArea(Vl, AreaType)=true, T)"
        );
    }

    #[test]
    fn parses_negation_prefix() {
        let (c, sym) = parse_one(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T), \
             not holdsAt(g(V)=true, T).",
        );
        assert_eq!(
            c.body[1].display(&sym).to_string(),
            "not(holdsAt(g(V)=true, T))"
        );
    }

    #[test]
    fn parses_holdsfor_with_interval_ops() {
        let (c, sym) = parse_one(
            "holdsFor(underWay(V)=true, I) :- \
             holdsFor(movingSpeed(V)=below, I1), \
             holdsFor(movingSpeed(V)=normal, I2), \
             union_all([I1, I2], I).",
        );
        assert_eq!(c.body.len(), 3);
        assert_eq!(
            c.body[2].display(&sym).to_string(),
            "union_all([I1, I2], I)"
        );
    }

    #[test]
    fn parses_arithmetic_comparisons() {
        let (c, sym) = parse_one(
            "initiatedAt(f(V)=true, T) :- happensAt(velocity(V, S), T), \
             thresholds(max, M), S > M * 1.5, abs(S - M) >= 2.",
        );
        assert_eq!(c.body.len(), 4);
        assert_eq!(c.body[2].display(&sym).to_string(), "S > M * 1.5");
        assert_eq!(c.body[3].display(&sym).to_string(), "abs(S - M) >= 2");
    }

    #[test]
    fn unary_minus_folds_into_literals() {
        let mut sym = SymbolTable::new();
        assert_eq!(parse_term("-3", &mut sym).unwrap(), Term::Int(-3));
        assert_eq!(parse_term("-2.5", &mut sym).unwrap(), Term::Float(-2.5));
    }

    #[test]
    fn lenient_mode_recovers_per_clause() {
        let src = "good(a). bad(((. another(b).";
        let mut sym = SymbolTable::new();
        let (clauses, errors) = parse_program_lenient(src, &mut sym);
        assert_eq!(clauses.len(), 2);
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn missing_period_is_an_error() {
        let mut sym = SymbolTable::new();
        assert!(parse_program("f(a)", &mut sym).is_err());
    }

    #[test]
    fn empty_list_parses() {
        let mut sym = SymbolTable::new();
        assert_eq!(parse_term("[]", &mut sym).unwrap(), Term::List(vec![]));
    }

    #[test]
    fn nested_lists_and_parens() {
        let mut sym = SymbolTable::new();
        let t = parse_term("f([a, [b, c]], (X))", &mut sym).unwrap();
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn clause_chunk_splitting() {
        let chunks = split_clause_chunks("a(1).\nb(2.5, x).\nc(3).");
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[1], "b(2.5, x).");
    }

    #[test]
    fn anonymous_variables_are_fresh_per_occurrence() {
        let mut sym = SymbolTable::new();
        let t = parse_term("f(_, _)", &mut sym).unwrap();
        let vars = t.variables();
        assert_eq!(vars.len(), 2, "each _ must be a distinct variable");
        assert_ne!(vars[0], vars[1]);
    }

    #[test]
    fn not_call_form_normalised() {
        let (c, sym) =
            parse_one("initiatedAt(f=true, T) :- happensAt(e, T), not(holdsAt(g=true, T)).");
        assert_eq!(
            c.body[1].display(&sym).to_string(),
            "not(holdsAt(g=true, T))"
        );
    }
}
