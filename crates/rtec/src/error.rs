//! Error types for parsing, validation and evaluation.

use std::fmt;

/// Result alias used throughout the crate.
pub type RtecResult<T> = Result<T, RtecError>;

/// A source location (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Top-level error type of the crate.
#[derive(Clone, Debug, PartialEq)]
pub enum RtecError {
    /// A lexical error: unexpected character, malformed number, unterminated
    /// quote or comment.
    Lex {
        /// Where the error occurred.
        pos: Pos,
        /// Human-readable description.
        message: String,
    },
    /// A grammatical error: the token stream does not form a clause.
    Parse {
        /// Where the error occurred.
        pos: Pos,
        /// Human-readable description.
        message: String,
    },
    /// The clause parsed but violates the rule syntax of the paper's
    /// Definitions 2.2 / 2.4 (e.g. an `initiatedAt` rule whose first body
    /// literal is not a positive `happensAt`).
    Validation {
        /// Index of the offending clause within the event description.
        clause: usize,
        /// Human-readable description.
        message: String,
    },
    /// The event description cannot be stratified: its fluent dependency
    /// graph has a cycle, so bottom-up hierarchical evaluation is undefined.
    CyclicDependency {
        /// A human-readable rendering of one cycle.
        cycle: String,
    },
    /// A run-time evaluation error (e.g. an arithmetic comparison over an
    /// unbound variable).
    Eval {
        /// Human-readable description.
        message: String,
    },
}

impl RtecError {
    /// Convenience constructor for evaluation errors.
    pub fn eval(message: impl Into<String>) -> RtecError {
        RtecError::Eval {
            message: message.into(),
        }
    }
}

impl fmt::Display for RtecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtecError::Lex { pos, message } => write!(f, "lexical error at {pos}: {message}"),
            RtecError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            RtecError::Validation { clause, message } => {
                write!(f, "invalid rule (clause {clause}): {message}")
            }
            RtecError::CyclicDependency { cycle } => {
                write!(f, "cyclic fluent dependency: {cycle}")
            }
            RtecError::Eval { message } => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for RtecError {}

/// Severity of a validation finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The clause cannot be executed and is excluded from compilation.
    Error,
    /// The clause deviates from the strict paper syntax but the engine
    /// supports it (e.g. background-knowledge conditions inside a
    /// `holdsFor` rule), or it references undefined activities which will
    /// simply never hold.
    Warning,
}

/// A single validation finding, tied to a clause.
#[derive(Clone, Debug, PartialEq)]
pub struct Issue {
    /// Severity of the finding.
    pub severity: Severity,
    /// Index of the clause within the event description.
    pub clause: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev} (clause {}): {}", self.clause, self.message)
    }
}

/// The set of findings produced when validating an event description.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// All findings, in clause order.
    pub issues: Vec<Issue>,
}

impl ValidationReport {
    /// Records a finding.
    pub fn push(&mut self, severity: Severity, clause: usize, message: impl Into<String>) {
        self.issues.push(Issue {
            severity,
            clause,
            message: message.into(),
        });
    }

    /// Iterates over error-level findings.
    pub fn errors(&self) -> impl Iterator<Item = &Issue> {
        self.issues.iter().filter(|i| i.severity == Severity::Error)
    }

    /// Iterates over warning-level findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Issue> {
        self.issues
            .iter()
            .filter(|i| i.severity == Severity::Warning)
    }

    /// Whether any error-level finding exists.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Indices of clauses with error-level findings.
    pub fn rejected_clauses(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.errors().map(|i| i.clause).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RtecError::Parse {
            pos: Pos { line: 3, col: 7 },
            message: "expected ')'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected ')'");
    }

    #[test]
    fn report_classifies_by_severity() {
        let mut r = ValidationReport::default();
        r.push(Severity::Warning, 0, "w");
        r.push(Severity::Error, 2, "e");
        r.push(Severity::Error, 2, "e2");
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 2);
        assert_eq!(r.warnings().count(), 1);
        assert_eq!(r.rejected_clauses(), vec![2]);
    }
}
