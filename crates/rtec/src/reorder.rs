//! Resilient ingestion: bounded reordering, watermarks, and dead-letter
//! accounting.
//!
//! Real event feeds — the Brest AIS stream of the paper's §5 experiment
//! being the canonical example — are noisy: position reports arrive
//! late, duplicated, and occasionally malformed. RTEC's simple fluents
//! are *inertial*: a stale `terminatedAt` event slipped into an already
//! evaluated window would silently corrupt every interval derived after
//! it. This module supplies the two pieces that make out-of-order input
//! safe instead of corrupting:
//!
//! * [`ReorderBuffer`] — a bounded buffer that admits events in any
//!   order within a configurable **slack** (measured in timepoints),
//!   releases them in timestamp order behind a monotonically advancing
//!   **watermark**, and optionally absorbs exact duplicates;
//! * [`DeadLetterLedger`] — a reason-coded, bounded audit trail of every
//!   record the system *refused*, so "we dropped it" is always
//!   accompanied by "here is which one, when, and why".
//!
//! ## Watermark discipline
//!
//! The buffer tracks the largest timestamp seen (`max_seen`) and the
//! frontier up to which events have been released (`released_to`). The
//! watermark is
//!
//! ```text
//! watermark = max(max_seen - slack, released_to)
//! ```
//!
//! and never decreases. [`ReorderBuffer::drain_ready`] releases every
//! buffered event with `t <= watermark` in timestamp order; a push
//! *strictly below* the watermark is refused as
//! [`DeadLetterReason::Late`] — admitting it would mean emitting behind
//! events already released ahead of it. An event *at* the watermark
//! (including at the release frontier itself) is still admissible, so
//! repeated timestamps in an in-order stream are never refused. The
//! headline guarantee follows: **any arrival order in which each event
//! is delayed by at most `slack` timepoints releases the same events
//! with non-decreasing timestamps**, and since recognition is
//! per-timepoint set-based, intra-timestamp arrival order is
//! immaterial: recognition output is byte-identical to the sorted batch
//! run (see `crates/rtec/tests/reorder_properties.rs`).
//!
//! `slack = 0` degenerates to a strict in-order gate with near-zero
//! overhead: every event is releasable the moment it arrives.

use crate::interval::Timepoint;
use crate::term::Term;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Why a record was refused and routed to the dead-letter ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeadLetterReason {
    /// The event arrived behind the watermark (or behind the release
    /// frontier): admitting it would emit out of timestamp order.
    Late,
    /// An identical `(timestamp, term)` pair was already admitted and
    /// deduplication is enabled.
    Duplicate,
    /// The event's timestamp is at or before the engine's forget
    /// horizon (`processed_to`): the window it belongs to has already
    /// been evaluated and forgotten.
    PastHorizon,
    /// The record could not be parsed into a ground event term (or a
    /// CSV row failed field validation).
    Malformed,
    /// The record was refused by admission control (rate or memory
    /// budget exhausted), not because of its content.
    Shed,
}

impl DeadLetterReason {
    /// Every reason, in stable wire order. The `as_str` names of this
    /// list are the public taxonomy — pinned by a test, extended only
    /// by appending.
    pub const ALL: [DeadLetterReason; 5] = [
        DeadLetterReason::Late,
        DeadLetterReason::Duplicate,
        DeadLetterReason::PastHorizon,
        DeadLetterReason::Malformed,
        DeadLetterReason::Shed,
    ];

    /// The stable wire name of this reason.
    pub fn as_str(self) -> &'static str {
        match self {
            DeadLetterReason::Late => "late",
            DeadLetterReason::Duplicate => "duplicate",
            DeadLetterReason::PastHorizon => "past_horizon",
            DeadLetterReason::Malformed => "malformed",
            DeadLetterReason::Shed => "shed",
        }
    }

    /// Parses a wire name back into a reason. Not `std::str::FromStr`:
    /// absence is an expected outcome here, not an error to propagate.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(name: &str) -> Option<DeadLetterReason> {
        DeadLetterReason::ALL
            .into_iter()
            .find(|r| r.as_str() == name)
    }

    /// Position of this reason in [`DeadLetterReason::ALL`] (the index
    /// of its slot in a counts array).
    pub fn index(self) -> usize {
        match self {
            DeadLetterReason::Late => 0,
            DeadLetterReason::Duplicate => 1,
            DeadLetterReason::PastHorizon => 2,
            DeadLetterReason::Malformed => 3,
            DeadLetterReason::Shed => 4,
        }
    }
}

/// One refused record: the reason, the claimed timestamp (when one was
/// parseable), and a short human-readable detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadLetter {
    /// Why the record was refused.
    pub reason: DeadLetterReason,
    /// The record's timestamp, if one could be determined.
    pub t: Option<Timepoint>,
    /// Short detail: the offending source text or a description of the
    /// violated bound.
    pub detail: String,
}

/// A bounded, reason-coded audit trail of refused records.
///
/// Counts are exact and unbounded; the per-record ring keeps only the
/// most recent `cap` entries (older records are dropped and counted in
/// [`DeadLetterLedger::records_dropped`]), so the ledger's memory use is
/// fixed no matter how hostile the feed.
#[derive(Clone, Debug)]
pub struct DeadLetterLedger {
    cap: usize,
    records: VecDeque<DeadLetter>,
    counts: [u64; DeadLetterReason::ALL.len()],
    records_dropped: u64,
}

impl DeadLetterLedger {
    /// A ledger retaining at most `cap` recent records.
    pub fn new(cap: usize) -> DeadLetterLedger {
        DeadLetterLedger {
            cap,
            records: VecDeque::new(),
            counts: [0; DeadLetterReason::ALL.len()],
            records_dropped: 0,
        }
    }

    /// Records one refused record.
    pub fn record(&mut self, reason: DeadLetterReason, t: Option<Timepoint>, detail: String) {
        self.counts[reason.index()] += 1;
        if self.cap == 0 {
            self.records_dropped += 1;
            return;
        }
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.records_dropped += 1;
        }
        self.records.push_back(DeadLetter { reason, t, detail });
    }

    /// Exact refusal count for one reason.
    pub fn count(&self, reason: DeadLetterReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Exact refusal counts in [`DeadLetterReason::ALL`] order.
    pub fn counts(&self) -> [u64; DeadLetterReason::ALL.len()] {
        self.counts
    }

    /// Total refusals across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Records evicted from the bounded ring (their counts remain).
    pub fn records_dropped(&self) -> u64 {
        self.records_dropped
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &DeadLetter> {
        self.records.iter()
    }

    /// The most recent `limit` records, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<&DeadLetter> {
        let skip = self.records.len().saturating_sub(limit);
        self.records.iter().skip(skip).collect()
    }

    /// Restores exact counts (used when a session is rebuilt from a
    /// checkpoint; the per-record ring is process-local audit state and
    /// is not restored).
    pub fn restore_counts(&mut self, counts: [u64; DeadLetterReason::ALL.len()], dropped: u64) {
        self.counts = counts;
        self.records_dropped = dropped;
    }

    /// Drops the retained records, keeping the exact counts.
    pub fn clear_records(&mut self) {
        self.records_dropped += self.records.len() as u64;
        self.records.clear();
    }
}

/// A serialisable image of a [`ReorderBuffer`]'s contents and frontier,
/// for session checkpointing.
#[derive(Clone, Debug, PartialEq)]
pub struct ReorderSnapshot {
    /// Buffered (unreleased) events, in timestamp order, arrival order
    /// within a timestamp.
    pub events: Vec<(Term, Timepoint)>,
    /// Largest timestamp ever admitted (`-1` if none).
    pub max_seen: Timepoint,
    /// Frontier up to which events have been released (`-1` if none).
    pub released_to: Timepoint,
}

/// A bounded reorder buffer with watermark-ordered release and optional
/// exact-duplicate absorption. See the [module docs](self) for the
/// watermark discipline and the ordering guarantee.
#[derive(Clone, Debug)]
pub struct ReorderBuffer {
    slack: Timepoint,
    dedup: bool,
    buffered: BTreeMap<Timepoint, Vec<Term>>,
    /// Dedup memory, keyed by timestamp so entries behind the watermark
    /// (which a re-push could never reach — it would be refused as
    /// late) can be pruned in one `split_off`. Entries at or above the
    /// watermark are kept even after their event is released, so a
    /// duplicate arriving at the release frontier is still absorbed.
    seen: BTreeMap<Timepoint, HashSet<Term>>,
    max_seen: Timepoint,
    released_to: Timepoint,
    len: usize,
    approx_bytes: usize,
}

/// Rough per-event bookkeeping overhead (map node, vec slot) used by
/// [`ReorderBuffer::approx_bytes`].
const PER_EVENT_OVERHEAD: usize = 48;

fn term_heap_bytes(term: &Term) -> usize {
    match term {
        Term::Compound(_, args) => args
            .iter()
            .map(|a| std::mem::size_of::<Term>() + term_heap_bytes(a))
            .sum(),
        Term::List(items) => items
            .iter()
            .map(|a| std::mem::size_of::<Term>() + term_heap_bytes(a))
            .sum(),
        _ => 0,
    }
}

impl ReorderBuffer {
    /// A buffer tolerating arrival delays of up to `slack` timepoints.
    /// With `dedup`, an exact `(timestamp, term)` pair is admitted once
    /// and refused as [`DeadLetterReason::Duplicate`] thereafter, for
    /// as long as its timestamp is at or above the watermark (behind
    /// it, re-sends are refused as late instead).
    pub fn new(slack: Timepoint, dedup: bool) -> ReorderBuffer {
        ReorderBuffer {
            slack: slack.max(0),
            dedup,
            buffered: BTreeMap::new(),
            seen: BTreeMap::new(),
            max_seen: -1,
            released_to: -1,
            len: 0,
            approx_bytes: 0,
        }
    }

    /// The configured slack, in timepoints.
    pub fn slack(&self) -> Timepoint {
        self.slack
    }

    /// The current watermark: `max(max_seen - slack, released_to)`.
    /// Events at or below the watermark are releasable; pushes strictly
    /// below it are refused as late. `-1` before any event is admitted.
    pub fn watermark(&self) -> Timepoint {
        if self.max_seen < 0 {
            self.released_to
        } else {
            (self.max_seen - self.slack).max(self.released_to)
        }
    }

    /// How far the release frontier trails the newest admitted event
    /// (`max_seen - released_to`, clamped at zero). This is the
    /// watermark lag exported as a service gauge.
    pub fn lag(&self) -> Timepoint {
        (self.max_seen - self.released_to).max(0)
    }

    /// Largest timestamp ever admitted (`-1` if none).
    pub fn max_seen(&self) -> Timepoint {
        self.max_seen
    }

    /// Frontier up to which events have been released (`-1` if none).
    pub fn released_to(&self) -> Timepoint {
        self.released_to
    }

    /// Buffered (admitted but unreleased) event count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rough resident size of the buffered events in bytes, for the
    /// service's buffered-bytes admission budget. An estimate (term
    /// payload plus fixed per-event overhead), not an allocator
    /// measurement.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Admits one event, or refuses it with the dead-letter reason.
    ///
    /// Refusals: `t < 0` is [`DeadLetterReason::Malformed`] (timepoints
    /// are non-negative); `t` strictly below the watermark is
    /// [`DeadLetterReason::Late`] (an event *at* the watermark — even at
    /// the release frontier itself — is still admissible, so repeated
    /// timestamps in an in-order stream are never refused); an exact
    /// duplicate under `dedup` is [`DeadLetterReason::Duplicate`].
    pub fn push(&mut self, event: Term, t: Timepoint) -> Result<(), DeadLetterReason> {
        if t < 0 {
            return Err(DeadLetterReason::Malformed);
        }
        if t < self.watermark() {
            return Err(DeadLetterReason::Late);
        }
        if self.dedup && !self.seen.entry(t).or_default().insert(event.clone()) {
            return Err(DeadLetterReason::Duplicate);
        }
        self.approx_bytes +=
            std::mem::size_of::<Term>() + term_heap_bytes(&event) + PER_EVENT_OVERHEAD;
        self.buffered.entry(t).or_default().push(event);
        self.len += 1;
        self.max_seen = self.max_seen.max(t);
        Ok(())
    }

    /// Releases every buffered event at or below the watermark, in
    /// timestamp order (arrival order within one timestamp).
    pub fn drain_ready(&mut self) -> Vec<(Term, Timepoint)> {
        self.release_up_to(self.watermark())
    }

    /// Forces release of everything at or below `to` (or the watermark,
    /// whichever is larger) — the tick-time drain: evaluation up to `to`
    /// must see every admitted event at or before `to`.
    pub fn drain_to(&mut self, to: Timepoint) -> Vec<(Term, Timepoint)> {
        self.release_up_to(self.watermark().max(to))
    }

    /// Releases everything buffered and advances the frontier to
    /// `max_seen` (session close).
    pub fn flush(&mut self) -> Vec<(Term, Timepoint)> {
        self.release_up_to(self.max_seen)
    }

    fn release_up_to(&mut self, horizon: Timepoint) -> Vec<(Term, Timepoint)> {
        let mut released = Vec::new();
        // `>=`, not `>`: events admitted *at* the frontier (repeated
        // timestamps in an in-order stream) must still flow out.
        if horizon >= self.released_to {
            // split_off leaves keys < horizon+1 in `self.buffered`'s
            // place only after the swap below: keep the tail, take the
            // head.
            let tail = self.buffered.split_off(&(horizon + 1));
            let head = std::mem::replace(&mut self.buffered, tail);
            for (t, events) in head {
                for event in events {
                    self.approx_bytes = self.approx_bytes.saturating_sub(
                        std::mem::size_of::<Term>() + term_heap_bytes(&event) + PER_EVENT_OVERHEAD,
                    );
                    self.len -= 1;
                    released.push((event, t));
                }
            }
            self.released_to = horizon;
            if self.dedup {
                // Entries strictly below the new watermark can never be
                // matched again (a re-push would be refused as late);
                // entries at the watermark stay so a duplicate arriving
                // at the frontier is still absorbed.
                self.seen = self.seen.split_off(&self.watermark());
            }
        }
        released
    }

    /// Captures the buffer's contents and frontier for checkpointing.
    pub fn snapshot(&self) -> ReorderSnapshot {
        let mut events = Vec::with_capacity(self.len);
        for (&t, terms) in &self.buffered {
            for term in terms {
                events.push((term.clone(), t));
            }
        }
        ReorderSnapshot {
            events,
            max_seen: self.max_seen,
            released_to: self.released_to,
        }
    }

    /// Rebuilds a buffer from a snapshot. The dedup set is rebuilt from
    /// the buffered events only: dedup memory for *released* timestamps
    /// still at the watermark is not part of the snapshot, so a
    /// duplicate of an already-released frontier event re-sent right
    /// after a restore may be re-admitted (recognition is set-based per
    /// timepoint, so output is unaffected).
    pub fn restore(slack: Timepoint, dedup: bool, snapshot: &ReorderSnapshot) -> ReorderBuffer {
        let mut buf = ReorderBuffer::new(slack, dedup);
        for (term, t) in &snapshot.events {
            buf.approx_bytes +=
                std::mem::size_of::<Term>() + term_heap_bytes(term) + PER_EVENT_OVERHEAD;
            if dedup {
                buf.seen.entry(*t).or_default().insert(term.clone());
            }
            buf.buffered.entry(*t).or_default().push(term.clone());
            buf.len += 1;
        }
        buf.max_seen = snapshot.max_seen;
        buf.released_to = snapshot.released_to;
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn ev(symbols: &mut SymbolTable, name: &str) -> Term {
        Term::Atom(symbols.intern(name))
    }

    #[test]
    fn in_order_events_release_immediately_at_slack_zero() {
        let mut s = SymbolTable::new();
        let mut buf = ReorderBuffer::new(0, false);
        buf.push(ev(&mut s, "a"), 1).unwrap();
        assert_eq!(buf.watermark(), 1);
        let out = buf.drain_ready();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 1);
        assert_eq!(buf.released_to(), 1);
        assert!(buf.is_empty());
        // A second event *at* the frontier is fine (sorted streams
        // repeat timestamps); only strictly older ones are late.
        let b = ev(&mut s, "b");
        assert_eq!(buf.push(b.clone(), 1), Ok(()));
        assert_eq!(buf.drain_ready(), vec![(b.clone(), 1)]);
        assert_eq!(buf.push(b, 0), Err(DeadLetterReason::Late));
    }

    #[test]
    fn slack_holds_events_back_until_the_watermark_passes() {
        let mut s = SymbolTable::new();
        let mut buf = ReorderBuffer::new(5, false);
        let (a, b, c) = (ev(&mut s, "a"), ev(&mut s, "b"), ev(&mut s, "c"));
        buf.push(b.clone(), 7).unwrap();
        buf.push(a.clone(), 4).unwrap(); // late arrival, within slack
        assert_eq!(buf.watermark(), 2);
        assert!(buf.drain_ready().is_empty());
        buf.push(c.clone(), 12).unwrap();
        assert_eq!(buf.watermark(), 7);
        let out = buf.drain_ready();
        assert_eq!(out, vec![(a, 4), (b, 7)]);
        assert_eq!(buf.len(), 1);
        let out = buf.drain_to(12);
        assert_eq!(out, vec![(c, 12)]);
        assert_eq!(buf.released_to(), 12);
    }

    #[test]
    fn events_behind_the_watermark_are_refused_as_late() {
        let mut s = SymbolTable::new();
        let mut buf = ReorderBuffer::new(2, false);
        buf.push(ev(&mut s, "a"), 10).unwrap();
        // watermark = 10 - 2 = 8; 7 is too old even though nothing has
        // been released yet.
        assert_eq!(buf.push(ev(&mut s, "b"), 7), Err(DeadLetterReason::Late));
        assert_eq!(buf.push(ev(&mut s, "b"), 8), Ok(()));
    }

    #[test]
    fn dedup_absorbs_exact_duplicates_until_release() {
        let mut s = SymbolTable::new();
        let mut buf = ReorderBuffer::new(10, true);
        let a = ev(&mut s, "a");
        buf.push(a.clone(), 3).unwrap();
        assert_eq!(
            buf.push(a.clone(), 3),
            Err(DeadLetterReason::Duplicate),
            "same (t, term) is a duplicate"
        );
        buf.push(a.clone(), 4).unwrap(); // same term, different t: fine
        let drained = buf.drain_to(4);
        assert_eq!(drained.len(), 2);
        // A released timestamp still *at* the frontier keeps its dedup
        // memory: the re-send is absorbed, not re-admitted. Strictly
        // behind the frontier, re-sends are refused as late instead.
        assert_eq!(buf.push(a.clone(), 4), Err(DeadLetterReason::Duplicate));
        assert_eq!(buf.push(a, 3), Err(DeadLetterReason::Late));
    }

    #[test]
    fn negative_timestamps_are_malformed() {
        let mut s = SymbolTable::new();
        let mut buf = ReorderBuffer::new(0, false);
        assert_eq!(
            buf.push(ev(&mut s, "a"), -3),
            Err(DeadLetterReason::Malformed)
        );
    }

    #[test]
    fn watermark_never_decreases() {
        let mut s = SymbolTable::new();
        let mut buf = ReorderBuffer::new(3, false);
        let mut last = buf.watermark();
        for (name, t) in [("a", 9), ("b", 4), ("c", 20), ("d", 18), ("e", 30)] {
            let _ = buf.push(ev(&mut s, name), t);
            assert!(buf.watermark() >= last, "watermark regressed");
            last = buf.watermark();
            let _ = buf.drain_ready();
            assert!(buf.watermark() >= last, "drain regressed the watermark");
            last = buf.watermark();
        }
    }

    #[test]
    fn approx_bytes_tracks_admission_and_release() {
        let mut s = SymbolTable::new();
        let mut buf = ReorderBuffer::new(100, false);
        assert_eq!(buf.approx_bytes(), 0);
        buf.push(ev(&mut s, "a"), 5).unwrap();
        let one = buf.approx_bytes();
        assert!(one > 0);
        buf.push(ev(&mut s, "b"), 6).unwrap();
        assert!(buf.approx_bytes() > one);
        buf.flush();
        assert_eq!(buf.approx_bytes(), 0);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut s = SymbolTable::new();
        let mut buf = ReorderBuffer::new(5, true);
        buf.push(ev(&mut s, "a"), 8).unwrap();
        buf.push(ev(&mut s, "b"), 6).unwrap();
        buf.drain_ready();
        let snap = buf.snapshot();
        let restored = ReorderBuffer::restore(5, true, &snap);
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.len(), buf.len());
        assert_eq!(restored.watermark(), buf.watermark());
        assert_eq!(restored.approx_bytes(), buf.approx_bytes());
        // The rebuilt dedup set still refuses the buffered duplicate.
        let mut restored = restored;
        assert_eq!(
            restored.push(ev(&mut s, "a"), 8),
            Err(DeadLetterReason::Duplicate)
        );
    }

    #[test]
    fn ledger_counts_exactly_and_bounds_records() {
        let mut ledger = DeadLetterLedger::new(2);
        for i in 0..5 {
            ledger.record(DeadLetterReason::Late, Some(i), format!("ev{i}"));
        }
        ledger.record(DeadLetterReason::Malformed, None, "junk".into());
        assert_eq!(ledger.count(DeadLetterReason::Late), 5);
        assert_eq!(ledger.count(DeadLetterReason::Malformed), 1);
        assert_eq!(ledger.total(), 6);
        assert_eq!(ledger.records().count(), 2);
        assert_eq!(ledger.records_dropped(), 4);
        let recent = ledger.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1].detail, "junk");
        ledger.clear_records();
        assert_eq!(ledger.records().count(), 0);
        assert_eq!(ledger.total(), 6, "counts survive a record clear");
    }

    #[test]
    fn reason_names_round_trip() {
        for reason in DeadLetterReason::ALL {
            assert_eq!(DeadLetterReason::from_str(reason.as_str()), Some(reason));
        }
        assert_eq!(DeadLetterReason::from_str("nope"), None);
    }
}
