//! Tokeniser for the Prolog-style concrete syntax of RTEC event
//! descriptions.
//!
//! Handles `%` line comments, `/* ... */` block comments, quoted atoms,
//! integers, floats, and the operator set used by the paper's rules
//! (`:-`, `=`, `\=`, `<`, `>`, `=<`, `>=`, `+`, `-`, `*`, `/`). The
//! non-standard spelling `<=` is accepted as a synonym for `=<` because
//! LLM-generated rules frequently use it.

use crate::error::{Pos, RtecError, RtecResult};

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Lower-case identifier or quoted atom, e.g. `happensAt`, `'a b'`.
    Atom(String),
    /// Variable: upper-case or `_`-prefixed identifier, e.g. `Vessel`.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.` ending a clause
    Period,
    /// `:-`
    If,
    /// `=`
    Eq,
    /// `\=`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `=<` (also accepts `<=`)
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl Token {
    /// Short human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Atom(a) => format!("atom '{a}'"),
            Token::Var(v) => format!("variable '{v}'"),
            Token::Int(i) => format!("integer {i}"),
            Token::Float(f) => format!("float {f}"),
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::LBracket => "'['".into(),
            Token::RBracket => "']'".into(),
            Token::Comma => "','".into(),
            Token::Period => "'.'".into(),
            Token::If => "':-'".into(),
            Token::Eq => "'='".into(),
            Token::Neq => "'\\='".into(),
            Token::Lt => "'<'".into(),
            Token::Gt => "'>'".into(),
            Token::Le => "'=<'".into(),
            Token::Ge => "'>='".into(),
            Token::Plus => "'+'".into(),
            Token::Minus => "'-'".into(),
            Token::Star => "'*'".into(),
            Token::Slash => "'/'".into(),
        }
    }
}

/// A token together with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// Tokenises `src` into a vector of positioned tokens.
pub fn tokenize(src: &str) -> RtecResult<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn err(&self, message: impl Into<String>) -> RtecError {
        RtecError::Lex {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn run(mut self) -> RtecResult<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else { break };
            let token = match c {
                '(' => {
                    self.bump();
                    Token::LParen
                }
                ')' => {
                    self.bump();
                    Token::RParen
                }
                '[' => {
                    self.bump();
                    Token::LBracket
                }
                ']' => {
                    self.bump();
                    Token::RBracket
                }
                ',' => {
                    self.bump();
                    Token::Comma
                }
                '+' => {
                    self.bump();
                    Token::Plus
                }
                '*' => {
                    self.bump();
                    Token::Star
                }
                '/' => {
                    self.bump();
                    Token::Slash
                }
                '-' => {
                    self.bump();
                    Token::Minus
                }
                '.' => {
                    self.bump();
                    Token::Period
                }
                ':' => {
                    self.bump();
                    if self.peek() == Some('-') {
                        self.bump();
                        Token::If
                    } else {
                        return Err(self.err("expected '-' after ':'"));
                    }
                }
                '=' => {
                    self.bump();
                    match self.peek() {
                        Some('<') => {
                            self.bump();
                            Token::Le
                        }
                        _ => Token::Eq,
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        // Lenient: LLMs write '<=' for Prolog's '=<'.
                        self.bump();
                        Token::Le
                    } else {
                        Token::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Ge
                    } else {
                        Token::Gt
                    }
                }
                '\\' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Neq
                    } else {
                        return Err(self.err("expected '=' after '\\'"));
                    }
                }
                '\'' => self.quoted_atom()?,
                c if c.is_ascii_digit() => self.number()?,
                c if c.is_alphabetic() || c == '_' => self.identifier(),
                other => return Err(self.err(format!("unexpected character '{other}'"))),
            };
            out.push(Spanned { token, pos });
        }
        Ok(out)
    }

    fn skip_trivia(&mut self) -> RtecResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') => {
                    // Only a comment if followed by '*'; otherwise leave the
                    // slash for the operator lexer.
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'*') {
                        self.bump();
                        self.bump();
                        let mut prev = ' ';
                        loop {
                            match self.bump() {
                                Some('/') if prev == '*' => break,
                                Some(c) => prev = c,
                                None => return Err(self.err("unterminated block comment")),
                            }
                        }
                    } else {
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn quoted_atom(&mut self) -> RtecResult<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(Token::Atom(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(self.err("unterminated quoted atom")),
            }
        }
    }

    fn number(&mut self) -> RtecResult<Token> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A '.' is part of the number only if followed by a digit; otherwise
        // it is the clause-terminating period.
        let mut is_float = false;
        if self.peek() == Some('.') {
            let mut clone = self.chars.clone();
            clone.next();
            if clone.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                s.push('.');
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Token::Float)
                .map_err(|e| self.err(format!("bad float literal '{s}': {e}")))
        } else {
            s.parse::<i64>()
                .map(Token::Int)
                .map_err(|e| self.err(format!("bad integer literal '{s}': {e}")))
        }
    }

    fn identifier(&mut self) -> Token {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let first = s.chars().next().expect("identifier is non-empty");
        if first.is_uppercase() || first == '_' {
            Token::Var(s)
        } else {
            Token::Atom(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn simple_rule_tokens() {
        let t = toks("initiatedAt(f(V)=true, T) :- happensAt(e(V), T).");
        assert_eq!(t[0], Token::Atom("initiatedAt".into()));
        assert_eq!(t[1], Token::LParen);
        assert_eq!(t[2], Token::Atom("f".into()));
        assert!(t.contains(&Token::If));
        assert_eq!(*t.last().unwrap(), Token::Period);
    }

    #[test]
    fn variables_vs_atoms() {
        assert_eq!(
            toks("Vessel vessel _anon"),
            vec![
                Token::Var("Vessel".into()),
                Token::Atom("vessel".into()),
                Token::Var("_anon".into())
            ]
        );
    }

    #[test]
    fn numbers_and_period_disambiguation() {
        assert_eq!(
            toks("f(3.5, 7)."),
            vec![
                Token::Atom("f".into()),
                Token::LParen,
                Token::Float(3.5),
                Token::Comma,
                Token::Int(7),
                Token::RParen,
                Token::Period
            ]
        );
        // "7." at end of clause: integer then period.
        assert_eq!(toks("7."), vec![Token::Int(7), Token::Period]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("A =< B, C >= D, E < F, G > H, I \\= J"),
            vec![
                Token::Var("A".into()),
                Token::Le,
                Token::Var("B".into()),
                Token::Comma,
                Token::Var("C".into()),
                Token::Ge,
                Token::Var("D".into()),
                Token::Comma,
                Token::Var("E".into()),
                Token::Lt,
                Token::Var("F".into()),
                Token::Comma,
                Token::Var("G".into()),
                Token::Gt,
                Token::Var("H".into()),
                Token::Comma,
                Token::Var("I".into()),
                Token::Neq,
                Token::Var("J".into()),
            ]
        );
    }

    #[test]
    fn lenient_le_spelling() {
        assert_eq!(toks("A <= B")[1], Token::Le);
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("% line comment\nfoo /* block\ncomment */ bar");
        assert_eq!(
            t,
            vec![Token::Atom("foo".into()), Token::Atom("bar".into())]
        );
    }

    #[test]
    fn quoted_atoms() {
        assert_eq!(
            toks("'hello world' 'it''s'"),
            vec![
                Token::Atom("hello world".into()),
                Token::Atom("it's".into())
            ]
        );
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(tokenize("'oops"), Err(RtecError::Lex { .. })));
    }

    #[test]
    fn unexpected_character_is_error() {
        assert!(matches!(tokenize("f(#)"), Err(RtecError::Lex { .. })));
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = tokenize("foo\n  bar").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }
}
