//! Engine telemetry: process-global metric handles.
//!
//! The engine's hot paths record into a fixed set of counters and
//! histograms registered once in the [`rtec_obs::global`] registry.
//! Handles are `Arc`s resolved a single time through a `OnceLock`, so
//! recording never touches the registry lock; the per-operation cost is
//! a relaxed atomic add.
//!
//! Series (all prefixed `rtec_engine_`):
//!
//! | name | kind | labels |
//! |------|------|--------|
//! | `rtec_engine_windows_total` | counter | — |
//! | `rtec_engine_events_processed_total` | counter | — |
//! | `rtec_engine_forget_drops_total` | counter | — |
//! | `rtec_engine_tick_duration_us` | histogram | — |
//! | `rtec_engine_fluent_eval_us` | histogram | `kind=simple\|static` |
//! | `rtec_engine_cache_requests_total` | counter | `result=hit\|miss` |
//! | `rtec_engine_interval_ops_total` | counter | `op=union\|intersect\|complement` |

use rtec_obs::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Handles to every engine metric series.
pub struct EngineMetrics {
    /// Windows (ticks) evaluated, across all engines in the process.
    pub windows: Arc<Counter>,
    /// Input events consumed by window evaluation.
    pub events_processed: Arc<Counter>,
    /// Stale events dropped by the forget-horizon policy.
    pub forget_drops: Arc<Counter>,
    /// Wall-clock duration of one window evaluation, in microseconds.
    pub tick_duration_us: Arc<Histogram>,
    /// Per-fluent evaluation time of simple (inertial) fluents.
    pub fluent_eval_simple_us: Arc<Histogram>,
    /// Per-fluent evaluation time of statically determined fluents.
    pub fluent_eval_static_us: Arc<Histogram>,
    /// Fluent-cache lookups that found an interval list.
    pub cache_hits: Arc<Counter>,
    /// Fluent-cache lookups that found nothing.
    pub cache_misses: Arc<Counter>,
    /// Interval-algebra union operations (`union_all`, `merge`).
    pub interval_union: Arc<Counter>,
    /// Interval-algebra intersections (`intersect`, `intersect_all`).
    pub interval_intersect: Arc<Counter>,
    /// Interval-algebra complements (`difference`,
    /// `relative_complement_all`).
    pub interval_complement: Arc<Counter>,
}

impl EngineMetrics {
    fn new() -> EngineMetrics {
        let r = rtec_obs::global();
        EngineMetrics {
            windows: r.counter(
                "rtec_engine_windows_total",
                "Windows (ticks) evaluated by the recognition engine.",
                &[],
            ),
            events_processed: r.counter(
                "rtec_engine_events_processed_total",
                "Input events consumed by window evaluation.",
                &[],
            ),
            forget_drops: r.counter(
                "rtec_engine_forget_drops_total",
                "Stale events dropped by the forget-horizon policy.",
                &[],
            ),
            tick_duration_us: r.histogram(
                "rtec_engine_tick_duration_us",
                "Wall-clock duration of one window evaluation (microseconds).",
                &[],
            ),
            fluent_eval_simple_us: r.histogram(
                "rtec_engine_fluent_eval_us",
                "Per-fluent evaluation time (microseconds).",
                &[("kind", "simple")],
            ),
            fluent_eval_static_us: r.histogram(
                "rtec_engine_fluent_eval_us",
                "Per-fluent evaluation time (microseconds).",
                &[("kind", "static")],
            ),
            cache_hits: r.counter(
                "rtec_engine_cache_requests_total",
                "Fluent-cache lookups by result.",
                &[("result", "hit")],
            ),
            cache_misses: r.counter(
                "rtec_engine_cache_requests_total",
                "Fluent-cache lookups by result.",
                &[("result", "miss")],
            ),
            interval_union: r.counter(
                "rtec_engine_interval_ops_total",
                "Interval-algebra operations by kind.",
                &[("op", "union")],
            ),
            interval_intersect: r.counter(
                "rtec_engine_interval_ops_total",
                "Interval-algebra operations by kind.",
                &[("op", "intersect")],
            ),
            interval_complement: r.counter(
                "rtec_engine_interval_ops_total",
                "Interval-algebra operations by kind.",
                &[("op", "complement")],
            ),
        }
    }
}

/// The process-global engine metric handles (created on first use).
pub fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(EngineMetrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_once_and_render() {
        let m = metrics();
        let before = m.windows.get();
        m.windows.inc();
        assert_eq!(metrics().windows.get(), before + 1);
        let text = rtec_obs::global().render_prometheus();
        assert!(text.contains("rtec_engine_windows_total"));
        assert!(text.contains("rtec_engine_fluent_eval_us_bucket{kind=\"simple\""));
        rtec_obs::expo::validate(&text).expect("valid exposition");
    }
}
