//! The windowed recognition engine.
//!
//! [`Engine`] consumes a stream of time-stamped input events (plus optional
//! input-fluent interval lists, e.g. vessel `proximity` in the maritime
//! domain) and computes, for every fluent-value pair defined by the event
//! description, the maximal intervals during which it holds.
//!
//! # Windowing
//!
//! RTEC processes a stream at successive query times with a sliding window,
//! "forgetting" older events so that the cost of reasoning depends on the
//! window size rather than the stream length (paper, Section 2). This
//! engine implements tumbling windows of size [`EngineConfig::window`] with
//! exact inertia carry-over: the open intervals of simple fluents survive
//! the window boundary, so the recognition output is *identical* to a
//! whole-stream batch run (tested), while event retention stays bounded by
//! the window.
//!
//! With [`EngineConfig::sliding`] the engine additionally queries every
//! [`EngineConfig::slide`] time-points over the last `window` time-points,
//! retaining the overlap's events and inertia snapshots so that events
//! arriving late — behind the query frontier but inside the window — are
//! amended into the output, RTEC-style. Two strategies are pinned to each
//! other by differential tests: the default *full* mode re-evaluates the
//! whole retained window at each query (redundant recomputation), while
//! [`EngineConfig::incremental`] mode evaluates only the fresh suffix and
//! skips rules whose input events provably did not change
//! ([`crate::eval::delta`]), falling back to the full replay whenever late
//! events or new input intervals make the suffix shortcut unprovable.
//! See `docs/SCALE.md` for the semantics and fallback rules.

use crate::ast::FluentKey;
use crate::checkpoint::{EngineCheckpoint, SlidingSection};
use crate::description::CompiledDescription;
use crate::eval::cache::FluentCache;
use crate::eval::delta::WindowDelta;
use crate::eval::events::EventIndex;
use crate::eval::simple::{evaluate_simple_fluent, InertiaState};
use crate::eval::statics::evaluate_static_fluent;
use crate::eval::WarningSink;
use crate::interval::{IntervalList, Timepoint, INF};
use crate::reorder::{DeadLetterLedger, DeadLetterReason};
use crate::symbol::SymbolTable;
use crate::term::{translate, GroundFvp, Term};
use std::collections::HashMap;

/// Recent refused-event records retained per engine (counts are exact
/// regardless; see [`Engine::dead_letters`]).
const ENGINE_DEAD_LETTER_CAP: usize = 256;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Window size in time-points: events are processed in chunks
    /// `(q - window, q]`. The default (`INF`) processes the whole stream in
    /// a single batch.
    pub window: Timepoint,
    /// Query period for sliding windows: `0` (the default) keeps the
    /// historical tumbling behaviour (each event is evaluated exactly
    /// once and forgotten at the next boundary); a positive `slide`
    /// queries every `slide` time-points over the last `window`
    /// time-points, retaining the overlap so late events inside the
    /// window are amended into the output.
    pub slide: Timepoint,
    /// With a positive [`EngineConfig::slide`], evaluate each query
    /// incrementally (fresh suffix + per-rule delta skip) instead of
    /// re-evaluating the whole retained window; observationally
    /// identical to the full mode (pinned by differential tests),
    /// falling back to the full replay when equivalence cannot be
    /// proven. Ignored for tumbling windows.
    pub incremental: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            window: INF,
            slide: 0,
            incremental: false,
        }
    }
}

impl EngineConfig {
    /// A (tumbling-)windowed configuration.
    pub fn windowed(window: Timepoint) -> EngineConfig {
        assert!(window > 0, "window must be positive");
        EngineConfig {
            window,
            ..EngineConfig::default()
        }
    }

    /// A sliding-window configuration: query every `slide` time-points
    /// over the last `window` time-points. Requires a finite window and
    /// `0 < slide <= window` (`slide == window` degenerates to tumbling
    /// cadence but still tolerates late events within one window).
    pub fn sliding(window: Timepoint, slide: Timepoint) -> EngineConfig {
        assert!(
            window > 0 && window < INF,
            "window must be positive and finite"
        );
        assert!(slide > 0 && slide <= window, "slide must be in 1..=window");
        EngineConfig {
            window,
            slide,
            ..EngineConfig::default()
        }
    }

    /// Returns the configuration with incremental evaluation switched
    /// on (meaningful only together with [`EngineConfig::sliding`]).
    pub fn with_incremental(mut self, incremental: bool) -> EngineConfig {
        self.incremental = incremental;
        self
    }

    /// Whether this configuration slides (retains a window overlap).
    pub fn is_sliding(&self) -> bool {
        self.slide > 0
    }
}

/// Which evaluation strategy an engine (or service session) uses.
///
/// Both strategies are pinned to each other by differential tests; the
/// plan evaluator (crate `rtec-plan`) trades compile time for lower
/// per-window cost. Checkpoints are mode-agnostic: a checkpoint written
/// under one mode restores under the other byte-identically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Walk the validated rule AST directly (the historical evaluator).
    #[default]
    Interpreter,
    /// Execute a compiled, slot-indexed evaluation plan (`rtec-plan`).
    Plan,
    /// Execute a compiled plan additionally rewritten by the
    /// analysis-driven optimizer (`rtec-analysis` proofs consumed by
    /// `rtec-plan`'s `PlanOptimizer` pass): statically-empty rules
    /// deleted, constant interval-algebra inputs folded, per-stratum
    /// trigger-signature pre-filters. Observationally identical to the
    /// other two modes.
    Optimized,
}

impl EvalMode {
    /// Environment variable consulted by [`EvalMode::from_env`].
    pub const ENV_VAR: &'static str = "RTEC_EVAL";

    /// Parses `"interpreter"` / `"plan"` / `"optimized"`.
    pub fn parse(s: &str) -> Option<EvalMode> {
        match s {
            "interpreter" => Some(EvalMode::Interpreter),
            "plan" => Some(EvalMode::Plan),
            "optimized" => Some(EvalMode::Optimized),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`EvalMode::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            EvalMode::Interpreter => "interpreter",
            EvalMode::Plan => "plan",
            EvalMode::Optimized => "optimized",
        }
    }

    /// Reads `RTEC_EVAL` from the environment; unset or unrecognised
    /// values fall back to the interpreter.
    pub fn from_env() -> EvalMode {
        std::env::var(Self::ENV_VAR)
            .ok()
            .and_then(|v| Self::parse(v.trim()))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for EvalMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A pluggable window-evaluation strategy.
///
/// The engine owns windowing, inertia carry, checkpointing and output
/// folding; an evaluator only derives the window's fluent intervals into
/// the cache. The default strategy is the AST interpreter
/// ([`crate::eval::simple`] / [`crate::eval::statics`]); `rtec-plan`
/// provides a compiled alternative installed via
/// [`Engine::set_evaluator`]. Implementations must be observationally
/// identical to the interpreter: same cache contents, same inertia
/// updates, same warnings in the same order.
pub trait WindowEvaluator: Send {
    /// A short label recorded (informationally) in checkpoints.
    fn label(&self) -> &'static str;

    /// Evaluates one window: derives every defined fluent bottom-up into
    /// `cache`, updating `inertia` and reporting `warnings`.
    fn evaluate_window(
        &mut self,
        events: &EventIndex,
        cache: &mut FluentCache<'_>,
        inertia: &mut InertiaState,
        warnings: &mut WarningSink,
    );

    /// Like [`WindowEvaluator::evaluate_window`], but additionally
    /// attributing per-rule self wall-time and interval-op counts into
    /// `profile` (one entry per evaluated stratum). The default forwards
    /// to `evaluate_window` and attributes nothing, so evaluators
    /// without profiling support keep working. Overrides must keep the
    /// profiled path observationally identical to the unprofiled one:
    /// attribution may only *time* the existing calls, never reorder or
    /// alter them.
    fn evaluate_window_profiled(
        &mut self,
        events: &EventIndex,
        cache: &mut FluentCache<'_>,
        inertia: &mut InertiaState,
        warnings: &mut WarningSink,
        profile: &mut rtec_obs::profile::WindowProfile,
    ) {
        let _ = profile;
        self.evaluate_window(events, cache, inertia, warnings);
    }

    /// Like [`WindowEvaluator::evaluate_window`], but additionally handed
    /// the window's [`WindowDelta`]: simple-fluent keys for which
    /// `delta.is_dirty(key)` is `false` provably have zero candidate
    /// events this window, so an evaluator may scan an empty index for
    /// them (pure inertia fold) instead of the real one. The default
    /// ignores the delta — still correct, just without the skip.
    /// Overrides must stay observationally identical to
    /// `evaluate_window` on the same events.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_window_incremental(
        &mut self,
        events: &EventIndex,
        delta: &WindowDelta,
        cache: &mut FluentCache<'_>,
        inertia: &mut InertiaState,
        warnings: &mut WarningSink,
        profile: Option<&mut rtec_obs::profile::WindowProfile>,
    ) {
        let _ = delta;
        match profile {
            Some(p) => self.evaluate_window_profiled(events, cache, inertia, warnings, p),
            None => self.evaluate_window(events, cache, inertia, warnings),
        }
    }
}

/// The accumulated recognition result: maximal intervals per ground FVP.
///
/// All intervals are closed; a fluent still holding at the end of the
/// processed stream is reported up to `horizon + 1` (it holds *at* the
/// horizon).
#[derive(Clone, Debug, Default)]
pub struct RecognitionOutput {
    map: HashMap<GroundFvp, IntervalList>,
    by_key: HashMap<FluentKey, Vec<GroundFvp>>,
    /// Deduplicated evaluation warnings (undefined fluents, dropped rule
    /// instances, arithmetic failures).
    pub warnings: Vec<String>,
}

impl RecognitionOutput {
    /// The maximal intervals of `fvp`, if it ever held.
    pub fn intervals(&self, fvp: &GroundFvp) -> Option<&IntervalList> {
        self.map.get(fvp)
    }

    /// Whether `fvp` holds at `t`.
    pub fn holds_at(&self, fvp: &GroundFvp, t: Timepoint) -> bool {
        self.intervals(fvp).is_some_and(|l| l.contains(t))
    }

    /// All ground instances recognised for a fluent `(functor, arity)` key.
    pub fn instances_of(&self, key: FluentKey) -> &[GroundFvp] {
        self.by_key.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over every `(fvp, intervals)` pair.
    pub fn iter(&self) -> impl Iterator<Item = (&GroundFvp, &IntervalList)> {
        self.map.iter()
    }

    /// Number of distinct FVPs recognised.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was recognised.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merges `list` into the entry of `fvp`.
    pub(crate) fn insert_merge(&mut self, fvp: GroundFvp, list: IntervalList) {
        if list.is_empty() {
            return;
        }
        match self.map.get_mut(&fvp) {
            Some(existing) => existing.merge(&list),
            None => {
                if let Some(key) = fvp.fluent.signature() {
                    self.by_key.entry(key).or_default().push(fvp.clone());
                }
                self.map.insert(fvp, list);
            }
        }
    }

    /// Merges another recognition output into this one (used when
    /// combining per-shard results of a partitioned run). Interval lists
    /// of FVPs present in both are unioned; warnings are concatenated and
    /// deduplicated.
    pub fn absorb(&mut self, other: RecognitionOutput) {
        for (fvp, list) in other.map {
            self.insert_merge(fvp, list);
        }
        for w in other.warnings {
            if !self.warnings.contains(&w) {
                self.warnings.push(w);
            }
        }
    }

    /// Union of the interval lists of every instance of `key` (useful for
    /// measuring how long *any* vessel performed an activity).
    pub fn union_of(&self, key: FluentKey) -> IntervalList {
        let lists: Vec<&IntervalList> = self
            .instances_of(key)
            .iter()
            .filter_map(|f| self.intervals(f))
            .collect();
        IntervalList::union_all(&lists)
    }

    /// Rolls the output back to its state as of query time `t`: every
    /// interval is clipped to `[_, t + 1)` and entries left empty are
    /// removed. Correct because every fold closes or clips its lists at
    /// the owning query time plus one, so the output as of `t` contained
    /// no time-point past `t + 1`; replaying the dropped windows
    /// re-derives the clipped tails exactly (chunking invariance) and
    /// [`RecognitionOutput::insert_merge`] restores them by union.
    pub(crate) fn truncate_after(&mut self, t: Timepoint) {
        let mut removed: Vec<GroundFvp> = Vec::new();
        self.map.retain(|fvp, list| {
            let clipped = list.clip(Timepoint::MIN, t + 1);
            if clipped.is_empty() {
                removed.push(fvp.clone());
                false
            } else {
                *list = clipped;
                true
            }
        });
        if !removed.is_empty() {
            for instances in self.by_key.values_mut() {
                instances.retain(|f| !removed.contains(f));
            }
            self.by_key.retain(|_, instances| !instances.is_empty());
        }
    }
}

/// Run-time counters of an engine (windows processed, events consumed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of windows evaluated so far.
    pub windows: usize,
    /// Number of input events consumed so far.
    pub events_processed: usize,
    /// Number of stale (behind-the-frontier) events dropped.
    pub events_dropped: usize,
}

/// Overlap state of a sliding-window engine: inertia snapshots at past
/// query times plus the retained (already-evaluated) events of the
/// current window, enabling rollback-and-replay when late events are
/// amended. Maintained identically by the full and incremental modes,
/// so checkpoints are byte-identical across them.
#[derive(Clone, Debug)]
struct SlidingState {
    /// `(query time, inertia as of that time)`, ascending; the first
    /// entry is the forget frontier (rollbacks never reach behind it).
    snapshots: Vec<(Timepoint, InertiaState)>,
    /// Evaluated events still inside the overlap, time-sorted.
    retained: Vec<(Term, Timepoint)>,
    /// Value of the engine's `inputs_version` when the last query ran;
    /// a mismatch means input intervals arrived since, which the
    /// incremental shortcut cannot account for (fallback to replay).
    inputs_seen: u64,
}

impl SlidingState {
    fn initial(at: Timepoint, inertia: &InertiaState) -> SlidingState {
        SlidingState {
            snapshots: vec![(at, inertia.clone())],
            retained: Vec::new(),
            inputs_seen: 0,
        }
    }

    /// The earliest retained snapshot time: events at or before it can
    /// no longer be incorporated.
    fn forget_frontier(&self) -> Timepoint {
        self.snapshots[0].0
    }
}

/// The windowed RTEC recognition engine.
///
/// Build terms for [`Engine::add_event`] with the *same*
/// [`crate::description::EventDescription`] the engine was compiled from
/// (symbol identity matters); for streams built against a different
/// description use [`Engine::add_event_from`], which re-interns symbols.
pub struct Engine<'a> {
    desc: &'a CompiledDescription,
    config: EngineConfig,
    /// Engine-local symbol table: a superset of the description's,
    /// extended by translated stream constants.
    symbols: SymbolTable,
    pending: Vec<(Term, Timepoint)>,
    inputs: HashMap<GroundFvp, IntervalList>,
    inputs_by_key: HashMap<FluentKey, Vec<GroundFvp>>,
    inertia: InertiaState,
    processed_to: Timepoint,
    output: RecognitionOutput,
    warnings: WarningSink,
    stats: EngineStats,
    /// Reason-coded audit trail of events refused at the engine
    /// boundary (process-local: not part of a checkpoint; the refusal
    /// *count* persists via [`EngineStats::events_dropped`]).
    dead_letters: DeadLetterLedger,
    /// Stale refusals since the last `run_to` warning flush.
    stale_rejected: usize,
    /// Replacement window-evaluation strategy; `None` runs the AST
    /// interpreter.
    evaluator: Option<Box<dyn WindowEvaluator>>,
    /// Per-rule cost attribution; `None` (the default) disables
    /// profiling entirely. Process-local — never part of a checkpoint,
    /// so checkpoint bytes are identical with profiling on or off.
    profiler: Option<crate::profile::EngineProfiler>,
    /// Window-overlap state; `Some` iff the configuration slides.
    sliding: Option<SlidingState>,
    /// Bumped on every accepted [`Engine::add_input_intervals`] call;
    /// compared against [`SlidingState::inputs_seen`] to detect input
    /// intervals arriving between queries.
    inputs_version: u64,
}

impl<'a> Engine<'a> {
    /// Creates an engine over a compiled event description.
    pub fn new(desc: &'a CompiledDescription, config: EngineConfig) -> Engine<'a> {
        let inertia = InertiaState::new();
        let sliding = config
            .is_sliding()
            .then(|| SlidingState::initial(-1, &inertia));
        Engine {
            desc,
            config,
            symbols: desc.symbols.clone(),
            pending: Vec::new(),
            inputs: HashMap::new(),
            inputs_by_key: HashMap::new(),
            inertia,
            processed_to: -1,
            output: RecognitionOutput::default(),
            warnings: WarningSink::new(),
            stats: EngineStats::default(),
            dead_letters: DeadLetterLedger::new(ENGINE_DEAD_LETTER_CAP),
            stale_rejected: 0,
            evaluator: None,
            profiler: None,
            sliding,
            inputs_version: 0,
        }
    }

    /// Creates an engine that evaluates windows with `evaluator` instead
    /// of the AST interpreter. The evaluator must have been compiled from
    /// the same description.
    pub fn with_evaluator(
        desc: &'a CompiledDescription,
        config: EngineConfig,
        evaluator: Box<dyn WindowEvaluator>,
    ) -> Engine<'a> {
        let mut engine = Engine::new(desc, config);
        engine.set_evaluator(evaluator);
        engine
    }

    /// Installs (or replaces) the window-evaluation strategy. Safe at any
    /// window boundary — all carried state (inertia, inputs, output) is
    /// strategy-agnostic, which is what keeps checkpoints portable across
    /// modes.
    pub fn set_evaluator(&mut self, evaluator: Box<dyn WindowEvaluator>) {
        self.evaluator = Some(evaluator);
    }

    /// The label of the active evaluation strategy (`"interpreter"` when
    /// no replacement evaluator is installed).
    pub fn eval_label(&self) -> &'static str {
        self.evaluator
            .as_deref()
            .map(WindowEvaluator::label)
            .unwrap_or("interpreter")
    }

    /// Enables per-rule profiling (idempotent). Works with either
    /// evaluation strategy and never perturbs recognition output —
    /// attribution only times the existing per-stratum calls.
    pub fn enable_profiler(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(crate::profile::EngineProfiler::new());
        }
    }

    /// Whether per-rule profiling is enabled.
    pub fn profiling_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// The session-lifetime per-rule cost totals, if profiling is
    /// enabled.
    pub fn profile(&self) -> Option<&rtec_obs::profile::ProfileAggregate> {
        self.profiler
            .as_ref()
            .map(crate::profile::EngineProfiler::aggregate)
    }

    /// Takes the most recent window's per-rule trace (used by the
    /// service's flight recorder), if profiling is enabled and a window
    /// was evaluated since the last take.
    pub fn take_window_profile(&mut self) -> Option<rtec_obs::profile::WindowProfile> {
        self.profiler
            .as_mut()
            .and_then(crate::profile::EngineProfiler::take_last_window)
    }

    /// Run-time counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The engine's symbol table (description symbols plus stream
    /// constants).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the engine's symbol table, for bulk stream
    /// translation (append-only: existing symbols never change).
    pub(crate) fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Queues an input event occurring at `t`.
    ///
    /// **Boundary contract**: the engine forgets everything at or
    /// before its processed frontier ([`Engine::processed_to`]), so an
    /// event with `t <= processed_to()` cannot be incorporated — it is
    /// rejected here, counted in [`EngineStats::events_dropped`],
    /// recorded in the [`Engine::dead_letters`] ledger with reason
    /// [`DeadLetterReason::PastHorizon`], and reported via a
    /// `"... dropped"` warning on the next [`Engine::run_to`]. It never
    /// reaches the pending queue, so it cannot corrupt inertial state.
    pub fn add_event(&mut self, event: Term, t: Timepoint) {
        if t <= self.forget_frontier() {
            self.reject_stale(t);
            return;
        }
        self.pending.push((event, t));
    }

    /// The time-point at or before which events can no longer be
    /// incorporated: the processed frontier for tumbling windows, the
    /// earliest retained inertia snapshot for sliding ones (events
    /// behind [`Engine::processed_to`] but inside the overlap are
    /// amended into the output on the next query).
    pub fn forget_frontier(&self) -> Timepoint {
        self.sliding
            .as_ref()
            .map(SlidingState::forget_frontier)
            .unwrap_or(self.processed_to)
    }

    /// Routes one stale event to the dead-letter ledger.
    fn reject_stale(&mut self, t: Timepoint) {
        let frontier = self.forget_frontier();
        self.dead_letters.record(
            DeadLetterReason::PastHorizon,
            Some(t),
            format!("event at t={t} is at or before the processed frontier ({frontier})"),
        );
        self.stats.events_dropped += 1;
        self.stale_rejected += 1;
    }

    /// Queues many input events (each subject to the
    /// [`Engine::add_event`] boundary contract).
    pub fn add_events(&mut self, events: impl IntoIterator<Item = (Term, Timepoint)>) {
        for (event, t) in events {
            self.add_event(event, t);
        }
    }

    /// Queues an event built against a different symbol table, re-interning
    /// its symbols (subject to the [`Engine::add_event`] boundary
    /// contract).
    pub fn add_event_from(&mut self, event: &Term, from: &SymbolTable, t: Timepoint) {
        let ev = translate(event, from, &mut self.symbols);
        self.add_event(ev, t);
    }

    /// The engine's dead-letter ledger: every event refused at the
    /// boundary, reason-coded. Process-local audit state — not part of
    /// an [`EngineCheckpoint`] (the refusal count persists through
    /// [`EngineStats::events_dropped`]).
    pub fn dead_letters(&self) -> &DeadLetterLedger {
        &self.dead_letters
    }

    /// Registers the interval list of an input fluent (computed outside the
    /// engine, e.g. spatial proximity between vessels).
    pub fn add_input_intervals(&mut self, fvp: GroundFvp, list: IntervalList) {
        if list.is_empty() {
            return;
        }
        self.inputs_version += 1;
        match self.inputs.get_mut(&fvp) {
            Some(existing) => existing.merge(&list),
            None => {
                if let Some(key) = fvp.fluent.signature() {
                    self.inputs_by_key.entry(key).or_default().push(fvp.clone());
                }
                self.inputs.insert(fvp, list);
            }
        }
    }

    /// Registers input-fluent intervals built against a different symbol
    /// table.
    pub fn add_input_intervals_from(
        &mut self,
        fvp: &GroundFvp,
        from: &SymbolTable,
        list: IntervalList,
    ) {
        let fluent = translate(&fvp.fluent, from, &mut self.symbols);
        let value = translate(&fvp.value, from, &mut self.symbols);
        self.add_input_intervals(GroundFvp { fluent, value }, list);
    }

    /// The time-point up to which the stream has been processed.
    pub fn processed_to(&self) -> Timepoint {
        self.processed_to
    }

    /// Processes all queued events with time-points `<= horizon`, window by
    /// window, and returns the accumulated output.
    ///
    /// **Forget-horizon policy**: the engine forgets everything at or
    /// before its processed frontier ([`Engine::processed_to`]). An event
    /// queued with `t <= processed_to()` — i.e. arriving *after* a
    /// `run_to` call already evaluated past its time-point — cannot be
    /// incorporated retroactively; it is dropped at the start of the next
    /// `run_to`, counted in [`EngineStats::events_dropped`], and reported
    /// via a `"... dropped"` warning on the output. Late events strictly
    /// *after* the frontier are fine at any insertion order.
    pub fn run_to(&mut self, horizon: Timepoint) -> &RecognitionOutput {
        // Stable sort keeps simultaneous events in arrival order.
        self.pending.sort_by_key(|(_, t)| *t);
        // Defensive second enforcement of the add_event boundary: a
        // restored pending queue upholds the invariant (checkpoints are
        // taken with it intact), so this drain is normally empty.
        let frontier = self.forget_frontier();
        let drained = self
            .pending
            .iter()
            .take_while(|(_, t)| *t <= frontier)
            .count();
        if drained > 0 {
            for (_, t) in self.pending.drain(..drained) {
                self.dead_letters.record(
                    DeadLetterReason::PastHorizon,
                    Some(t),
                    format!("event at t={t} is at or before the processed frontier ({frontier})"),
                );
            }
            self.stats.events_dropped += drained;
        }
        // One aggregated warning covers both rejection paths, so the
        // message (and its count) is byte-identical to the historical
        // run_to-time drop.
        let stale = drained + std::mem::take(&mut self.stale_rejected);
        if stale > 0 {
            self.warnings.push(format!(
                "{stale} event(s) at or before the processed frontier were dropped"
            ));
            crate::obs::metrics().forget_drops.add(stale as u64);
            rtec_obs::warn(
                "engine.forget_drop",
                &[("count", stale.into()), ("frontier", frontier.into())],
            );
        }

        // Amendment query: a sliding engine holding late-but-admissible
        // events (behind the processed frontier, inside the overlap)
        // must incorporate them even when the horizon does not advance.
        if self.sliding.is_some()
            && horizon <= self.processed_to
            && self.pending.iter().any(|(_, t)| *t <= self.processed_to)
        {
            self.process_query(self.processed_to);
        }

        let step = if self.config.is_sliding() {
            self.config.slide
        } else {
            self.config.window
        };
        while self.processed_to < horizon {
            let q = if step == INF {
                horizon
            } else {
                (self.processed_to.saturating_add(step)).min(horizon)
            };
            if self.sliding.is_some() {
                self.process_query(q);
            } else {
                self.process_chunk(q);
            }
        }
        self.output.warnings = self.warnings.messages().to_vec();
        &self.output
    }

    /// Convenience: runs up to the last queued event's time-point.
    pub fn run(&mut self) -> &RecognitionOutput {
        let horizon = self
            .pending
            .iter()
            .map(|(_, t)| *t)
            .max()
            .unwrap_or(self.processed_to.max(0));
        self.run_to(horizon)
    }

    /// Consumes the engine, returning the output.
    pub fn into_output(mut self) -> RecognitionOutput {
        self.output.warnings = self.warnings.messages().to_vec();
        self.output
    }

    /// The current accumulated output (without running).
    pub fn output(&self) -> &RecognitionOutput {
        &self.output
    }

    /// Snapshots the engine's retained window state: symbols, pending
    /// events, input intervals, inertia carry, processed frontier,
    /// accumulated output, warnings, and counters. A new engine built
    /// with [`Engine::restore`] from this checkpoint continues the
    /// stream with output identical to the uninterrupted run.
    ///
    /// Meaningful at any point, but cheapest and most useful at a
    /// window boundary (right after [`Engine::run_to`] returns), which
    /// is when the service checkpoints its shard workers.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let sliding = self.sliding.as_ref().map(|s| SlidingSection {
            snapshots: s
                .snapshots
                .iter()
                .map(|(t, inertia)| {
                    (
                        *t,
                        inertia
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect(),
                    )
                })
                .collect(),
            retained: s.retained.clone(),
        });
        EngineCheckpoint::from_parts(
            self.symbols
                .iter()
                .map(|(_, name)| name.to_string())
                .collect(),
            self.pending.clone(),
            self.inputs
                .iter()
                .map(|(fvp, list)| (fvp.clone(), list.clone()))
                .collect(),
            &self.inertia,
            self.processed_to,
            self.output
                .map
                .iter()
                .map(|(fvp, list)| (fvp.clone(), list.clone()))
                .collect(),
            self.warnings.messages().to_vec(),
            self.stats,
            sliding,
            Some(self.eval_label().to_string()),
        )
    }

    /// Rebuilds an engine from a checkpoint taken over the *same*
    /// compiled description. The checkpoint's symbol list must extend
    /// the description's table (it always does for checkpoints taken by
    /// [`Engine::checkpoint`] against the same source); a mismatch —
    /// e.g. a checkpoint from a different description — is an error,
    /// since raw symbol ids would silently rebind.
    pub fn restore(
        desc: &'a CompiledDescription,
        config: EngineConfig,
        checkpoint: &EngineCheckpoint,
    ) -> Result<Engine<'a>, String> {
        let mut symbols = SymbolTable::new();
        for name in checkpoint.symbol_names() {
            symbols.intern(name);
        }
        for (sym, name) in desc.symbols.iter() {
            if symbols.try_name(sym) != Some(name) {
                return Err(format!(
                    "checkpoint symbols do not extend the description's table \
                     (description symbol \"{name}\" missing or rebound)"
                ));
            }
        }
        let mut warnings = WarningSink::new();
        for w in &checkpoint.warnings {
            warnings.push(w.clone());
        }
        let inertia = checkpoint.inertia_state();
        // A sliding configuration resumes its overlap from the
        // checkpoint's sliding section; a checkpoint without one (taken
        // by a tumbling engine, or pre-sliding) starts a fresh overlap
        // at the restored frontier — late events behind it are lost,
        // exactly as they would be across any tumbling restore.
        let sliding = config
            .is_sliding()
            .then(|| match checkpoint.sliding_section() {
                Some(section) => SlidingState {
                    snapshots: section
                        .snapshots
                        .iter()
                        .map(|(t, entries)| (*t, entries.iter().cloned().collect()))
                        .collect(),
                    retained: section.retained.clone(),
                    inputs_seen: 0,
                },
                None => SlidingState::initial(checkpoint.processed_to, &inertia),
            });
        let mut engine = Engine {
            desc,
            config,
            symbols,
            pending: checkpoint.pending.clone(),
            inputs: HashMap::new(),
            inputs_by_key: HashMap::new(),
            inertia,
            processed_to: checkpoint.processed_to,
            output: RecognitionOutput::default(),
            warnings,
            stats: checkpoint.stats,
            dead_letters: DeadLetterLedger::new(ENGINE_DEAD_LETTER_CAP),
            stale_rejected: 0,
            evaluator: None,
            profiler: None,
            sliding,
            inputs_version: 0,
        };
        for (fvp, list) in &checkpoint.inputs {
            engine.add_input_intervals(fvp.clone(), list.clone());
        }
        for (fvp, list) in &checkpoint.output {
            engine.output.insert_merge(fvp.clone(), list.clone());
        }
        engine.output.warnings = checkpoint.warnings.clone();
        // Restored inputs were already seen by the checkpointed run;
        // they must not force an incremental fallback by themselves.
        if let Some(s) = engine.sliding.as_mut() {
            s.inputs_seen = engine.inputs_version;
        }
        Ok(engine)
    }

    /// Tumbling-window step: drains and evaluates everything up to `q`.
    fn process_chunk(&mut self, q: Timepoint) {
        // Take the chunk's events off the pending queue.
        let upto = self.pending.partition_point(|(_, t)| *t <= q);
        let chunk_events: Vec<(Term, Timepoint)> = self.pending.drain(..upto).collect();
        self.stats.windows += 1;
        self.stats.events_processed += chunk_events.len();
        crate::obs::metrics()
            .events_processed
            .add(chunk_events.len() as u64);
        self.evaluate_chunk(chunk_events, q, false);
    }

    /// Sliding-window step: one query at time `q`.
    ///
    /// Fresh events are drained up to `q`; then either the fresh suffix
    /// is evaluated on top of the carried state (incremental mode, when
    /// nothing invalidates the shortcut), or the engine rolls back to
    /// the newest inertia snapshot at least one window behind `q` and
    /// replays the retained events from there — RTEC-style redundant
    /// recomputation, and the fallback that amends late events. The
    /// replay re-evaluates at the original query boundaries, recording
    /// the same intermediate snapshots, so the retained overlap state
    /// (and with it checkpoint bytes) is identical across both modes.
    fn process_query(&mut self, q: Timepoint) {
        let upto = self.pending.partition_point(|(_, t)| *t <= q);
        let fresh: Vec<(Term, Timepoint)> = self.pending.drain(..upto).collect();
        let has_late = fresh.iter().any(|(_, t)| *t <= self.processed_to);
        self.stats.windows += 1;
        self.stats.events_processed += fresh.len();
        crate::obs::metrics()
            .events_processed
            .add(fresh.len() as u64);
        let inputs_changed = {
            let sliding = self.sliding.as_ref().expect("sliding engine");
            sliding.inputs_seen != self.inputs_version
        };

        if self.config.incremental && !has_late && !inputs_changed {
            // Fresh-suffix evaluation with the per-rule delta skip: the
            // overlap's contribution is fully carried by the inertia
            // state, exactly as across a tumbling boundary.
            self.sliding
                .as_mut()
                .expect("sliding engine")
                .retained
                .extend(fresh.iter().cloned());
            self.evaluate_chunk(fresh, q, true);
        } else {
            // Roll back and replay the retained window. The rollback
            // boundary is the newest snapshot at least `window` behind
            // `q` (or the forget frontier when none is old enough).
            let window = self.config.window;
            let (boundary_idx, boundary, snapshot, rungs) = {
                let sliding = self.sliding.as_mut().expect("sliding engine");
                sliding.retained.extend(fresh);
                // Stable: a late event lands after retained events of
                // the same time-point, matching its drain position had
                // it arrived in order within that query's chunk.
                sliding.retained.sort_by_key(|(_, t)| *t);
                let target = q.saturating_sub(window);
                let boundary_idx = sliding
                    .snapshots
                    .iter()
                    .rposition(|(t, _)| *t <= target)
                    .unwrap_or(0);
                let (boundary, snapshot) = sliding.snapshots[boundary_idx].clone();
                // Re-evaluate at the original query boundaries so the
                // intermediate snapshots (and static-fluent folds) are
                // regenerated exactly; `q` itself is the final rung.
                let rungs: Vec<Timepoint> = sliding.snapshots[boundary_idx + 1..]
                    .iter()
                    .map(|(t, _)| *t)
                    .filter(|t| *t < q)
                    .chain(std::iter::once(q))
                    .collect();
                sliding.snapshots.truncate(boundary_idx + 1);
                (boundary_idx, boundary, snapshot, rungs)
            };
            let _ = boundary_idx;
            self.inertia = snapshot;
            self.output.truncate_after(boundary);
            self.processed_to = boundary;
            let mut prev = boundary;
            for rung in rungs {
                let chunk: Vec<(Term, Timepoint)> = {
                    let sliding = self.sliding.as_ref().expect("sliding engine");
                    sliding
                        .retained
                        .iter()
                        .filter(|(_, t)| *t > prev && *t <= rung)
                        .cloned()
                        .collect()
                };
                self.evaluate_chunk(chunk, rung, false);
                if rung < q {
                    let snap = self.inertia.clone();
                    self.sliding
                        .as_mut()
                        .expect("sliding engine")
                        .snapshots
                        .push((rung, snap));
                }
                prev = rung;
            }
        }

        // Record the query's snapshot and prune the overlap: the next
        // query (at `q + slide`) rolls back to the newest snapshot at
        // least `window` behind it, so everything older than that
        // boundary — snapshots and events alike — is forgotten.
        let snap = self.inertia.clone();
        let slide = self.config.slide;
        let window = self.config.window;
        let inputs_version = self.inputs_version;
        let sliding = self.sliding.as_mut().expect("sliding engine");
        sliding.snapshots.push((q, snap));
        let target = q.saturating_add(slide).saturating_sub(window);
        let keep_from = sliding
            .snapshots
            .iter()
            .rposition(|(t, _)| *t <= target)
            .unwrap_or(0);
        sliding.snapshots.drain(..keep_from);
        let base = sliding.forget_frontier();
        sliding.retained.retain(|(_, t)| *t > base);
        sliding.inputs_seen = inputs_version;
    }

    /// Evaluates one chunk of events as the window `(processed_to, q]`
    /// and folds the results into the output. With `use_delta`, simple
    /// fluents provably unaffected by the chunk's events are evaluated
    /// against an empty index (pure inertia fold — identical by
    /// construction, see [`crate::eval::delta`]).
    fn evaluate_chunk(
        &mut self,
        chunk_events: Vec<(Term, Timepoint)>,
        q: Timepoint,
        use_delta: bool,
    ) {
        let metrics = crate::obs::metrics();
        let started = std::time::Instant::now();
        metrics.windows.inc();
        let index = EventIndex::build(chunk_events);
        let delta = use_delta.then(|| WindowDelta::compute(self.desc, &index));
        let empty_index = EventIndex::default();

        let mut cache = FluentCache::new(&self.inputs, &self.inputs_by_key);
        let mut window_profile = self
            .profiler
            .as_ref()
            .map(|_| rtec_obs::profile::WindowProfile::new());
        if let Some(evaluator) = self.evaluator.as_deref_mut() {
            match (&delta, window_profile.as_mut()) {
                (Some(d), wp) => evaluator.evaluate_window_incremental(
                    &index,
                    d,
                    &mut cache,
                    &mut self.inertia,
                    &mut self.warnings,
                    wp,
                ),
                (None, Some(wp)) => evaluator.evaluate_window_profiled(
                    &index,
                    &mut cache,
                    &mut self.inertia,
                    &mut self.warnings,
                    wp,
                ),
                (None, None) => evaluator.evaluate_window(
                    &index,
                    &mut cache,
                    &mut self.inertia,
                    &mut self.warnings,
                ),
            }
        } else {
            for key in &self.desc.strata {
                if self.desc.simple_by_fluent.contains_key(key) {
                    // Clean keys scan an empty index: zero candidate
                    // events, so only the inertia carry is folded —
                    // identical to scanning the real index.
                    let key_index = match &delta {
                        Some(d) if !d.is_dirty(*key) => &empty_index,
                        _ => &index,
                    };
                    let ops_before = crate::profile::interval_ops();
                    let eval_started = std::time::Instant::now();
                    evaluate_simple_fluent(
                        self.desc,
                        *key,
                        key_index,
                        &mut cache,
                        &mut self.inertia,
                        &mut self.warnings,
                    );
                    let elapsed = eval_started.elapsed();
                    metrics.fluent_eval_simple_us.observe_duration(elapsed);
                    if let Some(wp) = window_profile.as_mut() {
                        let prof = self.profiler.as_mut().expect("profiling enabled");
                        wp.record(
                            prof.name_of(&self.symbols, *key),
                            rtec_obs::profile::RuleKind::Simple,
                            elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                            crate::profile::interval_ops().wrapping_sub(ops_before),
                        );
                    }
                }
                if self.desc.static_by_fluent.contains_key(key) {
                    let ops_before = crate::profile::interval_ops();
                    let eval_started = std::time::Instant::now();
                    evaluate_static_fluent(self.desc, *key, &mut cache, &mut self.warnings);
                    let elapsed = eval_started.elapsed();
                    metrics.fluent_eval_static_us.observe_duration(elapsed);
                    if let Some(wp) = window_profile.as_mut() {
                        let prof = self.profiler.as_mut().expect("profiling enabled");
                        wp.record(
                            prof.name_of(&self.symbols, *key),
                            rtec_obs::profile::RuleKind::Static,
                            elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                            crate::profile::interval_ops().wrapping_sub(ops_before),
                        );
                    }
                }
            }
        }

        // Fold the window's results into the global output.
        //
        // Simple fluents: clip open intervals at the window end (they will
        // be re-emitted, extended, by the next window thanks to the
        // inertia carry); closed intervals are exact and may safely be
        // re-asserted.
        //
        // Statically determined fluents: additionally clip at the window
        // *start*. A later window re-derives them from the carried-open
        // simple fluents only — the closed past intervals of a subtrahend
        // are forgotten — so re-asserting time-points before this window
        // could union away holes that `relative_complement_all` correctly
        // carved in an earlier window. Every time-point `<= processed_to`
        // was already folded by the window that owned it, with full
        // knowledge.
        let window_start = self.processed_to + 1;
        for (fvp, list) in cache.into_computed() {
            let is_static = fvp
                .fluent
                .signature()
                .is_some_and(|key| self.desc.static_by_fluent.contains_key(&key));
            let folded = if is_static {
                list.clip(window_start, q + 1)
            } else {
                list.close_at(q + 1)
            };
            self.output.insert_merge(fvp, folded);
        }
        self.processed_to = q;
        let window_elapsed = started.elapsed();
        if let (Some(mut wp), Some(prof)) = (window_profile, self.profiler.as_mut()) {
            wp.total_ns = window_elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
            prof.finish_window(wp);
        }
        metrics.tick_duration_us.observe_duration(window_elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::EventDescription;

    /// withinArea example of the paper (rules (1)-(3)) plus background.
    const WITHIN_AREA: &str = r#"
        initiatedAt(withinArea(Vl, AreaType)=true, T) :-
            happensAt(entersArea(Vl, AreaId), T),
            areaType(AreaId, AreaType).
        terminatedAt(withinArea(Vl, AreaType)=true, T) :-
            happensAt(leavesArea(Vl, AreaId), T),
            areaType(AreaId, AreaType).
        terminatedAt(withinArea(Vl, AreaType)=true, T) :-
            happensAt(gap_start(Vl), T).
        areaType(a1, fishing).
        areaType(a2, anchorage).
    "#;

    fn run_within_area(window: Timepoint) -> (RecognitionOutput, GroundFvp) {
        let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
        let fvp = desc.fvp("withinArea(v1, fishing)=true").unwrap();
        let e_enter = desc.term("entersArea(v1, a1)").unwrap();
        let e_leave = desc.term("leavesArea(v1, a1)").unwrap();
        let e_gap = desc.term("gap_start(v1)").unwrap();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(
            &compiled,
            EngineConfig {
                window,
                ..EngineConfig::default()
            },
        );
        engine.add_event(e_enter.clone(), 10);
        engine.add_event(e_leave, 30);
        engine.add_event(e_enter, 50);
        engine.add_event(e_gap, 80);
        engine.run_to(100);
        (engine.into_output(), fvp)
    }

    #[test]
    fn batch_recognition_matches_paper_semantics() {
        let (out, fvp) = run_within_area(INF);
        let l = out.intervals(&fvp).unwrap();
        // (10, 30] and (50, 80] in paper notation.
        assert_eq!(
            l.as_slice(),
            &[
                crate::interval::Interval::new(11, 31),
                crate::interval::Interval::new(51, 81)
            ]
        );
    }

    #[test]
    fn windowed_equals_batch() {
        let (batch, fvp) = run_within_area(INF);
        for window in [1, 7, 13, 25, 100] {
            let (windowed, _) = run_within_area(window);
            assert_eq!(
                batch.intervals(&fvp),
                windowed.intervals(&fvp),
                "window={window}"
            );
        }
    }

    /// Regression test for the windowed `relative_complement_all`
    /// divergence found in review: a later window, having forgotten the
    /// subtrahend's closed intervals, must not re-assert (and union away)
    /// the hole an earlier window correctly carved.
    #[test]
    fn windowed_relative_complement_equals_batch() {
        const SRC: &str = "
            initiatedAt(base(V)=true, T) :- happensAt(bstart(V), T).
            initiatedAt(sub(V)=true, T) :- happensAt(sstart(V), T).
            terminatedAt(sub(V)=true, T) :- happensAt(send(V), T).
            holdsFor(out(V)=true, I) :-
                holdsFor(base(V)=true, Ib),
                holdsFor(sub(V)=true, Is),
                relative_complement_all(Ib, [Is], I).
        ";
        let run = |window: Timepoint| {
            let mut desc = EventDescription::parse(SRC).unwrap();
            let fvp = desc.fvp("out(v1)=true").unwrap();
            let events = [
                (desc.term("bstart(v1)").unwrap(), 0),
                (desc.term("sstart(v1)").unwrap(), 2),
                (desc.term("send(v1)").unwrap(), 5),
            ];
            let compiled = desc.compile().unwrap();
            let config = if window == INF {
                EngineConfig::default()
            } else {
                EngineConfig::windowed(window)
            };
            let mut engine = Engine::new(&compiled, config);
            engine.add_events(events);
            engine.run_to(30);
            engine.into_output().intervals(&fvp).cloned()
        };
        let batch = run(INF).expect("recognised in batch");
        assert_eq!(
            batch.as_slice(),
            &[
                crate::interval::Interval::new(1, 3),
                crate::interval::Interval::new(6, 31)
            ]
        );
        for window in [3, 7, 10, 13] {
            assert_eq!(Some(&batch), run(window).as_ref(), "window={window}");
        }
    }

    #[test]
    fn fluent_open_at_horizon_is_clipped_there() {
        let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
        let fvp = desc.fvp("withinArea(v1, fishing)=true").unwrap();
        let e_enter = desc.term("entersArea(v1, a1)").unwrap();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        engine.add_event(e_enter, 10);
        let out = engine.run_to(100);
        let l = out.intervals(&fvp).unwrap();
        assert_eq!(l.as_slice(), &[crate::interval::Interval::new(11, 101)]);
        assert!(out.holds_at(&fvp, 100));
    }

    #[test]
    fn incremental_runs_accumulate() {
        let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
        let fvp = desc.fvp("withinArea(v1, fishing)=true").unwrap();
        let e_enter = desc.term("entersArea(v1, a1)").unwrap();
        let e_leave = desc.term("leavesArea(v1, a1)").unwrap();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::windowed(10));
        engine.add_event(e_enter, 5);
        engine.run_to(20);
        assert!(engine.output().holds_at(&fvp, 15));
        engine.add_event(e_leave, 25);
        engine.run_to(40);
        let l = engine.output().intervals(&fvp).unwrap();
        assert_eq!(l.as_slice(), &[crate::interval::Interval::new(6, 26)]);
    }

    #[test]
    fn stale_events_are_dropped_with_warning() {
        let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
        let e_enter = desc.term("entersArea(v1, a1)").unwrap();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        engine.run_to(50);
        engine.add_event(e_enter, 10); // before the frontier
        let out = engine.run_to(100);
        assert!(out.is_empty());
        assert!(out.warnings.iter().any(|w| w.contains("dropped")));
    }

    fn rendered(out: &RecognitionOutput, symbols: &SymbolTable) -> Vec<String> {
        let mut rows: Vec<String> = out
            .iter()
            .map(|(fvp, list)| format!("{}={list}", fvp.display(symbols)))
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
        let e_enter = desc.term("entersArea(v1, a1)").unwrap();
        let e_leave = desc.term("leavesArea(v1, a1)").unwrap();
        let e_gap = desc.term("gap_start(v1)").unwrap();
        let compiled = desc.compile().unwrap();

        // Uninterrupted reference run, windowed.
        let mut reference = Engine::new(&compiled, EngineConfig::windowed(20));
        reference.add_event(e_enter.clone(), 10);
        reference.add_event(e_leave.clone(), 30);
        reference.run_to(35);
        reference.add_event(e_enter.clone(), 50);
        reference.add_event(e_gap.clone(), 80);
        reference.run_to(100);
        let ref_symbols = reference.symbols().clone();
        let ref_out = reference.into_output();

        // Interrupted run: checkpoint mid-stream, drop the engine,
        // restore, and continue with the remaining events.
        let mut first = Engine::new(&compiled, EngineConfig::windowed(20));
        first.add_event(e_enter.clone(), 10);
        first.add_event(e_leave, 30);
        first.run_to(35);
        let ck = first.checkpoint();
        drop(first);

        // The checkpoint survives a disk round-trip.
        let ck = EngineCheckpoint::from_json(&ck.to_json()).unwrap();
        let mut resumed = Engine::restore(&compiled, EngineConfig::windowed(20), &ck).unwrap();
        assert_eq!(resumed.processed_to(), 35);
        resumed.add_event(e_enter, 50);
        resumed.add_event(e_gap, 80);
        resumed.run_to(100);
        let res_symbols = resumed.symbols().clone();
        let res_out = resumed.into_output();

        assert_eq!(
            rendered(&ref_out, &ref_symbols),
            rendered(&res_out, &res_symbols)
        );
        assert_eq!(ref_out.warnings, res_out.warnings);
    }

    #[test]
    fn checkpoint_preserves_pending_events_and_stats() {
        let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
        let fvp = desc.fvp("withinArea(v1, fishing)=true").unwrap();
        let e_enter = desc.term("entersArea(v1, a1)").unwrap();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::windowed(10));
        engine.run_to(50);
        engine.add_event(e_enter.clone(), 10); // stale: dropped with warning
        engine.run_to(60);
        engine.add_event(e_enter, 70); // pending, not yet evaluated
        let ck = engine.checkpoint();
        assert_eq!(ck.stats().events_dropped, 1);
        drop(engine);
        let mut resumed = Engine::restore(&compiled, EngineConfig::windowed(10), &ck).unwrap();
        resumed.run_to(90);
        assert_eq!(resumed.stats().events_dropped, 1);
        let out = resumed.into_output();
        assert!(out.holds_at(&fvp, 80), "pending event survived the restore");
        assert!(out.warnings.iter().any(|w| w.contains("dropped")));
    }

    #[test]
    fn restore_rejects_foreign_description() {
        let desc_a = EventDescription::parse(WITHIN_AREA).unwrap();
        let compiled_a = desc_a.compile().unwrap();
        let engine = Engine::new(&compiled_a, EngineConfig::default());
        let ck = engine.checkpoint();
        let desc_b =
            EventDescription::parse("initiatedAt(other(X)=true, T) :- happensAt(go(X), T).")
                .unwrap();
        let compiled_b = desc_b.compile().unwrap();
        assert!(Engine::restore(&compiled_b, EngineConfig::default(), &ck).is_err());
    }

    /// Enabling the profiler attributes cost to every evaluated fluent
    /// without perturbing recognition: intervals, warnings and
    /// checkpoint bytes are identical to an unprofiled run.
    #[test]
    fn profiler_attributes_without_perturbing_output() {
        let run = |profiled: bool| {
            let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
            let e_enter = desc.term("entersArea(v1, a1)").unwrap();
            let e_leave = desc.term("leavesArea(v1, a1)").unwrap();
            let compiled = desc.compile().unwrap();
            let mut engine = Engine::new(&compiled, EngineConfig::windowed(20));
            if profiled {
                engine.enable_profiler();
            }
            engine.add_event(e_enter, 10);
            engine.add_event(e_leave, 30);
            engine.run_to(50);
            let ck = engine.checkpoint().to_json();
            let profile = engine.profile().cloned();
            let symbols = engine.symbols().clone();
            (rendered(engine.output(), &symbols), ck, profile)
        };
        let (plain_out, plain_ck, plain_profile) = run(false);
        let (prof_out, prof_ck, prof_profile) = run(true);
        assert_eq!(plain_out, prof_out);
        assert_eq!(plain_ck, prof_ck, "checkpoint bytes must not change");
        assert!(plain_profile.is_none());
        let profile = prof_profile.expect("profiler enabled");
        assert_eq!(profile.windows, 3, "windowed(20) run_to(50) = 3 windows");
        let entries = profile.sorted();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "withinArea/2");
        assert_eq!(entries[0].kind, rtec_obs::profile::RuleKind::Simple);
        assert_eq!(entries[0].cost.calls, 3);
    }

    #[test]
    fn sliding_full_and_incremental_match_batch() {
        let (batch, fvp) = run_within_area(INF);
        for slide in [1, 5, 20] {
            for incremental in [false, true] {
                let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
                let e_enter = desc.term("entersArea(v1, a1)").unwrap();
                let e_leave = desc.term("leavesArea(v1, a1)").unwrap();
                let e_gap = desc.term("gap_start(v1)").unwrap();
                let compiled = desc.compile().unwrap();
                let config = EngineConfig::sliding(20, slide).with_incremental(incremental);
                let mut engine = Engine::new(&compiled, config);
                engine.add_event(e_enter.clone(), 10);
                engine.add_event(e_leave, 30);
                engine.add_event(e_enter, 50);
                engine.add_event(e_gap, 80);
                engine.run_to(100);
                assert_eq!(
                    batch.intervals(&fvp),
                    engine.output().intervals(&fvp),
                    "slide={slide} incremental={incremental}"
                );
            }
        }
    }

    /// A late event behind the query frontier but inside the window
    /// overlap is amended into the output — in both sliding modes, with
    /// checkpoints staying byte-identical across them.
    #[test]
    fn sliding_amends_late_events_within_overlap() {
        let run = |incremental: bool| {
            let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
            let fvp = desc.fvp("withinArea(v1, fishing)=true").unwrap();
            let e_enter = desc.term("entersArea(v1, a1)").unwrap();
            let e_leave = desc.term("leavesArea(v1, a1)").unwrap();
            let compiled = desc.compile().unwrap();
            let config = EngineConfig::sliding(20, 5).with_incremental(incremental);
            let mut engine = Engine::new(&compiled, config);
            engine.add_event(e_enter, 10);
            engine.run_to(40);
            assert!(engine.output().holds_at(&fvp, 39));
            // Late: behind the frontier (40) but inside the overlap.
            engine.add_event(e_leave, 35);
            engine.run_to(40);
            let intervals = engine.output().intervals(&fvp).cloned();
            (intervals, engine.checkpoint().to_json())
        };
        let (full, full_ck) = run(false);
        let (incr, incr_ck) = run(true);
        assert_eq!(
            full.as_ref().map(IntervalList::as_slice),
            Some(&[crate::interval::Interval::new(11, 36)][..]),
            "late leave amended"
        );
        assert_eq!(full, incr);
        assert_eq!(full_ck, incr_ck, "checkpoint bytes must match across modes");
    }

    #[test]
    fn sliding_checkpoint_restores_and_resumes() {
        let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
        let e_enter = desc.term("entersArea(v1, a1)").unwrap();
        let e_leave = desc.term("leavesArea(v1, a1)").unwrap();
        let compiled = desc.compile().unwrap();
        let config = EngineConfig::sliding(20, 5).with_incremental(true);

        let mut reference = Engine::new(&compiled, config);
        reference.add_event(e_enter.clone(), 10);
        reference.run_to(40);
        reference.add_event(e_leave.clone(), 35);
        reference.run_to(60);
        let ref_symbols = reference.symbols().clone();
        let ref_ck = reference.checkpoint().to_json();
        let ref_out = reference.into_output();

        let mut first = Engine::new(&compiled, config);
        first.add_event(e_enter, 10);
        first.run_to(40);
        let ck = EngineCheckpoint::from_json(&first.checkpoint().to_json()).unwrap();
        drop(first);
        let mut resumed = Engine::restore(&compiled, config, &ck).unwrap();
        resumed.add_event(e_leave, 35); // late, admissible after restore
        resumed.run_to(60);
        let res_symbols = resumed.symbols().clone();
        assert_eq!(resumed.checkpoint().to_json(), ref_ck);
        let res_out = resumed.into_output();
        assert_eq!(
            rendered(&ref_out, &ref_symbols),
            rendered(&res_out, &res_symbols)
        );
    }

    #[test]
    fn multi_vessel_instances_are_separate() {
        let mut desc = EventDescription::parse(WITHIN_AREA).unwrap();
        let f1 = desc.fvp("withinArea(v1, fishing)=true").unwrap();
        let f2 = desc.fvp("withinArea(v2, anchorage)=true").unwrap();
        let e1 = desc.term("entersArea(v1, a1)").unwrap();
        let e2 = desc.term("entersArea(v2, a2)").unwrap();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        engine.add_event(e1, 10);
        engine.add_event(e2, 20);
        let out = engine.run_to(50);
        assert!(out.holds_at(&f1, 15));
        assert!(!out.holds_at(&f2, 15));
        assert!(out.holds_at(&f2, 25));
        let wa = compiled.symbols.get("withinArea").unwrap();
        assert_eq!(out.instances_of((wa, 2)).len(), 2);
    }
}
