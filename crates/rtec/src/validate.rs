//! Validation of raw clauses against RTEC's rule syntax.
//!
//! Implements the syntactic restrictions of the paper's Definition 2.2
//! (simple-fluent rules) and Definition 2.4 (statically-determined-fluent
//! rules), extended where the paper's own example rules go beyond the
//! definitions (background-knowledge conditions such as `areaType/2` and
//! arithmetic comparisons appear in rules (1), (2) and the maritime event
//! description, so the engine supports them in both rule types).
//!
//! Clauses that violate the syntax are reported with [`Severity::Error`]
//! and excluded from compilation — exactly the situation the paper
//! describes for LLM-generated definitions that "cannot be supplied
//! directly to RTEC". Deviations the engine can tolerate produce
//! [`Severity::Warning`]s instead.

use crate::ast::{
    BodyLiteral, Clause, CmpOp, Fvp, SimpleKind, SimpleRule, StaticLiteral, StaticRule,
};
use crate::error::{Severity, ValidationReport};
use crate::symbol::{Symbol, SymbolTable};
use crate::term::Term;

/// Interned names of the reserved predicates.
#[derive(Clone, Copy, Debug)]
pub struct SysSymbols {
    /// `initiatedAt`
    pub initiated_at: Symbol,
    /// `terminatedAt`
    pub terminated_at: Symbol,
    /// `happensAt`
    pub happens_at: Symbol,
    /// `holdsAt`
    pub holds_at: Symbol,
    /// `holdsFor`
    pub holds_for: Symbol,
    /// `union_all`
    pub union_all: Symbol,
    /// `intersect_all`
    pub intersect_all: Symbol,
    /// `relative_complement_all`
    pub relative_complement_all: Symbol,
    /// `not`
    pub not: Symbol,
    /// `=`
    pub eq: Symbol,
    /// `\=`
    pub neq: Symbol,
    /// `<`
    pub lt: Symbol,
    /// `>`
    pub gt: Symbol,
    /// `=<`
    pub le: Symbol,
    /// `>=`
    pub ge: Symbol,
}

impl SysSymbols {
    /// Interns the reserved names into `symbols`.
    pub fn intern(symbols: &mut SymbolTable) -> SysSymbols {
        SysSymbols {
            initiated_at: symbols.intern("initiatedAt"),
            terminated_at: symbols.intern("terminatedAt"),
            happens_at: symbols.intern("happensAt"),
            holds_at: symbols.intern("holdsAt"),
            holds_for: symbols.intern("holdsFor"),
            union_all: symbols.intern("union_all"),
            intersect_all: symbols.intern("intersect_all"),
            relative_complement_all: symbols.intern("relative_complement_all"),
            not: symbols.intern("not"),
            eq: symbols.intern("="),
            neq: symbols.intern("\\="),
            lt: symbols.intern("<"),
            gt: symbols.intern(">"),
            le: symbols.intern("=<"),
            ge: symbols.intern(">="),
        }
    }

    /// The comparison operator denoted by `f`, if any.
    pub fn cmp_op(&self, f: Symbol) -> Option<CmpOp> {
        Some(match f {
            _ if f == self.eq => CmpOp::Eq,
            _ if f == self.neq => CmpOp::Neq,
            _ if f == self.lt => CmpOp::Lt,
            _ if f == self.gt => CmpOp::Gt,
            _ if f == self.le => CmpOp::Le,
            _ if f == self.ge => CmpOp::Ge,
            _ => return None,
        })
    }

    /// Whether `f` is one of the temporal rule-head predicates.
    pub fn is_rule_head(&self, f: Symbol) -> bool {
        f == self.initiated_at || f == self.terminated_at || f == self.holds_for
    }
}

/// The outcome of validating an event description's clauses.
#[derive(Clone, Debug, Default)]
pub struct ValidatedRules {
    /// Simple-fluent rules (initiations and terminations).
    pub simple: Vec<SimpleRule>,
    /// Statically-determined-fluent rules.
    pub statics: Vec<StaticRule>,
    /// Ground background facts.
    pub facts: Vec<Term>,
    /// Findings, including which clauses were rejected.
    pub report: ValidationReport,
}

/// Validates all clauses; rejected clauses are reported but the remainder
/// is still compiled (lenient by design — see module docs).
pub fn validate(clauses: &[Clause], symbols: &mut SymbolTable) -> ValidatedRules {
    let sys = SysSymbols::intern(symbols);
    let mut out = ValidatedRules::default();
    for (idx, clause) in clauses.iter().enumerate() {
        validate_clause(idx, clause, &sys, symbols, &mut out);
    }
    out
}

fn validate_clause(
    idx: usize,
    clause: &Clause,
    sys: &SysSymbols,
    symbols: &SymbolTable,
    out: &mut ValidatedRules,
) {
    let head_functor = clause.head.functor();
    if clause.body.is_empty() {
        // A fact. Reserved heads make no sense as facts.
        if let Some(f) = head_functor {
            if sys.is_rule_head(f) || f == sys.happens_at || f == sys.holds_at {
                out.report.push(
                    Severity::Error,
                    idx,
                    format!(
                        "'{}' may not appear as a fact in an event description",
                        symbols.name(f)
                    ),
                );
                return;
            }
        }
        if !clause.head.is_ground() {
            out.report.push(
                Severity::Error,
                idx,
                "background facts must be ground".to_string(),
            );
            return;
        }
        out.facts.push(clause.head.clone());
        return;
    }

    match head_functor {
        Some(f) if f == sys.initiated_at || f == sys.terminated_at => {
            validate_simple(idx, clause, f == sys.initiated_at, sys, symbols, out)
        }
        Some(f) if f == sys.holds_for => validate_static(idx, clause, sys, symbols, out),
        Some(f) => out.report.push(
            Severity::Error,
            idx,
            format!(
                "rule head must be initiatedAt, terminatedAt or holdsFor, found '{}'",
                symbols.name(f)
            ),
        ),
        None => out.report.push(
            Severity::Error,
            idx,
            "rule head must be a predicate".to_string(),
        ),
    }
}

/// Destructures `head = pred(F=V, TimeArg)`; reports and returns `None` on
/// shape violations.
fn head_fvp_and_arg(
    idx: usize,
    clause: &Clause,
    pred: &str,
    sys: &SysSymbols,
    out: &mut ValidatedRules,
) -> Option<(Fvp, Term)> {
    let args = clause.head.args();
    if args.len() != 2 {
        out.report.push(
            Severity::Error,
            idx,
            format!("{pred} must have exactly two arguments (F=V and a time/interval variable)"),
        );
        return None;
    }
    let Some(fvp) = Fvp::from_term(&args[0], sys.eq) else {
        out.report.push(
            Severity::Error,
            idx,
            format!("the first argument of {pred} must be a fluent-value pair F=V"),
        );
        return None;
    };
    if fvp.fluent.functor().is_none() {
        out.report.push(
            Severity::Error,
            idx,
            "the fluent of the head FVP must be an atom or compound term".to_string(),
        );
        return None;
    }
    Some((fvp, args[1].clone()))
}

fn validate_simple(
    idx: usize,
    clause: &Clause,
    initiated: bool,
    sys: &SysSymbols,
    symbols: &SymbolTable,
    out: &mut ValidatedRules,
) {
    let pred = if initiated {
        "initiatedAt"
    } else {
        "terminatedAt"
    };
    let Some((fvp, time_arg)) = head_fvp_and_arg(idx, clause, pred, sys, out) else {
        return;
    };
    let Term::Var(time_var) = time_arg else {
        out.report.push(
            Severity::Error,
            idx,
            format!("the second argument of {pred} must be a time variable"),
        );
        return;
    };

    let mut body = Vec::with_capacity(clause.body.len());
    for (li, lit) in clause.body.iter().enumerate() {
        let (negated, inner) = strip_not(lit, sys);
        match classify_literal(inner, sys) {
            LiteralShape::HappensAt(event, time) => {
                if time != Term::Var(time_var) {
                    out.report.push(
                        Severity::Error,
                        idx,
                        format!(
                            "happensAt literal {} must be evaluated at the head's time variable",
                            li + 1
                        ),
                    );
                    return;
                }
                if li == 0 && negated {
                    out.report.push(
                        Severity::Error,
                        idx,
                        "the first body literal must be a positive happensAt (Definition 2.2)"
                            .to_string(),
                    );
                    return;
                }
                if event.functor().is_none() {
                    out.report.push(
                        Severity::Error,
                        idx,
                        "happensAt takes an event atom or compound term".to_string(),
                    );
                    return;
                }
                body.push(BodyLiteral::HappensAt { negated, event });
            }
            LiteralShape::HoldsAt(inner_fvp, time) => {
                if li == 0 {
                    out.report.push(
                        Severity::Error,
                        idx,
                        "the first body literal must be a positive happensAt (Definition 2.2)"
                            .to_string(),
                    );
                    return;
                }
                if time != Term::Var(time_var) {
                    out.report.push(
                        Severity::Error,
                        idx,
                        format!(
                            "holdsAt literal {} must be evaluated at the head's time variable",
                            li + 1
                        ),
                    );
                    return;
                }
                body.push(BodyLiteral::HoldsAt {
                    negated,
                    fvp: inner_fvp,
                });
            }
            LiteralShape::HoldsFor(..) => {
                out.report.push(
                    Severity::Error,
                    idx,
                    format!("holdsFor may not appear in the body of an {pred} rule"),
                );
                return;
            }
            LiteralShape::IntervalConstruct => {
                out.report.push(
                    Severity::Error,
                    idx,
                    format!("interval constructs may not appear in the body of an {pred} rule"),
                );
                return;
            }
            LiteralShape::Compare(op, lhs, rhs) => {
                if li == 0 {
                    out.report.push(
                        Severity::Error,
                        idx,
                        "the first body literal must be a positive happensAt (Definition 2.2)"
                            .to_string(),
                    );
                    return;
                }
                // `not (l op r)` compiles to the complementary operator:
                // these comparisons are total, so the rewrite is exact.
                let op = if negated { op.negate() } else { op };
                body.push(BodyLiteral::Compare { op, lhs, rhs });
            }
            LiteralShape::Atemporal(pattern) => {
                if li == 0 {
                    out.report.push(
                        Severity::Error,
                        idx,
                        "the first body literal must be a positive happensAt (Definition 2.2)"
                            .to_string(),
                    );
                    return;
                }
                if pattern.functor().is_none() {
                    out.report.push(
                        Severity::Error,
                        idx,
                        format!("body literal {} is not a predicate", li + 1),
                    );
                    return;
                }
                // The strict Definition 2.2 admits only happensAt/holdsAt
                // conditions; background lookups are an engine-supported
                // extension used by the paper's own rules (1) and (2).
                body.push(BodyLiteral::Atemporal { negated, pattern });
            }
            LiteralShape::Malformed(msg) => {
                out.report.push(
                    Severity::Error,
                    idx,
                    format!("body literal {}: {msg}", li + 1),
                );
                return;
            }
        }
    }

    let _ = symbols;
    out.simple.push(SimpleRule {
        kind: if initiated {
            SimpleKind::Initiated
        } else {
            SimpleKind::Terminated
        },
        fvp,
        time_var,
        body,
        clause: idx,
    });
}

fn validate_static(
    idx: usize,
    clause: &Clause,
    sys: &SysSymbols,
    symbols: &SymbolTable,
    out: &mut ValidatedRules,
) {
    let Some((fvp, out_arg)) = head_fvp_and_arg(idx, clause, "holdsFor", sys, out) else {
        return;
    };
    let Term::Var(out_var) = out_arg else {
        out.report.push(
            Severity::Error,
            idx,
            "the second argument of holdsFor must be an interval variable".to_string(),
        );
        return;
    };

    let mut body = Vec::with_capacity(clause.body.len());
    let mut defined_vars: Vec<Symbol> = Vec::new();
    for (li, lit) in clause.body.iter().enumerate() {
        let (negated, inner) = strip_not(lit, sys);
        match classify_literal(inner, sys) {
            LiteralShape::HoldsFor(inner_fvp, ivar_term) => {
                if negated {
                    out.report.push(
                        Severity::Error,
                        idx,
                        "holdsFor conditions may not be negated (Definition 2.4)".to_string(),
                    );
                    return;
                }
                let Term::Var(ivar) = ivar_term else {
                    out.report.push(
                        Severity::Error,
                        idx,
                        format!(
                            "the second argument of holdsFor in body literal {} must be a variable",
                            li + 1
                        ),
                    );
                    return;
                };
                if defined_vars.contains(&ivar) {
                    out.report.push(
                        Severity::Error,
                        idx,
                        format!(
                            "interval variable '{}' is defined more than once",
                            symbols.name(ivar)
                        ),
                    );
                    return;
                }
                if inner_fvp == fvp {
                    out.report.push(
                        Severity::Error,
                        idx,
                        "a holdsFor rule may not reference its own head FVP (Definition 2.4)"
                            .to_string(),
                    );
                    return;
                }
                defined_vars.push(ivar);
                body.push(StaticLiteral::HoldsFor {
                    fvp: inner_fvp,
                    out: ivar,
                });
            }
            LiteralShape::IntervalConstruct => {
                match parse_interval_construct(inner, sys, &defined_vars, symbols) {
                    Ok((lit, ivar)) => {
                        if defined_vars.contains(&ivar) {
                            out.report.push(
                                Severity::Error,
                                idx,
                                format!(
                                    "interval variable '{}' is defined more than once",
                                    symbols.name(ivar)
                                ),
                            );
                            return;
                        }
                        defined_vars.push(ivar);
                        body.push(lit);
                    }
                    Err(msg) => {
                        out.report.push(
                            Severity::Error,
                            idx,
                            format!("body literal {}: {msg}", li + 1),
                        );
                        return;
                    }
                }
            }
            LiteralShape::HappensAt(..) | LiteralShape::HoldsAt(..) => {
                out.report.push(
                    Severity::Error,
                    idx,
                    "happensAt/holdsAt may not appear in the body of a holdsFor rule \
                     (Definition 2.4)"
                        .to_string(),
                );
                return;
            }
            LiteralShape::Compare(op, lhs, rhs) => {
                let op = if negated { op.negate() } else { op };
                body.push(StaticLiteral::Compare { op, lhs, rhs });
            }
            LiteralShape::Atemporal(pattern) => {
                if pattern.functor().is_none() {
                    out.report.push(
                        Severity::Error,
                        idx,
                        format!("body literal {} is not a predicate", li + 1),
                    );
                    return;
                }
                body.push(StaticLiteral::Atemporal { negated, pattern });
            }
            LiteralShape::Malformed(msg) => {
                out.report.push(
                    Severity::Error,
                    idx,
                    format!("body literal {}: {msg}", li + 1),
                );
                return;
            }
        }
    }

    if !matches!(body.first(), Some(StaticLiteral::HoldsFor { .. })) {
        out.report.push(
            Severity::Warning,
            idx,
            "the first body literal of a holdsFor rule should be a holdsFor condition \
             (Definition 2.4)"
                .to_string(),
        );
    }
    if !defined_vars.contains(&out_var) {
        out.report.push(
            Severity::Error,
            idx,
            format!(
                "the head's interval variable '{}' is never produced by the body",
                symbols.name(out_var)
            ),
        );
        return;
    }

    out.statics.push(StaticRule {
        fvp,
        out: out_var,
        body,
        clause: idx,
    });
}

/// Peels a `not(...)` wrapper (possibly doubled) off a literal.
fn strip_not<'a>(lit: &'a Term, sys: &SysSymbols) -> (bool, &'a Term) {
    let mut negated = false;
    let mut cur = lit;
    while let Term::Compound(f, args) = cur {
        if *f == sys.not && args.len() == 1 {
            negated = !negated;
            cur = &args[0];
        } else {
            break;
        }
    }
    (negated, cur)
}

enum LiteralShape {
    HappensAt(Term, Term),
    HoldsAt(Fvp, Term),
    HoldsFor(Fvp, Term),
    IntervalConstruct,
    Compare(CmpOp, Term, Term),
    Atemporal(Term),
    Malformed(String),
}

fn classify_literal(lit: &Term, sys: &SysSymbols) -> LiteralShape {
    let Some(f) = lit.functor() else {
        return LiteralShape::Malformed("not a predicate".to_string());
    };
    let args = lit.args();
    if f == sys.happens_at {
        if args.len() != 2 {
            return LiteralShape::Malformed("happensAt must have two arguments".to_string());
        }
        return LiteralShape::HappensAt(args[0].clone(), args[1].clone());
    }
    if f == sys.holds_at {
        if args.len() != 2 {
            return LiteralShape::Malformed("holdsAt must have two arguments".to_string());
        }
        let Some(fvp) = Fvp::from_term(&args[0], sys.eq) else {
            return LiteralShape::Malformed(
                "the first argument of holdsAt must be a fluent-value pair F=V".to_string(),
            );
        };
        return LiteralShape::HoldsAt(fvp, args[1].clone());
    }
    if f == sys.holds_for {
        if args.len() != 2 {
            return LiteralShape::Malformed("holdsFor must have two arguments".to_string());
        }
        let Some(fvp) = Fvp::from_term(&args[0], sys.eq) else {
            return LiteralShape::Malformed(
                "the first argument of holdsFor must be a fluent-value pair F=V".to_string(),
            );
        };
        return LiteralShape::HoldsFor(fvp, args[1].clone());
    }
    if f == sys.union_all || f == sys.intersect_all || f == sys.relative_complement_all {
        return LiteralShape::IntervalConstruct;
    }
    // `=` between two terms is a comparison; so are the arithmetic
    // relations.
    if args.len() == 2 {
        if let Some(op) = sys.cmp_op(f) {
            return LiteralShape::Compare(op, args[0].clone(), args[1].clone());
        }
    }
    LiteralShape::Atemporal(lit.clone())
}

/// Parses `union_all/2`, `intersect_all/2` or `relative_complement_all/3`.
fn parse_interval_construct(
    lit: &Term,
    sys: &SysSymbols,
    defined: &[Symbol],
    symbols: &SymbolTable,
) -> Result<(StaticLiteral, Symbol), String> {
    let f = lit.functor().expect("caller checked functor");
    let args = lit.args();
    let var_list = |t: &Term| -> Result<Vec<Symbol>, String> {
        let Term::List(items) = t else {
            return Err("expected a list of interval variables".to_string());
        };
        items
            .iter()
            .map(|i| match i {
                Term::Var(v) if defined.contains(v) => Ok(*v),
                Term::Var(v) => Err(format!(
                    "interval variable '{}' is used before being defined",
                    symbols.name(*v)
                )),
                _ => Err("list elements must be interval variables".to_string()),
            })
            .collect()
    };
    let out_var = |t: &Term| -> Result<Symbol, String> {
        match t {
            Term::Var(v) => Ok(*v),
            _ => Err("the output argument must be a variable".to_string()),
        }
    };
    if f == sys.union_all || f == sys.intersect_all {
        if args.len() != 2 {
            return Err(format!("{} must have two arguments", symbols.name(f)));
        }
        let inputs = var_list(&args[0])?;
        let out = out_var(&args[1])?;
        let lit = if f == sys.union_all {
            StaticLiteral::Union { inputs, out }
        } else {
            StaticLiteral::Intersect { inputs, out }
        };
        Ok((lit, out))
    } else {
        if args.len() != 3 {
            return Err("relative_complement_all must have three arguments".to_string());
        }
        let base = match &args[0] {
            Term::Var(v) if defined.contains(v) => *v,
            Term::Var(v) => {
                return Err(format!(
                    "interval variable '{}' is used before being defined",
                    symbols.name(*v)
                ))
            }
            _ => return Err("the first argument must be an interval variable".to_string()),
        };
        let subtract = var_list(&args[1])?;
        let out = out_var(&args[2])?;
        Ok((
            StaticLiteral::RelComplement {
                base,
                subtract,
                out,
            },
            out,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str) -> (ValidatedRules, SymbolTable) {
        let mut sym = SymbolTable::new();
        let clauses = parse_program(src, &mut sym).unwrap();
        let v = validate(&clauses, &mut sym);
        (v, sym)
    }

    #[test]
    fn classifies_fact_simple_and_static() {
        let (v, _) = run("areaType(a1, fishing).\n\
             initiatedAt(f(V)=true, T) :- happensAt(e(V), T).\n\
             holdsFor(g(V)=true, I) :- holdsFor(f(V)=true, I1), union_all([I1], I).");
        assert_eq!(v.facts.len(), 1);
        assert_eq!(v.simple.len(), 1);
        assert_eq!(v.statics.len(), 1);
        assert!(!v.report.has_errors());
    }

    #[test]
    fn warns_on_non_holdsfor_first_literal_but_keeps_the_rule() {
        // Definition 2.4 wants an interval source first; violating that
        // is a style warning, not an error — the rule is still compiled.
        let (v, _) = run("holdsFor(g(V)=true, I) :-\n\
                 areaType(V, fishing),\n\
                 holdsFor(f(V)=true, I1),\n\
                 union_all([I1], I).");
        assert_eq!(v.statics.len(), 1, "warned rule must survive");
        assert!(!v.report.has_errors());
        let warnings: Vec<&crate::error::Issue> = v.report.warnings().collect();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].severity, Severity::Warning);
        assert!(warnings[0]
            .message
            .contains("first body literal of a holdsFor rule should be a holdsFor condition"));
        // The Display form names the clause for error reporting.
        assert!(format!("{}", warnings[0]).contains("warning"));
    }

    #[test]
    fn holdsfor_first_literal_warning_does_not_fire_on_conforming_rules() {
        let (v, _) = run("holdsFor(g(V)=true, I) :-\n\
                 holdsFor(f(V)=true, I1),\n\
                 union_all([I1], I).");
        assert_eq!(v.statics.len(), 1);
        assert_eq!(v.report.warnings().count(), 0);
    }

    #[test]
    fn warned_rules_still_evaluate() {
        // A description whose only static rule draws the style warning
        // still recognises its activity end to end.
        let src = "initiatedAt(f(V)=true, T) :- happensAt(up(V), T).\n\
                   terminatedAt(f(V)=true, T) :- happensAt(down(V), T).\n\
                   holdsFor(g(V)=true, I) :-\n\
                       areaType(V, fishing),\n\
                       holdsFor(f(V)=true, I1),\n\
                       union_all([I1], I).\n\
                   areaType(a, fishing).";
        let desc = crate::description::EventDescription::parse(src).unwrap();
        let compiled = desc.compile().unwrap();
        assert_eq!(compiled.report.warnings().count(), 1);
        assert!(!compiled.report.has_errors());
    }

    #[test]
    fn rejects_non_happensat_first_literal() {
        let (v, _) = run("initiatedAt(f(V)=true, T) :- holdsAt(g(V)=true, T).");
        assert!(v.report.has_errors());
        assert!(v.simple.is_empty());
    }

    #[test]
    fn rejects_negated_first_literal() {
        let (v, _) = run("initiatedAt(f(V)=true, T) :- not happensAt(e(V), T).");
        assert!(v.report.has_errors());
    }

    #[test]
    fn rejects_missing_fvp_in_head() {
        let (v, _) = run("initiatedAt(f(V), T) :- happensAt(e(V), T).");
        assert!(v.report.has_errors());
        assert!(v.simple.is_empty());
    }

    #[test]
    fn accepts_background_conditions_in_simple_rule() {
        let (v, _) = run("initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
             happensAt(entersArea(Vl, AreaId), T), areaType(AreaId, AreaType).");
        assert!(!v.report.has_errors());
        assert_eq!(v.simple.len(), 1);
        assert_eq!(v.simple[0].body.len(), 2);
        assert!(matches!(
            v.simple[0].body[1],
            BodyLiteral::Atemporal { negated: false, .. }
        ));
    }

    #[test]
    fn accepts_comparisons() {
        let (v, _) = run("initiatedAt(fast(V)=true, T) :- \
             happensAt(velocity(V, S), T), thresholds(max, M), S > M.");
        assert!(!v.report.has_errors());
        // S > M must become a Compare literal, not an atemporal lookup.
        assert!(matches!(
            v.simple[0].body[2],
            BodyLiteral::Compare { op: CmpOp::Gt, .. }
        ));
    }

    #[test]
    fn negated_comparison_inverts_operator() {
        let (v, _) = run("initiatedAt(slow(V)=true, T) :- \
             happensAt(velocity(V, S), T), not S > 5.");
        assert!(!v.report.has_errors());
        assert!(matches!(
            v.simple[0].body[1],
            BodyLiteral::Compare { op: CmpOp::Le, .. }
        ));
        let (vs, _) = run("holdsFor(g(V)=true, I) :- \
             holdsFor(f(V)=true, I1), vesselType(V, X), not X \\= tug, union_all([I1], I).");
        assert!(!vs.report.has_errors());
        assert!(matches!(
            vs.statics[0].body[2],
            StaticLiteral::Compare { op: CmpOp::Eq, .. }
        ));
    }

    #[test]
    fn static_rule_requires_defined_output() {
        let (v, _) = run("holdsFor(g(V)=true, I) :- holdsFor(f(V)=true, I1).");
        assert!(v.report.has_errors());
        assert!(v.statics.is_empty());
    }

    #[test]
    fn static_rule_rejects_use_before_definition() {
        let (v, _) = run("holdsFor(g(V)=true, I) :- \
             holdsFor(f(V)=true, I1), union_all([I1, I2], I).");
        assert!(v.report.has_errors());
    }

    #[test]
    fn static_rule_rejects_self_reference() {
        let (v, _) = run("holdsFor(g(V)=true, I) :- holdsFor(g(V)=true, I1), union_all([I1], I).");
        assert!(v.report.has_errors());
    }

    #[test]
    fn static_rule_warns_on_non_holdsfor_first_literal() {
        let (v, _) = run("holdsFor(g(V)=true, I) :- \
             vesselType(V, tug), holdsFor(f(V)=true, I1), union_all([I1], I).");
        assert!(!v.report.has_errors());
        assert_eq!(v.report.warnings().count(), 1);
        assert_eq!(v.statics.len(), 1);
    }

    #[test]
    fn rejects_happensat_inside_holdsfor() {
        let (v, _) = run("holdsFor(g(V)=true, I) :- \
             happensAt(e(V), T), holdsFor(f(V)=true, I1), union_all([I1], I).");
        assert!(v.report.has_errors());
    }

    #[test]
    fn rejects_unknown_head() {
        let (v, _) = run("definedBy(f(V), x) :- happensAt(e(V), T).");
        assert!(v.report.has_errors());
    }

    #[test]
    fn rejects_nonground_fact() {
        let (v, _) = run("areaType(A, fishing).");
        assert!(v.report.has_errors());
        assert!(v.facts.is_empty());
    }

    #[test]
    fn relative_complement_parses() {
        let (v, _) = run("holdsFor(g(V)=true, I) :- \
             holdsFor(a(V)=true, I1), holdsFor(b(V)=true, I2), \
             relative_complement_all(I1, [I2], I).");
        assert!(!v.report.has_errors());
        assert!(matches!(
            v.statics[0].body[2],
            StaticLiteral::RelComplement { .. }
        ));
    }

    #[test]
    fn time_variable_mismatch_rejected() {
        let (v, _) = run("initiatedAt(f(V)=true, T) :- happensAt(e(V), T2).");
        assert!(v.report.has_errors());
    }
}
