//! Engine-side per-rule profiling.
//!
//! The data model ([`rtec_obs::profile`]) is string-keyed and
//! engine-agnostic; this module supplies the engine-facing pieces:
//!
//! * a thread-local interval-algebra op counter, bumped by the three
//!   primitive operations in [`crate::interval`] alongside their global
//!   metrics, so an evaluator can attribute ops to the rule it is
//!   currently running by snapshotting the counter around the call
//!   (each shard worker evaluates on its own thread, so the counter
//!   never mixes rules across engines);
//! * [`EngineProfiler`], the per-engine accumulator holding the
//!   session-lifetime [`ProfileAggregate`], the most recent window's
//!   trace, and a fluent-key → `functor/arity` name cache.
//!
//! Profiling is off by default and costs nothing when disabled (the
//! thread-local counter is a single `Cell` add on paths that already
//! do an atomic metric increment). When enabled it adds two `Instant`
//! reads and one `Vec` push per stratum per window — cheap enough to
//! leave on in production, and it never touches recognition state, so
//! output (intervals, warnings, checkpoint bytes) is identical either
//! way.

use crate::ast::FluentKey;
use crate::symbol::SymbolTable;
use rtec_obs::profile::{ProfileAggregate, WindowProfile};
use std::cell::Cell;
use std::collections::HashMap;

thread_local! {
    static INTERVAL_OPS: Cell<u64> = const { Cell::new(0) };
}

/// Bumps the current thread's interval-algebra op counter (called by
/// the three primitive ops in [`crate::interval`]).
pub(crate) fn count_interval_op() {
    INTERVAL_OPS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// The current thread's cumulative interval-algebra primitive op count
/// (union / intersect / complement executions since the thread
/// started). Evaluators snapshot this before and after a rule to
/// attribute the delta.
pub fn interval_ops() -> u64 {
    INTERVAL_OPS.with(Cell::get)
}

/// Renders the conventional profile name of a fluent key:
/// `functor/arity`.
pub fn rule_name(symbols: &SymbolTable, key: FluentKey) -> String {
    match symbols.try_name(key.0) {
        Some(name) => format!("{name}/{}", key.1),
        None => format!("?{}/{}", key.0.index(), key.1),
    }
}

/// Per-engine profiling state: lifetime aggregate, last window trace,
/// and a name cache so the hot path never re-renders symbols.
#[derive(Debug, Default)]
pub struct EngineProfiler {
    aggregate: ProfileAggregate,
    last_window: Option<WindowProfile>,
    names: HashMap<FluentKey, String>,
}

impl EngineProfiler {
    /// A fresh profiler with nothing attributed.
    pub fn new() -> EngineProfiler {
        EngineProfiler::default()
    }

    /// The session-lifetime per-rule totals.
    pub fn aggregate(&self) -> &ProfileAggregate {
        &self.aggregate
    }

    /// The most recent window's trace, if one was evaluated since the
    /// last [`EngineProfiler::take_last_window`].
    pub fn last_window(&self) -> Option<&WindowProfile> {
        self.last_window.as_ref()
    }

    /// Takes the most recent window's trace (used by the service's
    /// flight recorder).
    pub fn take_last_window(&mut self) -> Option<WindowProfile> {
        self.last_window.take()
    }

    /// The cached `functor/arity` name of `key`.
    pub(crate) fn name_of(&mut self, symbols: &SymbolTable, key: FluentKey) -> String {
        self.names
            .entry(key)
            .or_insert_with(|| rule_name(symbols, key))
            .clone()
    }

    /// Folds a completed window's trace into the aggregate and retains
    /// it as the last window.
    pub(crate) fn finish_window(&mut self, window: WindowProfile) {
        self.aggregate.absorb_window(&window);
        self.last_window = Some(window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_ops_counter_is_monotonic_per_thread() {
        let before = interval_ops();
        count_interval_op();
        count_interval_op();
        assert_eq!(interval_ops(), before + 2);
        // Another thread starts from its own counter, unaffected by ours.
        let theirs = std::thread::spawn(|| {
            let start = interval_ops();
            count_interval_op();
            interval_ops() - start
        })
        .join()
        .unwrap();
        assert_eq!(theirs, 1);
        assert_eq!(interval_ops(), before + 2);
    }
}
