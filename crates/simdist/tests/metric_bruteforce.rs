//! Brute-force and axiom checks for the similarity metric.
//!
//! Two families of randomized tests, both deterministic under fixed
//! seeds:
//!
//! * the Kuhn–Munkres assignment is compared against the exhaustive
//!   permutation minimum ([`hungarian::assignment_naive`]) on random
//!   cost matrices up to 6x6, including tie-heavy matrices drawn from
//!   a tiny value grid;
//! * every distance layer (ground expressions, expression sets, rules,
//!   descriptions) is checked for the metric axioms the paper relies
//!   on: symmetry, identity of indiscernibles, the `[0, 1]` range, and
//!   invariance under reordering of matched sets.
//!
//! Generated floats are chosen so they never collide with generated
//! integers; with that, `ground_distance(a, b) == 0` holds exactly when
//! the terms are structurally equal, so the indiscernibility direction
//! can be asserted both ways.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtec::ast::Clause;
use rtec::parser::parse_program;
use rtec::{SymbolTable, Term};
use simdist::hungarian::{assignment, assignment_naive};
use simdist::{description_distance, ground_distance, set_distance};

const EPS: f64 = 1e-9;

// ---------------------------------------------------------------------
// Kuhn–Munkres vs exhaustive permutations
// ---------------------------------------------------------------------

/// The returned assignment must be a permutation whose summed cost is
/// the returned total; the total must equal the exhaustive minimum.
fn check_matrix(cost: &[Vec<f64>]) {
    let n = cost.len();
    let (perm, fast) = assignment(cost);
    assert_eq!(perm.len(), n, "assignment length: {cost:?}");
    let mut seen = vec![false; n];
    let mut summed = 0.0;
    for (row, &col) in perm.iter().enumerate() {
        assert!(col < n && !seen[col], "not a permutation: {perm:?}");
        seen[col] = true;
        summed += cost[row][col];
    }
    assert!(
        (summed - fast).abs() < EPS,
        "total {fast} != summed {summed}: {cost:?}"
    );
    let slow = assignment_naive(cost);
    assert!(
        (fast - slow).abs() < EPS,
        "kuhn-munkres {fast} != brute force {slow}: {cost:?}"
    );
}

#[test]
fn assignment_matches_bruteforce_on_random_matrices() {
    let mut rng = StdRng::seed_from_u64(0x5e7_d157);
    for n in 1..=6 {
        for _ in 0..60 {
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen::<f64>()).collect())
                .collect();
            check_matrix(&cost);
        }
    }
}

#[test]
fn assignment_matches_bruteforce_on_tie_heavy_matrices() {
    // Distances in practice are quantised (0, fractions with small
    // denominators, 1), so degenerate ties are the common case, and
    // they are where a broken augmenting-path search goes wrong.
    let grid = [0.0, 0.25, 0.5, 1.0];
    let mut rng = StdRng::seed_from_u64(0xdead_11e5);
    for n in 2..=6 {
        for _ in 0..60 {
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| grid[rng.gen_range(0..grid.len())]).collect())
                .collect();
            check_matrix(&cost);
        }
    }
}

// ---------------------------------------------------------------------
// Random ground terms
// ---------------------------------------------------------------------

const ATOMS: [&str; 5] = ["a", "b", "fishing", "stopped", "nearPort"];
const FUNCTORS: [&str; 4] = ["f", "g", "velocity", "coord"];
// No float ever equals a generated integer, so value equality between
// mixed numerics cannot make structurally different terms indiscernible.
const FLOATS: [f64; 4] = [-0.75, 1.5, 2.5, 19.5];

fn gen_ground_term(rng: &mut StdRng, syms: &mut SymbolTable, depth: usize) -> Term {
    let top = if depth == 0 { 3 } else { 5 };
    match rng.gen_range(0..top) {
        0 => Term::Atom(syms.intern(ATOMS[rng.gen_range(0..ATOMS.len())])),
        1 => Term::Int(rng.gen_range(-5i64..20)),
        2 => Term::Float(FLOATS[rng.gen_range(0..FLOATS.len())]),
        3 => {
            let f = syms.intern(FUNCTORS[rng.gen_range(0..FUNCTORS.len())]);
            let args = (0..rng.gen_range(1usize..4))
                .map(|_| gen_ground_term(rng, syms, depth - 1))
                .collect();
            Term::Compound(f, args)
        }
        _ => Term::List(
            (0..rng.gen_range(0usize..4))
                .map(|_| gen_ground_term(rng, syms, depth - 1))
                .collect(),
        ),
    }
}

fn gen_term_set(rng: &mut StdRng, syms: &mut SymbolTable, max_len: usize) -> Vec<Term> {
    (0..rng.gen_range(0..=max_len))
        .map(|_| gen_ground_term(rng, syms, 2))
        .collect()
}

#[test]
fn ground_distance_axioms() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut syms = SymbolTable::new();
    for _ in 0..500 {
        let a = gen_ground_term(&mut rng, &mut syms, 3);
        let b = gen_ground_term(&mut rng, &mut syms, 3);
        let d = ground_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d), "range: {a:?} {b:?} -> {d}");
        let back = ground_distance(&b, &a);
        assert!((d - back).abs() < EPS, "symmetry: {a:?} {b:?}");
        assert_eq!(ground_distance(&a, &a), 0.0, "identity: {a:?}");
        // Indiscernibility both ways (floats never collide with ints).
        assert_eq!(d == 0.0, a == b, "indiscernibles: {a:?} {b:?} -> {d}");
    }
}

#[test]
fn set_distance_axioms() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut syms = SymbolTable::new();
    for _ in 0..200 {
        let a = gen_term_set(&mut rng, &mut syms, 6);
        let b = gen_term_set(&mut rng, &mut syms, 6);
        let d = set_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d), "range: {a:?} {b:?} -> {d}");
        let back = set_distance(&b, &a);
        assert!((d - back).abs() < EPS, "symmetry: {a:?} {b:?}");
        assert!(set_distance(&a, &a).abs() < EPS, "identity: {a:?}");
        // Matching-based, so reordering either side changes nothing.
        let mut shuffled = a.clone();
        shuffled.reverse();
        let reordered = set_distance(&shuffled, &b);
        assert!((d - reordered).abs() < EPS, "order: {a:?} {b:?}");
    }
}

// ---------------------------------------------------------------------
// Rules and descriptions
// ---------------------------------------------------------------------

/// A pool of clauses with shared predicates, differing heads, bodies,
/// variable roles, and arities — parsed into one symbol table so the
/// distances compare symbols meaningfully.
fn clause_pool(syms: &mut SymbolTable) -> Vec<Clause> {
    let src = "
        initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
        initiatedAt(on(X)=true, T) :- happensAt(up(X), T), holdsAt(powered(X)=true, T).
        initiatedAt(on(Y)=true, T) :- happensAt(toggle(Y), T).
        terminatedAt(on(X)=true, T) :- happensAt(down(X), T).
        terminatedAt(on(X)=true, T) :- happensAt(reset, T).
        initiatedAt(moving(V)=true, T) :- happensAt(velocity(V, S), T), S > 5.
        initiatedAt(moving(V)=true, T) :- happensAt(velocity(V, S), T), S > 2, holdsAt(on(V)=true, T).
        terminatedAt(moving(V)=true, T) :- happensAt(velocity(V, 0), T).
        initiatedAt(near(A, B)=true, T) :- happensAt(coord(A, X1, Y1), T), happensAt(coord(B, X1, Y1), T).
        terminatedAt(near(A, B)=true, T) :- happensAt(gone(A), T).
    ";
    parse_program(src, syms).expect("pool parses")
}

fn gen_description(rng: &mut StdRng, pool: &[Clause], max_len: usize) -> Vec<Clause> {
    (0..rng.gen_range(0..=max_len))
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

#[test]
fn rule_distance_axioms() {
    let mut syms = SymbolTable::new();
    let pool = clause_pool(&mut syms);
    for r1 in &pool {
        assert!(
            simdist::rule::rule_distance(r1, r1).abs() < EPS,
            "identity: {r1:?}"
        );
        for r2 in &pool {
            let d = simdist::rule::rule_distance(r1, r2);
            assert!((0.0..=1.0).contains(&d), "range: {r1:?} {r2:?} -> {d}");
            let back = simdist::rule::rule_distance(r2, r1);
            assert!((d - back).abs() < EPS, "symmetry: {r1:?} {r2:?}");
        }
    }
}

#[test]
fn description_distance_axioms() {
    let mut rng = StdRng::seed_from_u64(43);
    let mut syms = SymbolTable::new();
    let pool = clause_pool(&mut syms);
    for _ in 0..120 {
        let a = gen_description(&mut rng, &pool, 6);
        let b = gen_description(&mut rng, &pool, 6);
        let d = description_distance(&a, &b);
        assert!((0.0..=1.0).contains(&d), "range -> {d}");
        let back = description_distance(&b, &a);
        assert!((d - back).abs() < EPS, "symmetry");
        assert!(description_distance(&a, &a).abs() < EPS, "identity");
        let mut shuffled = a.clone();
        shuffled.reverse();
        let reordered = description_distance(&shuffled, &b);
        assert!((d - reordered).abs() < EPS, "order invariance");
    }
}
