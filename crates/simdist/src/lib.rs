//! # simdist — similarity metric for RTEC event descriptions
//!
//! Implements Section 4 of *Generating Activity Definitions with Large
//! Language Models* (EDBT 2025): a quantitative measure of how close an
//! LLM-generated event description is to a hand-crafted gold standard,
//! reflecting the human effort required to correct it.
//!
//! The metric is built in four layers, each following the paper's
//! definitions to the letter:
//!
//! 1. [`ground::ground_distance`] — distance between ground expressions
//!    (Definition 4.1, after Nienhuys-Cheng);
//! 2. [`ground::set_distance`] — distance between *sets* of ground
//!    expressions via a cost matrix (Definition 4.3) and an optimal
//!    matching computed with the Kuhn–Munkres algorithm
//!    ([`hungarian::assignment`], Definition 4.5);
//! 3. [`rule::rule_distance`] — distance between rules (Definition 4.12),
//!    comparing heads to heads and optimally matching bodies, with
//!    variables compared by their *instance lists* — the paths at which
//!    they occur in the rule's expression trees (Definitions 4.7–4.11);
//! 4. [`description::description_distance`] — distance between event
//!    descriptions (Definition 4.14): an optimal matching of their rules.
//!
//! Every worked example of the paper (Examples 4.2, 4.4, 4.6, 4.13) is
//! reproduced as a unit test with the exact published value.
//!
//! ```
//! use rtec::EventDescription;
//! use simdist::compare_descriptions;
//!
//! let gold = EventDescription::parse(
//!     "initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
//!          happensAt(entersArea(Vl, AreaId), T), areaType(AreaId, AreaType).",
//! )
//! .unwrap();
//! // Identical up to variable renaming => similarity 1.
//! let renamed = EventDescription::parse(
//!     "initiatedAt(withinArea(V, Kind)=true, T) :- \
//!          happensAt(entersArea(V, Area), T), areaType(Area, Kind).",
//! )
//! .unwrap();
//! assert!((compare_descriptions(&gold, &renamed).similarity - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod description;
pub mod explain;
pub mod ground;
pub mod hungarian;
pub mod rule;
pub mod tree;

pub use description::{
    compare_descriptions, description_distance, description_similarity, DescriptionComparison,
};
pub use explain::{explain, Explanation};
pub use ground::{ground_distance, set_distance, set_similarity};
pub use hungarian::assignment;
pub use rule::rule_distance;
