//! Distance between event descriptions (Definition 4.14 of the paper),
//! plus a convenience comparison that handles descriptions parsed into
//! different symbol tables.

use crate::hungarian::assignment;
use crate::rule::rule_distance_with;
use crate::tree::VarInstances;
use rtec::ast::Clause;
use rtec::term::translate;
use rtec::{EventDescription, SymbolTable, Term};

/// Distance between two event descriptions given as clause sets sharing a
/// symbol table (Definition 4.14):
///
/// `D(KB1, KB2) = ((M - K) + min-matching-cost) / M`, `M >= K`,
///
/// where the matching minimises the summed rule distances
/// (Definition 4.12) and each unmatched rule is penalised by 1.
/// Symmetric; two empty descriptions have distance 0.
pub fn description_distance(a: &[Clause], b: &[Clause]) -> f64 {
    if a.len() < b.len() {
        return description_distance(b, a);
    }
    let m = a.len();
    let k = b.len();
    if m == 0 {
        return 0.0;
    }
    let cost = rule_cost_matrix(a, b);
    let (_, matched) = assignment(&cost);
    ((m - k) as f64 + matched) / m as f64
}

/// Builds the padded rule-distance cost matrix with the variable-instance
/// maps of every clause computed exactly once.
fn rule_cost_matrix(rows: &[Clause], cols: &[Clause]) -> Vec<Vec<f64>> {
    let vi_rows: Vec<VarInstances> = rows.iter().map(VarInstances::of_clause).collect();
    let vi_cols: Vec<VarInstances> = cols.iter().map(VarInstances::of_clause).collect();
    let m = rows.len();
    let k = cols.len();
    (0..m)
        .map(|i| {
            (0..m)
                .map(|j| {
                    if j < k {
                        rule_distance_with(&rows[i], &vi_rows[i], &cols[j], &vi_cols[j])
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

/// Similarity between two clause sets: `1 - distance`.
pub fn description_similarity(a: &[Clause], b: &[Clause]) -> f64 {
    1.0 - description_distance(a, b)
}

/// The result of comparing two event descriptions, including the optimal
/// rule matching for error analysis.
#[derive(Clone, Debug)]
pub struct DescriptionComparison {
    /// `D(KB1, KB2)` per Definition 4.14.
    pub distance: f64,
    /// `1 - distance`.
    pub similarity: f64,
    /// For each clause of the *first* description: the index of the clause
    /// of the second it was matched to (with the pair's rule distance), or
    /// `None` if it was left unmatched.
    pub matching: Vec<(usize, Option<(usize, f64)>)>,
    /// Indices of the second description's clauses left unmatched
    /// (non-empty only when it has more clauses than the first).
    pub unmatched_b: Vec<usize>,
}

/// Compares two event descriptions that may have been parsed separately
/// (e.g. the gold standard and an LLM-generated one): the second
/// description's clauses are re-interned into the first's symbol table and
/// Definition 4.14 is applied.
pub fn compare_descriptions(a: &EventDescription, b: &EventDescription) -> DescriptionComparison {
    let mut symbols = a.symbols.clone();
    let b_clauses: Vec<Clause> = b
        .clauses
        .iter()
        .map(|c| translate_clause(c, &b.symbols, &mut symbols))
        .collect();
    compare_clause_sets(&a.clauses, &b_clauses)
}

/// Core comparison over clause sets sharing a symbol table.
pub fn compare_clause_sets(a: &[Clause], b: &[Clause]) -> DescriptionComparison {
    if a.is_empty() && b.is_empty() {
        return DescriptionComparison {
            distance: 0.0,
            similarity: 1.0,
            matching: Vec::new(),
            unmatched_b: Vec::new(),
        };
    }
    // Build the padded square matrix with the larger set on the rows.
    let swapped = a.len() < b.len();
    let (rows, cols): (&[Clause], &[Clause]) = if swapped { (b, a) } else { (a, b) };
    let m = rows.len();
    let k = cols.len();
    let cost = rule_cost_matrix(rows, cols);
    let (assign, matched_cost) = assignment(&cost);
    let distance = ((m - k) as f64 + matched_cost) / m as f64;

    // Recover the matching in terms of (a index, b index).
    let mut matching: Vec<(usize, Option<(usize, f64)>)> = Vec::new();
    let mut unmatched_b: Vec<usize> = Vec::new();
    if !swapped {
        for (i, &j) in assign.iter().enumerate() {
            if j < k {
                matching.push((i, Some((j, cost[i][j]))));
            } else {
                matching.push((i, None));
            }
        }
    } else {
        // rows = b, cols = a: invert.
        let mut by_a: Vec<Option<(usize, f64)>> = vec![None; k];
        for (bi, &j) in assign.iter().enumerate() {
            if j < k {
                by_a[j] = Some((bi, cost[bi][j]));
            } else {
                unmatched_b.push(bi);
            }
        }
        for (ai, m) in by_a.into_iter().enumerate() {
            matching.push((ai, m));
        }
    }
    DescriptionComparison {
        distance,
        similarity: 1.0 - distance,
        matching,
        unmatched_b,
    }
}

fn translate_clause(c: &Clause, from: &SymbolTable, to: &mut SymbolTable) -> Clause {
    Clause {
        head: translate(&c.head, from, to),
        body: c
            .body
            .iter()
            .map(|b| translate(b, from, to))
            .collect::<Vec<Term>>(),
        pos: c.pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(src: &str) -> EventDescription {
        EventDescription::parse(src).unwrap()
    }

    const GOLD: &str = "\
        initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
            happensAt(entersArea(Vl, AreaId), T), areaType(AreaId, AreaType).\n\
        terminatedAt(withinArea(Vl, AreaType)=true, T) :- \
            happensAt(leavesArea(Vl, AreaId), T), areaType(AreaId, AreaType).\n\
        terminatedAt(withinArea(Vl, AreaType)=true, T) :- \
            happensAt(gap_start(Vl), T).";

    #[test]
    fn identical_descriptions_have_similarity_one() {
        let a = desc(GOLD);
        let b = desc(GOLD);
        let c = compare_descriptions(&a, &b);
        assert!((c.similarity - 1.0).abs() < 1e-12);
        assert!(c.matching.iter().all(|(_, m)| m.is_some()));
    }

    #[test]
    fn renamed_variables_still_similarity_one() {
        let a = desc(GOLD);
        let b = desc(&GOLD.replace("Vl", "Vessel").replace("AreaId", "A"));
        let c = compare_descriptions(&a, &b);
        assert!((c.similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_rule_costs_one_over_m() {
        let a = desc(GOLD);
        // Drop the gap_start termination (one of three rules; GOLD is one
        // line per rule thanks to the backslash continuations).
        let partial: String = GOLD.lines().take(2).collect::<Vec<_>>().join("\n");
        let b = desc(&partial);
        let c = compare_descriptions(&a, &b);
        assert!((c.distance - 1.0 / 3.0).abs() < 1e-12, "d={}", c.distance);
        assert_eq!(c.matching.iter().filter(|(_, m)| m.is_none()).count(), 1);
    }

    #[test]
    fn renamed_event_costs_little() {
        let a = desc(GOLD);
        let b = desc(&GOLD.replace("entersArea", "inArea"));
        let c = compare_descriptions(&a, &b);
        assert!(c.similarity < 1.0);
        assert!(c.similarity > 0.8, "sim={}", c.similarity);
    }

    #[test]
    fn cross_table_comparison_matches_same_table() {
        // Parsing separately (different tables) must give the same value
        // as parsing from one source.
        let a = desc(GOLD);
        let b = desc(GOLD);
        let cross = compare_descriptions(&a, &b);
        assert!((cross.similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_sizes_are_symmetric_in_value() {
        let a = desc(GOLD);
        let partial: String = GOLD.lines().take(2).collect::<Vec<_>>().join("\n");
        let b = desc(&partial);
        let ab = compare_descriptions(&a, &b);
        let ba = compare_descriptions(&b, &a);
        assert!((ab.distance - ba.distance).abs() < 1e-12);
        // a has 3 rules, b has 2: from a's perspective one a-rule is
        // unmatched; from b's perspective one rule of the other side is.
        assert!(ab.unmatched_b.is_empty());
        assert_eq!(ba.unmatched_b.len(), 1);
        assert_eq!(ab.matching.iter().filter(|(_, m)| m.is_none()).count(), 1);
    }

    #[test]
    fn empty_vs_nonempty() {
        let a = desc(GOLD);
        let b = desc("");
        let c = compare_descriptions(&a, &b);
        assert_eq!(c.similarity, 0.0);
        let e = compare_descriptions(&b, &b);
        assert_eq!(e.similarity, 1.0);
    }

    #[test]
    fn completely_different_fluent_kind_scores_low() {
        // Simple vs statically determined definition of the same activity:
        // heads differ (initiatedAt vs holdsFor), body atoms differ.
        let a = desc(
            "holdsFor(trawling(V)=true, I) :- holdsFor(trawlSpeed(V)=true, I1), \
             holdsFor(trawlingMovement(V)=true, I2), intersect_all([I1, I2], I).",
        );
        let b = desc(
            "initiatedAt(trawling(V)=true, T) :- happensAt(change_in_heading(V), T).\n\
             terminatedAt(trawling(V)=true, T) :- happensAt(stop_start(V), T).",
        );
        let c = compare_descriptions(&a, &b);
        assert!(c.similarity < 0.35, "sim={}", c.similarity);
    }
}
