//! Kuhn–Munkres ("Hungarian") algorithm for the assignment problem.
//!
//! The similarity metric needs, at three levels (sets of expressions, rule
//! bodies, whole event descriptions), the mapping between two collections
//! that minimises the sum of pairwise distances. A naive search over the
//! `n!` mappings is hopeless; the paper (Section 4.1) uses Kuhn–Munkres,
//! which solves the problem in `O(n^3)` [Kuhn 1955]. This is the classic
//! potentials-and-augmenting-paths formulation, implemented from scratch.

/// Solves the square assignment problem for `cost` (minimisation).
///
/// `cost[i][j]` is the cost of assigning row `i` to column `j`. Returns
/// `(assignment, total)` where `assignment[i]` is the column matched to row
/// `i` and `total` the minimal cost sum.
///
/// # Panics
/// Panics if `cost` is empty or not square.
pub fn assignment(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    assert!(n > 0, "assignment on an empty matrix");
    assert!(
        cost.iter().all(|row| row.len() == n),
        "assignment requires a square matrix"
    );

    // 1-indexed potentials over rows (u) and columns (v); p[j] is the row
    // assigned to column j (0 = unassigned), way[j] the previous column on
    // the augmenting path.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            out[p[j] - 1] = j - 1;
        }
    }
    let total = out.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
    (out, total)
}

/// Brute-force reference (exponential); exposed for tests and benchmarks.
pub fn assignment_naive(cost: &[Vec<f64>]) -> f64 {
    let n = cost.len();
    let mut cols: Vec<usize> = (0..n).collect();
    let mut best = f64::INFINITY;
    permute(&mut cols, 0, cost, &mut best);
    best
}

fn permute(cols: &mut Vec<usize>, k: usize, cost: &[Vec<f64>], best: &mut f64) {
    let n = cols.len();
    if k == n {
        let total: f64 = (0..n).map(|i| cost[i][cols[i]]).sum();
        if total < *best {
            *best = total;
        }
        return;
    }
    for i in k..n {
        cols.swap(k, i);
        permute(cols, k + 1, cost, best);
        cols.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_one_by_one() {
        let (a, c) = assignment(&[vec![0.7]]);
        assert_eq!(a, vec![0]);
        assert!((c - 0.7).abs() < 1e-12);
    }

    #[test]
    fn textbook_three_by_three() {
        // Classic example: optimal = 5 (1+3+1? -> rows 0,1,2 to cols ...)
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (a, c) = assignment(&cost);
        assert!((c - 5.0).abs() < 1e-12, "got {c}");
        // Assignment must be a permutation.
        let mut seen = [false; 3];
        for &j in &a {
            assert!(!seen[j]);
            seen[j] = true;
        }
    }

    #[test]
    fn paper_example_matrix() {
        // Example 4.4/4.6 of the paper: optimal matching cost 0.25.
        let cost = vec![
            vec![1.0, 0.25, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0],
        ];
        let (_, c) = assignment(&cost);
        assert!((c - 0.25).abs() < 1e-12, "got {c}");
    }

    #[test]
    fn matches_naive_on_random_matrices() {
        // Deterministic pseudo-random matrices (no external RNG needed).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in 1..=6 {
            for _ in 0..20 {
                let cost: Vec<Vec<f64>> =
                    (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
                let (_, fast) = assignment(&cost);
                let slow = assignment_naive(&cost);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "n={n}: fast={fast} slow={slow} cost={cost:?}"
                );
            }
        }
    }

    #[test]
    fn handles_ties_and_zeros() {
        let cost = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let (_, c) = assignment(&cost);
        assert_eq!(c, 0.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let _ = assignment(&[vec![1.0, 2.0]]);
    }
}
