//! Human-readable explanations of a description comparison.
//!
//! The similarity metric is designed to estimate *human correction
//! effort*; this module turns the optimal rule matching behind a score
//! into the report a human corrector would actually read: which generated
//! rule was matched to which gold rule, at what distance, and which rules
//! of either side went unmatched.

use crate::description::{compare_descriptions, DescriptionComparison};
use rtec::EventDescription;
use std::fmt::Write;

/// One row of the explanation: a gold rule and its matched counterpart.
#[derive(Clone, Debug)]
pub struct MatchRow {
    /// The gold rule in concrete syntax.
    pub gold_rule: String,
    /// The matched generated rule, if any.
    pub matched_rule: Option<String>,
    /// The pair's rule distance (1.0 for unmatched).
    pub distance: f64,
}

/// A full comparison explanation.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// Overall similarity.
    pub similarity: f64,
    /// One row per gold rule.
    pub rows: Vec<MatchRow>,
    /// Generated rules with no gold counterpart.
    pub extra_rules: Vec<String>,
}

impl Explanation {
    /// Renders the explanation as an indented text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "similarity: {:.4}", self.similarity);
        for row in &self.rows {
            let _ = writeln!(out, "\n  gold:    {}", row.gold_rule.replace('\n', " "));
            match &row.matched_rule {
                Some(m) => {
                    let _ = writeln!(out, "  matched: {}", m.replace('\n', " "));
                    let _ = writeln!(out, "  distance: {:.4}", row.distance);
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  matched: <none> (missing from the generated description)"
                    );
                }
            }
        }
        for extra in &self.extra_rules {
            let _ = writeln!(
                out,
                "\n  extra:   {} (no gold counterpart)",
                extra.replace('\n', " ")
            );
        }
        out
    }

    /// Rows with distance above `threshold` — the rules a human would
    /// look at first.
    pub fn worst_rows(&self, threshold: f64) -> Vec<&MatchRow> {
        let mut rows: Vec<&MatchRow> = self
            .rows
            .iter()
            .filter(|r| r.distance > threshold)
            .collect();
        rows.sort_by(|a, b| b.distance.partial_cmp(&a.distance).expect("finite"));
        rows
    }
}

/// Explains the comparison of `gold` against `generated`.
pub fn explain(gold: &EventDescription, generated: &EventDescription) -> Explanation {
    let cmp: DescriptionComparison = compare_descriptions(gold, generated);
    let rows = cmp
        .matching
        .iter()
        .map(|(gi, m)| {
            let gold_rule = gold.clauses[*gi].display(&gold.symbols);
            match m {
                Some((bi, d)) => MatchRow {
                    gold_rule,
                    matched_rule: Some(generated.clauses[*bi].display(&generated.symbols)),
                    distance: *d,
                },
                None => MatchRow {
                    gold_rule,
                    matched_rule: None,
                    distance: 1.0,
                },
            }
        })
        .collect();
    let extra_rules = cmp
        .unmatched_b
        .iter()
        .map(|bi| generated.clauses[*bi].display(&generated.symbols))
        .collect();
    Explanation {
        similarity: cmp.similarity,
        rows,
        extra_rules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(src: &str) -> EventDescription {
        EventDescription::parse(src).unwrap()
    }

    #[test]
    fn identical_descriptions_explain_cleanly() {
        let g = desc("initiatedAt(f(V)=true, T) :- happensAt(e(V), T).");
        let e = explain(&g, &g);
        assert!((e.similarity - 1.0).abs() < 1e-12);
        assert_eq!(e.rows.len(), 1);
        assert_eq!(e.rows[0].distance, 0.0);
        assert!(e.extra_rules.is_empty());
        assert!(e.worst_rows(0.01).is_empty());
    }

    #[test]
    fn missing_rule_shows_as_unmatched() {
        let gold = desc(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).\n\
             terminatedAt(f(V)=true, T) :- happensAt(x(V), T).",
        );
        let gen = desc("initiatedAt(f(V)=true, T) :- happensAt(e(V), T).");
        let e = explain(&gold, &gen);
        assert_eq!(
            e.rows.iter().filter(|r| r.matched_rule.is_none()).count(),
            1
        );
        let report = e.render();
        assert!(report.contains("<none>"));
    }

    #[test]
    fn extra_rules_are_listed() {
        let gold = desc("initiatedAt(f(V)=true, T) :- happensAt(e(V), T).");
        let gen = desc(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).\n\
             initiatedAt(bogus(V)=true, T) :- happensAt(e(V), T).",
        );
        let e = explain(&gold, &gen);
        assert_eq!(e.extra_rules.len(), 1);
        assert!(e.render().contains("no gold counterpart"));
    }

    #[test]
    fn worst_rows_sorted_by_distance() {
        let gold = desc(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).\n\
             initiatedAt(g(V)=true, T) :- happensAt(e2(V), T).",
        );
        let gen = desc(
            "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).\n\
             initiatedAt(g(V)=true, T) :- happensAt(renamed(V), T).",
        );
        let e = explain(&gold, &gen);
        let worst = e.worst_rows(0.0);
        assert_eq!(worst.len(), 1);
        assert!(worst[0].gold_rule.contains("g(V)"));
    }
}
