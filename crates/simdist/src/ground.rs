//! Distances between ground expressions and sets thereof
//! (Definitions 4.1, 4.3 and 4.5 of the paper).

use crate::hungarian::assignment;
use rtec::Term;

/// Distance between two ground expressions (Definition 4.1, after
/// Nienhuys-Cheng):
///
/// * `0` if both are equal constants;
/// * `1/(2k) * sum d(s_i, t_i)` if both are compounds with the same functor
///   and the same arity `k`;
/// * `1` otherwise (different functors or arities).
///
/// Numbers compare by value (so `23` and `23.0` are the same constant).
/// Lists compare element-wise when of equal length, else distance `1`.
/// Variables should not appear; if they do, they are treated as opaque
/// constants equal only to themselves.
pub fn ground_distance(a: &Term, b: &Term) -> f64 {
    match (a, b) {
        // Integers compare exactly (an i64 -> f64 cast is lossy above
        // 2^53); mixed int/float pairs compare by value.
        (Term::Int(x), Term::Int(y)) if x == y => 0.0,
        (Term::Int(_), Term::Int(_)) => 1.0,
        (Term::Int(_) | Term::Float(_), Term::Int(_) | Term::Float(_)) => {
            let x = a.as_f64().expect("numeric");
            let y = b.as_f64().expect("numeric");
            if x == y {
                0.0
            } else {
                1.0
            }
        }
        (Term::Atom(x), Term::Atom(y)) if x == y => 0.0,
        (Term::Var(x), Term::Var(y)) if x == y => 0.0,
        (Term::Compound(f, xs), Term::Compound(g, ys)) => {
            if f != g || xs.len() != ys.len() {
                1.0
            } else {
                let k = xs.len() as f64;
                let sum: f64 = xs.iter().zip(ys).map(|(x, y)| ground_distance(x, y)).sum();
                sum / (2.0 * k)
            }
        }
        (Term::List(xs), Term::List(ys)) => {
            if xs.len() != ys.len() {
                1.0
            } else if xs.is_empty() {
                0.0
            } else {
                let k = xs.len() as f64;
                let sum: f64 = xs.iter().zip(ys).map(|(x, y)| ground_distance(x, y)).sum();
                sum / (2.0 * k)
            }
        }
        _ => 1.0,
    }
}

/// The cost matrix of two expression sets (Definition 4.3): a square
/// `M x M` matrix (`M >= K`) with `C[i][j] = d(a_i, b_j)` for `j < K` and
/// `0` in the padding columns that model unmatched expressions.
///
/// The generic `dist` parameter lets rule bodies reuse the construction
/// with the non-ground distance of Definition 4.11.
pub fn cost_matrix<T, F>(a: &[T], b: &[T], mut dist: F) -> Vec<Vec<f64>>
where
    F: FnMut(&T, &T) -> f64,
{
    debug_assert!(a.len() >= b.len(), "cost_matrix expects |a| >= |b|");
    let m = a.len();
    let k = b.len();
    (0..m)
        .map(|i| {
            (0..m)
                .map(|j| if j < k { dist(&a[i], &b[j]) } else { 0.0 })
                .collect()
        })
        .collect()
}

/// Distance between two sets of expressions under a pluggable pairwise
/// distance (Definition 4.5):
///
/// `d(A, B) = ((M - K) + min-matching-cost) / M` with `M = max(|A|, |B|)`.
///
/// Each unmatched expression is penalised by the maximal distance 1. The
/// measure is symmetric; the sides are swapped internally when `|A| < |B|`.
/// Two empty sets have distance 0.
pub fn set_distance_with<T, F>(a: &[T], b: &[T], mut dist: F) -> f64
where
    F: FnMut(&T, &T) -> f64,
{
    // Put the larger set on the rows; the pairwise distance stays oriented
    // as (a-element, b-element) regardless.
    let swapped = a.len() < b.len();
    let (rows, cols) = if swapped { (b, a) } else { (a, b) };
    let m = rows.len();
    let k = cols.len();
    if m == 0 {
        return 0.0;
    }
    let cost = cost_matrix(
        rows,
        cols,
        |x, y| if swapped { dist(y, x) } else { dist(x, y) },
    );
    let (_, matched) = assignment(&cost);
    ((m - k) as f64 + matched) / m as f64
}

/// Distance between two sets of *ground* expressions (Definition 4.5
/// instantiated with Definition 4.1).
pub fn set_distance(a: &[Term], b: &[Term]) -> f64 {
    set_distance_with(a, b, ground_distance)
}

/// Similarity between two sets of ground expressions: `1 - distance`.
pub fn set_similarity(a: &[Term], b: &[Term]) -> f64 {
    1.0 - set_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::parser::parse_term;
    use rtec::SymbolTable;

    fn terms(sym: &mut SymbolTable, srcs: &[&str]) -> Vec<Term> {
        srcs.iter().map(|s| parse_term(s, sym).unwrap()).collect()
    }

    /// Example 4.2 of the paper: d = 0.25.
    #[test]
    fn paper_example_4_2() {
        let mut sym = SymbolTable::new();
        let e1 = parse_term("happensAt(entersArea(v42, a1), 23)", &mut sym).unwrap();
        let e2 = parse_term("happensAt(inArea(v42, a1), 23)", &mut sym).unwrap();
        assert!((ground_distance(&e1, &e2) - 0.25).abs() < 1e-12);
    }

    /// Example 4.4/4.6 of the paper: dE = 0.4167, similarity 0.5833.
    #[test]
    fn paper_example_4_6() {
        let mut sym = SymbolTable::new();
        let ea = terms(
            &mut sym,
            &[
                "happensAt(entersArea(v42, a1), 23)",
                "areaType(a1, fishing)",
                "holdsAt(underway(v42)=true, 23)",
            ],
        );
        let eb = terms(
            &mut sym,
            &["areaType(a1, fishing)", "happensAt(inArea(v42, a1), 23)"],
        );
        let d = set_distance(&ea, &eb);
        assert!((d - (1.0 + 0.25) / 3.0).abs() < 1e-9, "d={d}");
        assert!((set_similarity(&ea, &eb) - 0.5833).abs() < 1e-4);
    }

    #[test]
    fn identical_terms_have_zero_distance() {
        let mut sym = SymbolTable::new();
        let t = parse_term("f(g(a, 1), 2.5)", &mut sym).unwrap();
        assert_eq!(ground_distance(&t, &t), 0.0);
    }

    #[test]
    fn different_functor_is_one() {
        let mut sym = SymbolTable::new();
        let a = parse_term("f(a)", &mut sym).unwrap();
        let b = parse_term("g(a)", &mut sym).unwrap();
        assert_eq!(ground_distance(&a, &b), 1.0);
    }

    #[test]
    fn different_arity_is_one() {
        let mut sym = SymbolTable::new();
        let a = parse_term("f(a)", &mut sym).unwrap();
        let b = parse_term("f(a, b)", &mut sym).unwrap();
        assert_eq!(ground_distance(&a, &b), 1.0);
    }

    #[test]
    fn nested_differences_attenuate() {
        // A difference k levels deep contributes (1/2k)^depth-ish less.
        let mut sym = SymbolTable::new();
        let a = parse_term("f(g(a))", &mut sym).unwrap();
        let b = parse_term("f(g(b))", &mut sym).unwrap();
        // d = 1/2 * (1/2 * 1) = 0.25
        assert!((ground_distance(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(ground_distance(&Term::Int(23), &Term::Float(23.0)), 0.0);
        assert_eq!(ground_distance(&Term::Int(23), &Term::Float(24.0)), 1.0);
    }

    #[test]
    fn large_integers_compare_exactly() {
        // 2^53 and 2^53 + 1 collapse to the same f64; the metric must
        // still tell them apart.
        let a = Term::Int(9_007_199_254_740_992);
        let b = Term::Int(9_007_199_254_740_993);
        assert_eq!(ground_distance(&a, &b), 1.0);
        assert_eq!(ground_distance(&a, &a), 0.0);
    }

    #[test]
    fn atom_vs_compound_is_one() {
        let mut sym = SymbolTable::new();
        let a = parse_term("fishing", &mut sym).unwrap();
        let b = parse_term("fishing(x)", &mut sym).unwrap();
        assert_eq!(ground_distance(&a, &b), 1.0);
    }

    #[test]
    fn set_distance_is_symmetric() {
        let mut sym = SymbolTable::new();
        let a = terms(&mut sym, &["f(a)", "g(b)", "h(c)"]);
        let b = terms(&mut sym, &["f(a)"]);
        assert!((set_distance(&a, &b) - set_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        let mut sym = SymbolTable::new();
        let a = terms(&mut sym, &["f(a)"]);
        let empty: Vec<Term> = Vec::new();
        assert_eq!(set_distance(&empty, &empty), 0.0);
        assert_eq!(set_distance(&a, &empty), 1.0);
        assert_eq!(set_similarity(&a, &empty), 0.0);
    }

    #[test]
    fn identical_sets_have_distance_zero() {
        let mut sym = SymbolTable::new();
        let a = terms(&mut sym, &["f(a)", "g(b, c)"]);
        assert_eq!(set_distance(&a, &a), 0.0);
    }

    #[test]
    fn list_distances() {
        let mut sym = SymbolTable::new();
        let a = parse_term("[a, b]", &mut sym).unwrap();
        let b = parse_term("[a, c]", &mut sym).unwrap();
        let c = parse_term("[a]", &mut sym).unwrap();
        assert!((ground_distance(&a, &b) - 0.25).abs() < 1e-12);
        assert_eq!(ground_distance(&a, &c), 1.0);
        let e1 = parse_term("[]", &mut sym).unwrap();
        let e2 = parse_term("[]", &mut sym).unwrap();
        assert_eq!(ground_distance(&e1, &e2), 0.0);
    }
}
