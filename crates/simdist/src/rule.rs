//! Distance between rules (Definitions 4.11 and 4.12 of the paper).

use crate::ground::cost_matrix;
use crate::hungarian::assignment;
use crate::tree::VarInstances;
use rtec::ast::Clause;
use rtec::Term;

/// Distance between two possibly non-ground expressions, each taken from a
/// rule whose variable-instance map is supplied (Definition 4.11):
///
/// * equal constants — 0;
/// * two variables with equal instance lists — 0, otherwise 1;
/// * compounds with equal functor and arity — scaled argument sum;
/// * anything else — 1.
pub fn expr_distance(a: &Term, b: &Term, via: &VarInstances, vib: &VarInstances) -> f64 {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) if via.same_concept(*x, vib, *y) => 0.0,
        // Integers compare exactly (an i64 -> f64 cast is lossy above
        // 2^53); mixed int/float pairs compare by value.
        (Term::Int(x), Term::Int(y)) if x == y => 0.0,
        (Term::Int(_), Term::Int(_)) => 1.0,
        (Term::Int(_) | Term::Float(_), Term::Int(_) | Term::Float(_)) => {
            let x = a.as_f64().expect("numeric");
            let y = b.as_f64().expect("numeric");
            if x == y {
                0.0
            } else {
                1.0
            }
        }
        (Term::Atom(x), Term::Atom(y)) if x == y => 0.0,
        (Term::Compound(f, xs), Term::Compound(g, ys)) => {
            if f != g || xs.len() != ys.len() {
                1.0
            } else {
                let k = xs.len() as f64;
                let sum: f64 = xs
                    .iter()
                    .zip(ys)
                    .map(|(x, y)| expr_distance(x, y, via, vib))
                    .sum();
                sum / (2.0 * k)
            }
        }
        (Term::List(xs), Term::List(ys)) => {
            if xs.len() != ys.len() {
                1.0
            } else if xs.is_empty() {
                0.0
            } else {
                let k = xs.len() as f64;
                let sum: f64 = xs
                    .iter()
                    .zip(ys)
                    .map(|(x, y)| expr_distance(x, y, via, vib))
                    .sum();
                sum / (2.0 * k)
            }
        }
        _ => 1.0,
    }
}

/// Distance between two rules (Definition 4.12):
///
/// ```text
/// dr(r1, r2) = ( d(h1, h2) + (M - K) + min-matching(b1, b2) ) / (M + 1)
/// ```
///
/// with `M = |b1| >= K = |b2|` (the sides are swapped internally
/// otherwise). Heads are compared to each other only — a head is never
/// matched against a body condition.
pub fn rule_distance(r1: &Clause, r2: &Clause) -> f64 {
    let via = VarInstances::of_clause(r1);
    let vib = VarInstances::of_clause(r2);
    rule_distance_with(r1, &via, r2, &vib)
}

/// [`rule_distance`] with caller-supplied variable-instance maps.
///
/// Event-description comparison evaluates the rule distance for every
/// pair of an `M x K` cost matrix; precomputing `vi_r` once per rule
/// (instead of once per pair) removes the dominant redundant work.
pub fn rule_distance_with(r1: &Clause, via: &VarInstances, r2: &Clause, vib: &VarInstances) -> f64 {
    if r1.body.len() < r2.body.len() {
        return rule_distance_with(r2, vib, r1, via);
    }
    let head_d = expr_distance(&r1.head, &r2.head, via, vib);
    let m = r1.body.len();
    let k = r2.body.len();
    let matched = if m == 0 {
        0.0
    } else {
        let cost = cost_matrix(&r1.body, &r2.body, |a, b| expr_distance(a, b, via, vib));
        assignment(&cost).1
    };
    (head_d + (m - k) as f64 + matched) / (m as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::parser::parse_program;
    use rtec::SymbolTable;

    fn clauses(srcs: &[&str]) -> (Vec<Clause>, SymbolTable) {
        let mut sym = SymbolTable::new();
        let all = srcs.join("\n");
        let cs = parse_program(&all, &mut sym).unwrap();
        (cs, sym)
    }

    const RULE_1: &str = "initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
        happensAt(entersArea(Vl, AreaID), T), areaType(AreaID, AreaType).";

    /// Rule (6) of the paper: rule (1) with AreaID renamed to Area.
    const RULE_6: &str = "initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
        happensAt(entersArea(Vl, Area), T), areaType(Area, AreaType).";

    /// Rule (7) of the paper: rule (1) with areaType's arguments reversed.
    const RULE_7: &str = "initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
        happensAt(entersArea(Vl, AreaID), T), areaType(AreaType, AreaID).";

    /// Example 4.13, part 1: variable renaming gives distance 0.
    #[test]
    fn paper_example_4_13_renaming() {
        let (cs, _) = clauses(&[RULE_1, RULE_6]);
        assert!(rule_distance(&cs[0], &cs[1]).abs() < 1e-12);
    }

    /// Example 4.13, part 2: reversed argument order. The paper breaks the
    /// sum down as (0.015625 + 0 + 0.0625 + 0.5) / 3; we reproduce each
    /// component exactly. (The paper prints the total as "0.1667", which
    /// does not match its own components — (0.578125)/3 = 0.1927; the
    /// printed total is a typo, the component derivation is normative.)
    #[test]
    fn paper_example_4_13_reversed_arguments() {
        let (cs, _) = clauses(&[RULE_1, RULE_7]);
        let d = rule_distance(&cs[0], &cs[1]);
        let expected = (0.015625 + 0.0 + 0.0625 + 0.5) / 3.0;
        assert!((d - expected).abs() < 1e-9, "d={d}, expected {expected}");
        assert!((d - 0.1927).abs() < 1e-3);
    }

    #[test]
    fn identical_rules_have_zero_distance() {
        let (cs, _) = clauses(&[RULE_1, RULE_1]);
        assert_eq!(rule_distance(&cs[0], &cs[1]), 0.0);
    }

    #[test]
    fn missing_condition_penalised() {
        let full = "initiatedAt(f(V)=true, T) :- happensAt(e(V), T), holdsAt(g(V)=true, T).";
        let short = "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).";
        let (cs, _) = clauses(&[full, short]);
        let d = rule_distance(&cs[0], &cs[1]);
        // Removing a condition changes every variable's instance list
        // (Definition 4.9 collects instances over the whole rule), so the
        // shared literals also drift apart:
        //   head  = 1/4 * (1/4 * (1/2) * 2 ... ) — worked out:
        //   d(V,V)=1 and d(T,T)=1 across the two rules, hence
        //   head = 1/4 * (1/4*(1/2*1) ... ) = 0.28125,
        //   happensAt pair = 1/4 * (1/2 + 1) = 0.375, unmatched = 1.
        let expected = (0.28125 + 1.0 + 0.375) / 3.0;
        assert!((d - expected).abs() < 1e-9, "d={d} expected={expected}");
        // Symmetric.
        assert!((rule_distance(&cs[1], &cs[0]) - d).abs() < 1e-12);
    }

    #[test]
    fn different_head_fluent_name() {
        let a = "initiatedAt(f(V)=true, T) :- happensAt(e(V), T).";
        let b = "initiatedAt(h(V)=true, T) :- happensAt(e(V), T).";
        let (cs, _) = clauses(&[a, b]);
        let d = rule_distance(&cs[0], &cs[1]);
        // Head: initiatedAt matches; inside the '=' node, f(V) vs h(V) is 1
        // (different functor); true matches; T matches.
        // d(head) = 1/4 * (1/4 * 1) = 0.0625.
        // Body: happensAt(e(V), T) on both sides, but V's instance lists
        // include the head occurrence (under f vs under h), so d(V,V)=1 and
        // the body literal costs 1/4 * (1/2 * 1) = 0.125.
        let head = 0.25 * 0.25;
        let body = 0.25 * 0.5;
        let expected = (head + body) / 2.0;
        assert!((d - expected).abs() < 1e-9, "d={d} expected={expected}");
    }

    #[test]
    fn facts_compare_by_head_only() {
        let (cs, _) = clauses(&["areaType(a1, fishing).", "areaType(a1, natura)."]);
        let d = rule_distance(&cs[0], &cs[1]);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn swapped_variable_roles_detected() {
        // X and Y swap roles between head and body.
        let a = "initiatedAt(f(X, Y)=true, T) :- happensAt(e(X, Y), T).";
        let b = "initiatedAt(f(X, Y)=true, T) :- happensAt(e(Y, X), T).";
        let (cs, _) = clauses(&[a, b]);
        assert!(rule_distance(&cs[0], &cs[1]) > 0.0);
    }
}
