//! Tree representation of expressions and variable instances
//! (Definitions 4.7–4.10 of the paper).
//!
//! Variables appearing in different rules may denote different concepts
//! even when they share a name, and vice versa. The metric therefore
//! identifies a variable by the *positions* at which it occurs in its
//! rule: each occurrence is a path of `(parent functor, child index)` steps
//! from the root of an expression to the variable's leaf (Definition 4.9).
//! Two variables refer to the same concept iff their instance lists are
//! equal (Definition 4.11, second and third branches).
//!
//! # Known limitation (inherited from the paper's definitions)
//!
//! Definition 4.9 identifies an occurrence by its path *within* an
//! expression, and Definition 4.10 collects those paths over all of a
//! rule's expressions without recording which literal each occurrence
//! came from. Two variables that occupy mirrored positions in two
//! same-functor literals (e.g. `p(X, Y), p(Y, X)` vs `p(X, X), p(Y, Y)`)
//! therefore receive identical instance lists and compare as the same
//! concept, even though the rules differ semantically. We implement the
//! definitions as published; a literal-indexed path would be a (documented)
//! deviation.

use rtec::ast::Clause;
use rtec::{Symbol, Term};
use std::collections::HashMap;

/// One step of a path: the functor of the parent node (or `None` for a
/// Prolog list node) and the 1-based child index, as in the paper's
/// `t[(p, i)]` notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathStep {
    /// Parent functor; `None` when the parent is a list.
    pub functor: Option<Symbol>,
    /// 1-based index of the child within the parent.
    pub index: usize,
}

/// An instance of a variable: the path from an expression root to one of
/// its occurrences (Definition 4.9).
pub type Path = Vec<PathStep>;

/// Collects the instances of every variable in `expr` (depth-first,
/// left-to-right), appending to `out`.
pub fn variable_instances(expr: &Term, out: &mut HashMap<Symbol, Vec<Path>>) {
    let mut prefix: Path = Vec::new();
    walk(expr, &mut prefix, out);
}

fn walk(t: &Term, prefix: &mut Path, out: &mut HashMap<Symbol, Vec<Path>>) {
    match t {
        Term::Var(v) => out.entry(*v).or_default().push(prefix.clone()),
        Term::Compound(f, args) => {
            for (i, a) in args.iter().enumerate() {
                prefix.push(PathStep {
                    functor: Some(*f),
                    index: i + 1,
                });
                walk(a, prefix, out);
                prefix.pop();
            }
        }
        Term::List(items) => {
            for (i, a) in items.iter().enumerate() {
                prefix.push(PathStep {
                    functor: None,
                    index: i + 1,
                });
                walk(a, prefix, out);
                prefix.pop();
            }
        }
        _ => {}
    }
}

/// The instance lists of every variable of a rule (the paper's
/// `vi_r(V)`): instances collected from the head and then each body
/// literal, canonically sorted so that lists compare as sets.
#[derive(Clone, Debug, Default)]
pub struct VarInstances {
    map: HashMap<Symbol, Vec<Path>>,
}

impl VarInstances {
    /// Computes `vi_r` for a clause.
    pub fn of_clause(clause: &Clause) -> VarInstances {
        let mut map = HashMap::new();
        variable_instances(&clause.head, &mut map);
        for b in &clause.body {
            variable_instances(b, &mut map);
        }
        for paths in map.values_mut() {
            paths.sort();
        }
        VarInstances { map }
    }

    /// The (sorted) instance list of `v`, empty if `v` does not occur.
    pub fn get(&self, v: Symbol) -> &[Path] {
        self.map.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether variable `v1` of this rule and `v2` of `other` refer to the
    /// same concept: their instance lists are equal (Definition 4.11).
    pub fn same_concept(&self, v1: Symbol, other: &VarInstances, v2: Symbol) -> bool {
        let a = self.get(v1);
        let b = other.get(v2);
        !a.is_empty() && a == b
    }

    /// The number of distinct variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the rule has no variables.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::parser::parse_program;
    use rtec::SymbolTable;

    fn instances_of(src: &str, var: &str) -> (Vec<Path>, SymbolTable) {
        let mut sym = SymbolTable::new();
        let clauses = parse_program(src, &mut sym).unwrap();
        let vi = VarInstances::of_clause(&clauses[0]);
        let v = sym.get(var).unwrap();
        (vi.get(v).to_vec(), sym)
    }

    /// Example 4.10 of the paper: the instances of Vl in rule (1).
    #[test]
    fn paper_example_4_10() {
        let src = "initiatedAt(withinArea(Vl, AreaType)=true, T) :- \
                   happensAt(entersArea(Vl, AreaId), T), areaType(AreaId, AreaType).";
        let (paths, sym) = instances_of(src, "Vl");
        assert_eq!(paths.len(), 2);
        let step = |f: &str, i: usize| PathStep {
            functor: Some(sym.get(f).unwrap()),
            index: i,
        };
        // [(initiatedAt,1), (=,1), (withinArea,1)]
        let head_path = vec![step("initiatedAt", 1), step("=", 1), step("withinArea", 1)];
        // [(happensAt,1), (entersArea,1)]
        let body_path = vec![step("happensAt", 1), step("entersArea", 1)];
        assert!(paths.contains(&head_path));
        assert!(paths.contains(&body_path));

        let (area_id, _) = instances_of(src, "AreaId");
        assert_eq!(area_id.len(), 2);
        let (area_type, _) = instances_of(src, "AreaType");
        assert_eq!(area_type.len(), 2);
    }

    #[test]
    fn renaming_preserves_instances() {
        let a = "initiatedAt(f(X)=true, T) :- happensAt(e(X), T).";
        let b = "initiatedAt(f(Y)=true, T) :- happensAt(e(Y), T).";
        let mut sym = SymbolTable::new();
        let ca = parse_program(a, &mut sym).unwrap();
        let cb = parse_program(b, &mut sym).unwrap();
        let via = VarInstances::of_clause(&ca[0]);
        let vib = VarInstances::of_clause(&cb[0]);
        let x = sym.get("X").unwrap();
        let y = sym.get("Y").unwrap();
        assert!(via.same_concept(x, &vib, y));
    }

    #[test]
    fn different_positions_differ() {
        let a = "initiatedAt(f(X)=true, T) :- happensAt(e(X, Z), T).";
        let b = "initiatedAt(f(X)=true, T) :- happensAt(e(Z, X), T).";
        let mut sym = SymbolTable::new();
        let ca = parse_program(a, &mut sym).unwrap();
        let cb = parse_program(b, &mut sym).unwrap();
        let via = VarInstances::of_clause(&ca[0]);
        let vib = VarInstances::of_clause(&cb[0]);
        let x = sym.get("X").unwrap();
        assert!(!via.same_concept(x, &vib, x));
    }

    #[test]
    fn absent_variable_never_matches() {
        let a = "f(X).";
        let mut sym = SymbolTable::new();
        let ca = parse_program(a, &mut sym).unwrap();
        let via = VarInstances::of_clause(&ca[0]);
        let ghost = sym.intern("Ghost");
        assert!(!via.same_concept(ghost, &via, ghost));
    }

    #[test]
    fn list_positions_are_tracked() {
        let mut sym = SymbolTable::new();
        let clauses = parse_program(
            "holdsFor(f(V)=true, I) :- union_all([I1, I2], I).",
            &mut sym,
        )
        .unwrap();
        let vi = VarInstances::of_clause(&clauses[0]);
        let i1 = sym.get("I1").unwrap();
        let paths = vi.get(i1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].last().unwrap().functor, None);
        assert_eq!(paths[0].last().unwrap().index, 1);
    }
}
