//! Lossy CSV import over a corpus with deliberate corruption: numeric
//! junk, short rows, and free text must be skipped and recorded, never
//! abort the parse or poison the surviving trajectories.

use maritime::csv::{parse_ais_csv, parse_ais_csv_lossy, RowDiagnostic};
use rtec::reorder::DeadLetterReason;

const CORPUS: &str = include_str!("data/lossy_corpus.csv");

#[test]
fn lossy_parse_skips_and_records_corrupt_rows() {
    let (trajectories, mapping, diagnostics) = parse_ais_csv_lossy(CORPUS);

    // The corpus holds 6 good rows across 2 vessels and 4 corrupt ones.
    assert_eq!(mapping.len(), 2);
    assert_eq!(mapping[0].0, 227002330);
    assert_eq!(mapping[1].0, 228131000);
    let points: usize = trajectories.iter().map(|t| t.points.len()).sum();
    assert_eq!(points, 6);

    assert_eq!(diagnostics.len(), 4, "{diagnostics:?}");
    let lines: Vec<usize> = diagnostics.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![4, 6, 7, 11], "diagnostics carry row numbers");
    assert!(diagnostics[0].message.contains("bad number"));
    assert!(diagnostics[1].message.contains("missing field"));

    // The strict parser aborts on the first of those same rows.
    let err = parse_ais_csv(CORPUS).unwrap_err();
    assert_eq!(err.line, 4);
}

#[test]
fn surviving_rows_match_a_pre_cleaned_parse() {
    let cleaned: String = CORPUS
        .lines()
        .enumerate()
        .filter(|&(i, _)| ![3, 5, 6, 10].contains(&i))
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    let (strict, strict_map) = parse_ais_csv(&cleaned).unwrap();
    let (lossy, lossy_map, _) = parse_ais_csv_lossy(CORPUS);
    assert_eq!(strict_map, lossy_map);
    assert_eq!(strict.len(), lossy.len());
    for (s, l) in strict.iter().zip(&lossy) {
        assert_eq!(s.points.len(), l.points.len());
        for (sp, lp) in s.points.iter().zip(&l.points) {
            assert_eq!(sp.t, lp.t);
            assert_eq!(sp.speed, lp.speed);
        }
    }
}

#[test]
fn diagnostics_convert_to_malformed_dead_letters() {
    let (_, _, diagnostics) = parse_ais_csv_lossy(CORPUS);
    for d in &diagnostics {
        let dl = d.to_dead_letter();
        assert_eq!(dl.reason, DeadLetterReason::Malformed);
        assert!(dl.detail.contains(&format!("line {}", d.line)));
    }
}

#[test]
fn header_failures_are_one_diagnostic_not_a_panic() {
    let (trs, map, diags) = parse_ais_csv_lossy("lat,lon\n48.0,-4.0\n");
    assert!(trs.is_empty() && map.is_empty());
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("missing column"));

    let (trs, _, diags) = parse_ais_csv_lossy("");
    assert!(trs.is_empty());
    assert_eq!(
        diags,
        vec![RowDiagnostic {
            line: 1,
            message: "empty input".into()
        }]
    );
}
