//! Acceptance tests of the gold-standard activity definitions: for each
//! target activity, a minimal scenario that must trigger it and a
//! near-miss variant that must not.

use maritime::areas::AreaMap;
use maritime::geometry::Point;
use maritime::gold::GOLD_RULES;
use maritime::preprocess::{preprocess, PreprocessConfig};
use maritime::scenario::TrajectoryBuilder;
use maritime::thresholds::{fleet_background_facts, Thresholds};
use maritime::vessel::{Vessel, VesselId, VesselType};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtec::{Engine, EngineConfig, IntervalList};

struct World {
    areas: AreaMap,
    vessels: Vec<Vessel>,
    trajectories: Vec<maritime::ais::Trajectory>,
}

impl World {
    fn new() -> World {
        World {
            areas: AreaMap::brest_like(),
            vessels: Vec::new(),
            trajectories: Vec::new(),
        }
    }

    fn vessel(&mut self, t: VesselType) -> VesselId {
        let id = self.vessels.len() as u32;
        self.vessels.push(Vessel::new(id, t));
        VesselId(id)
    }

    /// Runs the gold rules over the world and returns the union of the
    /// intervals of `fluent_name` (any arity).
    fn recognise(&self, fluent_name: &str) -> IntervalList {
        let stream = preprocess(
            &self.trajectories,
            &self.areas,
            &PreprocessConfig::default(),
        );
        let src = format!(
            "{GOLD_RULES}\n{}\n{}\n{}",
            self.areas.background_facts(),
            Thresholds::default().background_facts(),
            fleet_background_facts(&self.vessels),
        );
        let desc = rtec::EventDescription::parse(&src).expect("gold parses");
        let compiled = desc.compile().expect("gold compiles");
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        stream.load_into(&mut engine);
        engine.run_to(stream.horizon() + 1);
        let symbols = engine.symbols().clone();
        let out = engine.into_output();
        let lists: Vec<&IntervalList> = out
            .iter()
            .filter(|(fvp, _)| {
                fvp.fluent
                    .functor()
                    .and_then(|f| symbols.try_name(f))
                    .is_some_and(|n| n == fluent_name)
            })
            .map(|(_, l)| l)
            .collect();
        IntervalList::union_all(&lists)
    }
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(99)
}

const FISHING_CENTRE: Point = Point {
    x: 20_000.0,
    y: 15_000.0,
};
const OPEN_SEA: Point = Point {
    x: 20_000.0,
    y: 30_000.0,
};

#[test]
fn trawling_requires_the_fishing_area() {
    // Zigzag at trawl speed inside the fishing ground: trawling.
    let mut w = World::new();
    let v = w.vessel(VesselType::Fishing);
    let mut b = TrajectoryBuilder::new(v, 0, FISHING_CENTRE, 60);
    b.zigzag(&mut rng(), 3600, 4.0, 90.0, 40.0, 300);
    w.trajectories.push(b.finish());
    assert!(!w.recognise("trawling").is_empty());

    // The same kinematics in open sea: no trawling.
    let mut w2 = World::new();
    let v2 = w2.vessel(VesselType::Fishing);
    let mut b2 = TrajectoryBuilder::new(v2, 0, OPEN_SEA, 60);
    b2.zigzag(&mut rng(), 3600, 4.0, 90.0, 40.0, 300);
    w2.trajectories.push(b2.finish());
    assert!(w2.recognise("trawling").is_empty());
}

#[test]
fn trawling_requires_trawl_speed() {
    // Zigzag inside the fishing ground but at service speed: movement
    // without trawlSpeed, hence no trawling.
    let mut w = World::new();
    let v = w.vessel(VesselType::Fishing);
    let mut b = TrajectoryBuilder::new(v, 0, FISHING_CENTRE, 60);
    b.zigzag(&mut rng(), 3600, 9.0, 90.0, 40.0, 300);
    w.trajectories.push(b.finish());
    assert!(!w.recognise("trawlingMovement").is_empty());
    assert!(w.recognise("trawlSpeed").is_empty());
    assert!(w.recognise("trawling").is_empty());
}

#[test]
fn high_speed_near_coast_requires_both_parts() {
    // Fast transit through the coastal band: detected.
    let mut w = World::new();
    let v = w.vessel(VesselType::Cargo);
    let mut b = TrajectoryBuilder::new(v, 0, Point::new(5_000.0, 2_000.0), 60);
    b.sail_to(&mut rng(), Point::new(30_000.0, 2_000.0), 12.0);
    w.trajectories.push(b.finish());
    assert!(!w.recognise("highSpeedNearCoast").is_empty());

    // Slow transit through the same band: not detected.
    let mut w2 = World::new();
    let v2 = w2.vessel(VesselType::Cargo);
    let mut b2 = TrajectoryBuilder::new(v2, 0, Point::new(5_000.0, 2_000.0), 60);
    b2.sail_to(&mut rng(), Point::new(12_000.0, 2_000.0), 4.0);
    w2.trajectories.push(b2.finish());
    assert!(w2.recognise("highSpeedNearCoast").is_empty());

    // Fast sailing in open sea: not detected.
    let mut w3 = World::new();
    let v3 = w3.vessel(VesselType::Cargo);
    let mut b3 = TrajectoryBuilder::new(v3, 0, OPEN_SEA, 60);
    b3.sail_to(&mut rng(), Point::new(40_000.0, 30_000.0), 12.0);
    w3.trajectories.push(b3.finish());
    assert!(w3.recognise("highSpeedNearCoast").is_empty());
}

#[test]
fn anchored_or_moored_vs_loitering() {
    // Stopped inside the anchorage: anchoredOrMoored, not loitering.
    let anchorage = Point::new(12_000.0, 6_500.0);
    let mut w = World::new();
    let v = w.vessel(VesselType::Cargo);
    let mut b = TrajectoryBuilder::new(v, 0, anchorage, 60);
    b.hold(&mut rng(), 3600);
    w.trajectories.push(b.finish());
    assert!(!w.recognise("anchoredOrMoored").is_empty());
    assert!(w.recognise("loitering").is_empty());

    // Stopped in open sea: loitering, not anchoredOrMoored.
    let mut w2 = World::new();
    let v2 = w2.vessel(VesselType::Cargo);
    let mut b2 = TrajectoryBuilder::new(v2, 0, OPEN_SEA, 60);
    b2.hold(&mut rng(), 3600);
    w2.trajectories.push(b2.finish());
    assert!(w2.recognise("anchoredOrMoored").is_empty());
    assert!(!w2.recognise("loitering").is_empty());
}

#[test]
fn drifting_requires_course_deviation_and_way() {
    // Slow way with 45-degree course offset: drifting.
    let mut w = World::new();
    let v = w.vessel(VesselType::Tanker);
    let mut b = TrajectoryBuilder::new(v, 0, OPEN_SEA, 60);
    b.sail_to(&mut rng(), Point::new(22_000.0, 30_000.0), 9.0)
        .drift(&mut rng(), 1800, 1.5, 45.0);
    w.trajectories.push(b.finish());
    assert!(!w.recognise("drifting").is_empty());

    // Same speeds, aligned course: no drifting.
    let mut w2 = World::new();
    let v2 = w2.vessel(VesselType::Tanker);
    let mut b2 = TrajectoryBuilder::new(v2, 0, OPEN_SEA, 60);
    b2.sail_to(&mut rng(), Point::new(22_000.0, 30_000.0), 9.0)
        .drift(&mut rng(), 1800, 1.5, 0.0);
    w2.trajectories.push(b2.finish());
    assert!(w2.recognise("drifting").is_empty());
}

#[test]
fn drifting_not_fooled_by_heading_wraparound() {
    // Sailing due north, heading jitters across the 0/360 seam while the
    // course stays aligned: the raw |Heading - Cog| can be ~358 degrees,
    // but the true deviation is a couple of degrees — no drifting.
    let mut w = World::new();
    let v = w.vessel(VesselType::Tanker);
    let mut b = TrajectoryBuilder::new(v, 0, OPEN_SEA, 60);
    b.sail_to(&mut rng(), Point::new(20_000.0, 33_500.0), 9.0)
        .drift(&mut rng(), 1800, 1.5, 0.0);
    w.trajectories.push(b.finish());
    assert!(w.recognise("drifting").is_empty());
}

#[test]
fn sar_requires_the_vessel_type() {
    let mut w = World::new();
    let sar = w.vessel(VesselType::Sar);
    let mut b = TrajectoryBuilder::new(sar, 0, OPEN_SEA, 60);
    b.zigzag(&mut rng(), 3600, 14.0, 0.0, 60.0, 300);
    w.trajectories.push(b.finish());
    assert!(!w.recognise("sar").is_empty());

    // A cargo vessel with identical kinematics is not search-and-rescue.
    let mut w2 = World::new();
    let cargo = w2.vessel(VesselType::Cargo);
    let mut b2 = TrajectoryBuilder::new(cargo, 0, OPEN_SEA, 60);
    b2.zigzag(&mut rng(), 3600, 14.0, 0.0, 60.0, 300);
    w2.trajectories.push(b2.finish());
    assert!(w2.recognise("sar").is_empty());
}

#[test]
fn tugging_requires_proximity_and_a_tug() {
    // Tug and tow side by side at towing speed: tugging.
    let mut w = World::new();
    let tug = w.vessel(VesselType::Tug);
    let tow = w.vessel(VesselType::Cargo);
    let mut lead = TrajectoryBuilder::new(tug, 0, OPEN_SEA, 60);
    lead.sail_to(&mut rng(), Point::new(26_000.0, 29_000.0), 3.5);
    let lead_tr = lead.finish();
    let mut follow = TrajectoryBuilder::new(tow, 0, Point::new(20_000.0, 30_120.0), 60);
    follow.shadow(&lead_tr, 0, i64::MAX / 4, Point::new(0.0, 120.0));
    w.trajectories.push(lead_tr.clone());
    w.trajectories.push(follow.finish());
    assert!(!w.recognise("tugging").is_empty());

    // Two cargo vessels with the same geometry: no tug, no tugging.
    let mut w2 = World::new();
    let a = w2.vessel(VesselType::Cargo);
    let bship = w2.vessel(VesselType::Cargo);
    let mut lead2 = TrajectoryBuilder::new(a, 0, OPEN_SEA, 60);
    lead2.sail_to(&mut rng(), Point::new(26_000.0, 29_000.0), 3.5);
    let lead2_tr = lead2.finish();
    let mut follow2 = TrajectoryBuilder::new(bship, 0, Point::new(20_000.0, 30_120.0), 60);
    follow2.shadow(&lead2_tr, 0, i64::MAX / 4, Point::new(0.0, 120.0));
    w2.trajectories.push(lead2_tr);
    w2.trajectories.push(follow2.finish());
    assert!(w2.recognise("tugging").is_empty());
}

#[test]
fn communication_gap_splits_by_port_vicinity() {
    // Gap starting far from ports.
    let mut w = World::new();
    let v = w.vessel(VesselType::Passenger);
    let mut b = TrajectoryBuilder::new(v, 0, OPEN_SEA, 60);
    b.loiter(&mut rng(), 600)
        .silence(3600, 1.0)
        .loiter(&mut rng(), 600);
    w.trajectories.push(b.finish());
    assert!(!w.recognise("gap").is_empty());

    // The far-from-ports value is the one that holds.
    let stream = preprocess(&w.trajectories, &w.areas, &PreprocessConfig::default());
    let src = format!(
        "{GOLD_RULES}\n{}\n{}\n{}",
        w.areas.background_facts(),
        Thresholds::default().background_facts(),
        fleet_background_facts(&w.vessels),
    );
    let mut desc = rtec::EventDescription::parse(&src).unwrap();
    let far = desc.fvp("gap(v0)=farFromPorts").unwrap();
    let near = desc.fvp("gap(v0)=nearPorts").unwrap();
    let compiled = desc.compile().unwrap();
    let mut engine = Engine::new(&compiled, EngineConfig::default());
    stream.load_into(&mut engine);
    let out = engine.run_to(stream.horizon() + 1);
    assert!(out.intervals(&far).is_some());
    assert!(out.intervals(&near).is_none());
}
