//! Determinism and sanity pins for the Brest-scale synthetic generator.
//!
//! The generator's contract (see `docs/SCALE.md`): the stream is a pure
//! function of [`SynthConfig`] — byte-identical across runs and across
//! chunked vs. one-shot consumption — with per-vessel monotone
//! timestamps and an event mix inside pinned tolerances, so benchmark
//! numbers and CI smoke runs are comparable across machines and time.

use maritime::synth::{generate, ScaleTier, SynthConfig, SynthEvent};
use maritime::vessel::VesselId;
use std::collections::HashMap;

fn tiny() -> SynthConfig {
    SynthConfig {
        seed: 99,
        vessels: 25,
        steps: 120,
        period: 60,
    }
}

/// Renders a stream to one line per event — the byte-level fingerprint
/// the determinism pins compare.
fn fingerprint(config: &SynthConfig) -> String {
    config
        .stream()
        .map(|(ev, t)| format!("{t}\t{}\n", ev.render()))
        .collect()
}

#[test]
fn same_seed_is_byte_identical_across_runs() {
    let c = tiny();
    assert_eq!(fingerprint(&c), fingerprint(&c));
    // And materialisation agrees with itself term-for-term.
    let a = generate(&c);
    let b = generate(&c);
    assert_eq!(a.stream.events(), b.stream.events());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.background, b.background);
}

#[test]
fn different_seeds_differ() {
    let c = tiny();
    assert_ne!(fingerprint(&c), fingerprint(&c.with_seed(100)));
}

#[test]
fn chunked_consumption_equals_one_shot() {
    let c = tiny();
    let one_shot: Vec<(SynthEvent, i64)> = c.stream().collect();
    let mut chunked = Vec::new();
    let mut stream = c.stream();
    loop {
        // An awkward chunk size on purpose — it never aligns with step
        // boundaries, so the iterator's internal buffering is crossed.
        let chunk: Vec<_> = stream.by_ref().take(97).collect();
        if chunk.is_empty() {
            break;
        }
        chunked.extend(chunk);
    }
    assert_eq!(one_shot, chunked);
}

#[test]
fn per_vessel_timestamps_are_monotone() {
    let c = tiny();
    let mut last: HashMap<VesselId, i64> = HashMap::new();
    let mut global_last = 0;
    for (ev, t) in c.stream() {
        assert!(
            t >= global_last,
            "global order violated: {t} < {global_last}"
        );
        global_last = t;
        let l = last.entry(ev.vessel()).or_insert(0);
        assert!(
            t >= *l,
            "vessel {} went back in time: {t} < {l}",
            ev.vessel()
        );
        *l = t;
    }
}

#[test]
fn event_mix_is_within_pinned_tolerances() {
    let d = generate(&ScaleTier::Small.config());
    let s = d.stats;
    assert!(s.total > 0);
    // Kinematic reports dominate but never crowd out critical events.
    let velocity_frac = s.velocity as f64 / s.total as f64;
    assert!(
        (0.55..=0.995).contains(&velocity_frac),
        "velocity fraction {velocity_frac} out of tolerance ({s:?})"
    );
    // Every critical-event family the gold description consumes occurs.
    assert!(s.area_entries >= 5, "{s:?}");
    assert!(s.area_exits >= 5, "{s:?}");
    assert!(s.gap_starts >= 1, "{s:?}");
    assert!(s.stop_starts >= 5, "{s:?}");
    assert!(s.slow_starts >= 5, "{s:?}");
    assert!(s.speed_change_starts >= 5, "{s:?}");
    assert!(s.heading_changes >= 5, "{s:?}");
    // Area crossings balance to within the fleet size (a vessel can end
    // the stream inside an area it entered).
    let imbalance = s.area_entries.abs_diff(s.area_exits);
    assert!(
        imbalance <= d.vessels.len() * d.areas.areas().len(),
        "{s:?}"
    );
}

#[test]
fn tiers_parse_and_scale() {
    for tier in [ScaleTier::Small, ScaleTier::Smoke, ScaleTier::Brest] {
        assert_eq!(ScaleTier::parse(tier.name()), Some(tier));
    }
    assert_eq!(ScaleTier::parse("SMOKE"), Some(ScaleTier::Smoke));
    assert_eq!(ScaleTier::parse("huge"), None);
    let small = ScaleTier::Small.config();
    let smoke = ScaleTier::Smoke.config();
    let brest = ScaleTier::Brest.config();
    assert!(small.vessels < smoke.vessels && smoke.vessels < brest.vessels);
    assert!(brest.vessels >= 1_000, "Brest tier must be >=1K vessels");
}

#[test]
fn materialisation_matches_the_iterator() {
    let c = tiny();
    let d = generate(&c);
    let n = c.stream().count();
    assert_eq!(d.stream.len(), n);
    assert_eq!(d.stats.total, n);
    assert!(d.horizon() <= c.horizon());
    assert_eq!(d.vessels, c.fleet());
}

/// The big tiers are opt-in: this test sizes the smoke tier only when
/// `RTEC_SCALE_TIER=smoke` (or larger) is exported, so a default
/// `cargo test` never pays for a 200K-event generation.
#[test]
fn smoke_tier_reaches_contracted_size() {
    if !matches!(ScaleTier::from_env(), ScaleTier::Smoke | ScaleTier::Brest) {
        return;
    }
    let d = generate(&ScaleTier::Smoke.config());
    assert!(
        d.stats.total >= 150_000,
        "smoke tier too small: {:?}",
        d.stats
    );
    assert!(d.vessels.len() == 250);
}
