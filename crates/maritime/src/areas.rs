//! Areas of interest: the spatial background knowledge of the maritime
//! domain (`areaType/2` facts), laid out as a Brest-like coastal region.

use crate::geometry::{Point, Polygon};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Area kinds referenced by the maritime activity definitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AreaKind {
    /// Fishing grounds.
    Fishing,
    /// Designated anchorage.
    Anchorage,
    /// Environmentally protected (Natura 2000) area.
    Natura,
    /// Coastal band where speed is restricted.
    NearCoast,
    /// Vicinity of a port.
    NearPorts,
}

impl AreaKind {
    /// All kinds in a stable order.
    pub const ALL: [AreaKind; 5] = [
        AreaKind::Fishing,
        AreaKind::Anchorage,
        AreaKind::Natura,
        AreaKind::NearCoast,
        AreaKind::NearPorts,
    ];

    /// The RTEC constant naming this kind.
    pub fn as_atom(self) -> &'static str {
        match self {
            AreaKind::Fishing => "fishing",
            AreaKind::Anchorage => "anchorage",
            AreaKind::Natura => "natura",
            AreaKind::NearCoast => "nearCoast",
            AreaKind::NearPorts => "nearPorts",
        }
    }
}

/// An area identifier; rendered as the RTEC constant `a<n>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AreaId(pub u32);

impl fmt::Display for AreaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An area of interest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Area {
    /// Identifier.
    pub id: AreaId,
    /// Kind.
    pub kind: AreaKind,
    /// Geometry.
    pub polygon: Polygon,
}

/// The set of areas of the synthetic world.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AreaMap {
    areas: Vec<Area>,
}

impl AreaMap {
    /// Creates an empty map.
    pub fn new() -> AreaMap {
        AreaMap::default()
    }

    /// Adds an area, returning its id.
    pub fn add(&mut self, kind: AreaKind, polygon: Polygon) -> AreaId {
        let id = AreaId(self.areas.len() as u32);
        self.areas.push(Area { id, kind, polygon });
        id
    }

    /// All areas.
    pub fn areas(&self) -> &[Area] {
        &self.areas
    }

    /// The areas containing `p`.
    pub fn containing(&self, p: &Point) -> Vec<&Area> {
        self.areas
            .iter()
            .filter(|a| a.polygon.contains(p))
            .collect()
    }

    /// Whether `p` lies in some area of `kind`.
    pub fn in_kind(&self, p: &Point, kind: AreaKind) -> bool {
        self.areas
            .iter()
            .any(|a| a.kind == kind && a.polygon.contains(p))
    }

    /// The first area of `kind`, if any (scenario scripting helper).
    pub fn first_of(&self, kind: AreaKind) -> Option<&Area> {
        self.areas.iter().find(|a| a.kind == kind)
    }

    /// The `areaType/2` background facts in RTEC concrete syntax.
    pub fn background_facts(&self) -> String {
        let mut out = String::new();
        for a in &self.areas {
            out.push_str(&format!("areaType({}, {}).\n", a.id, a.kind.as_atom()));
        }
        out
    }

    /// The Brest-like layout used by the paper-scale scenario: a 60 km x
    /// 40 km coastal region with the shore along `y = 0`, two ports, a
    /// coastal band, an anchorage, two fishing grounds and a protected
    /// area.
    pub fn brest_like() -> AreaMap {
        let mut m = AreaMap::new();
        // Near-port boxes (3 km around each port).
        m.add(
            AreaKind::NearPorts,
            Polygon::rect(3_500.0, 0.0, 9_500.0, 4_500.0),
        );
        m.add(
            AreaKind::NearPorts,
            Polygon::rect(38_000.0, 0.0, 44_000.0, 4_500.0),
        );
        // Coastal band.
        m.add(
            AreaKind::NearCoast,
            Polygon::rect(0.0, 0.0, 60_000.0, 4_000.0),
        );
        // Anchorage off port 0.
        m.add(
            AreaKind::Anchorage,
            Polygon::rect(10_000.0, 5_000.0, 14_000.0, 8_000.0),
        );
        // Fishing grounds offshore.
        m.add(
            AreaKind::Fishing,
            Polygon::rect(15_000.0, 10_000.0, 25_000.0, 20_000.0),
        );
        m.add(
            AreaKind::Fishing,
            Polygon::rect(30_000.0, 12_000.0, 38_000.0, 22_000.0),
        );
        // Protected area.
        m.add(
            AreaKind::Natura,
            Polygon::rect(26_000.0, 8_000.0, 30_000.0, 12_000.0),
        );
        m
    }

    /// The two port anchor points of the Brest-like layout.
    pub fn ports() -> [Point; 2] {
        [Point::new(6_500.0, 1_500.0), Point::new(41_000.0, 1_500.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brest_layout_covers_expected_kinds() {
        let m = AreaMap::brest_like();
        for kind in AreaKind::ALL {
            assert!(m.first_of(kind).is_some(), "missing {kind:?}");
        }
    }

    #[test]
    fn ports_are_near_ports_and_near_coast() {
        let m = AreaMap::brest_like();
        for p in AreaMap::ports() {
            assert!(m.in_kind(&p, AreaKind::NearPorts));
            assert!(m.in_kind(&p, AreaKind::NearCoast));
        }
    }

    #[test]
    fn fishing_grounds_are_offshore() {
        let m = AreaMap::brest_like();
        let f = m.first_of(AreaKind::Fishing).unwrap();
        let c = f.polygon.centroid();
        assert!(!m.in_kind(&c, AreaKind::NearCoast));
        assert!(!m.in_kind(&c, AreaKind::NearPorts));
    }

    #[test]
    fn background_facts_render() {
        let m = AreaMap::brest_like();
        let facts = m.background_facts();
        assert!(facts.contains("areaType(a0, nearPorts)."));
        assert!(facts.contains("areaType(a4, fishing)."));
        // Must parse as RTEC facts.
        let desc = rtec::EventDescription::parse(&facts).unwrap();
        assert_eq!(desc.clauses.len(), m.areas().len());
    }

    #[test]
    fn containing_lists_overlaps() {
        let m = AreaMap::brest_like();
        let port = AreaMap::ports()[0];
        let hits = m.containing(&port);
        assert!(hits.len() >= 2); // nearPorts + nearCoast
    }
}
