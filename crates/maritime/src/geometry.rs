//! Planar geometry for the synthetic maritime world.
//!
//! The world is a flat plane in metres (a local tangent-plane approximation
//! is entirely adequate for a ~100 km coastal region); headings and courses
//! are degrees clockwise from north, speeds are knots.

use serde::{Deserialize, Serialize};

/// Metres per nautical mile.
pub const METRES_PER_NM: f64 = 1852.0;

/// Converts knots to metres per second.
pub fn knots_to_mps(kn: f64) -> f64 {
    kn * METRES_PER_NM / 3600.0
}

/// A point in the plane (metres).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// The point reached by moving `metres` along `heading_deg` (degrees
    /// clockwise from north).
    pub fn step(&self, heading_deg: f64, metres: f64) -> Point {
        let rad = heading_deg.to_radians();
        Point {
            x: self.x + metres * rad.sin(),
            y: self.y + metres * rad.cos(),
        }
    }

    /// The heading (degrees clockwise from north, in `[0, 360)`) from this
    /// point towards `other`.
    pub fn heading_to(&self, other: &Point) -> f64 {
        let deg = (other.x - self.x).atan2(other.y - self.y).to_degrees();
        (deg + 360.0) % 360.0
    }
}

/// Normalises an angle to `[0, 360)`.
pub fn normalize_deg(deg: f64) -> f64 {
    let d = deg % 360.0;
    if d < 0.0 {
        d + 360.0
    } else {
        d
    }
}

/// The absolute angular difference between two headings, in `[0, 180]`.
pub fn heading_diff(a: f64, b: f64) -> f64 {
    let d = (normalize_deg(a) - normalize_deg(b)).abs();
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

/// A simple polygon (vertices in order, implicitly closed).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Panics
    /// Panics with fewer than three vertices.
    pub fn new(vertices: Vec<Point>) -> Polygon {
        assert!(vertices.len() >= 3, "polygon needs >= 3 vertices");
        Polygon { vertices }
    }

    /// An axis-aligned rectangle `[x0, x1] x [y0, y1]`.
    pub fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::new(vec![
            Point::new(x0, y0),
            Point::new(x1, y0),
            Point::new(x1, y1),
            Point::new(x0, y1),
        ])
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Even-odd (ray casting) point-in-polygon test. Points exactly on an
    /// edge may fall on either side; the synthetic world never depends on
    /// boundary cases.
    pub fn contains(&self, p: &Point) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (vi, vj) = (&self.vertices[i], &self.vertices[j]);
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// The centroid of the vertices (adequate for convex scenario areas).
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len() as f64;
        let (sx, sy) = self
            .vertices
            .iter()
            .fold((0.0, 0.0), |(sx, sy), v| (sx + v.x, sy + v.y));
        Point::new(sx / n, sy / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_step() {
        let a = Point::new(0.0, 0.0);
        let b = a.step(90.0, 100.0);
        assert!((b.x - 100.0).abs() < 1e-9);
        assert!(b.y.abs() < 1e-9);
        assert!((a.distance(&b) - 100.0).abs() < 1e-9);
        let c = a.step(0.0, 50.0);
        assert!((c.y - 50.0).abs() < 1e-9);
    }

    #[test]
    fn heading_to_cardinal_points() {
        let o = Point::new(0.0, 0.0);
        assert!((o.heading_to(&Point::new(0.0, 1.0)) - 0.0).abs() < 1e-9);
        assert!((o.heading_to(&Point::new(1.0, 0.0)) - 90.0).abs() < 1e-9);
        assert!((o.heading_to(&Point::new(0.0, -1.0)) - 180.0).abs() < 1e-9);
        assert!((o.heading_to(&Point::new(-1.0, 0.0)) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn heading_diff_wraps() {
        assert!((heading_diff(350.0, 10.0) - 20.0).abs() < 1e-9);
        assert!((heading_diff(10.0, 350.0) - 20.0).abs() < 1e-9);
        assert!((heading_diff(0.0, 180.0) - 180.0).abs() < 1e-9);
        assert!((heading_diff(-10.0, 10.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rect_contains() {
        let r = Polygon::rect(0.0, 0.0, 10.0, 5.0);
        assert!(r.contains(&Point::new(5.0, 2.5)));
        assert!(!r.contains(&Point::new(11.0, 2.5)));
        assert!(!r.contains(&Point::new(5.0, 6.0)));
        assert!(!r.contains(&Point::new(-1.0, -1.0)));
    }

    #[test]
    fn non_convex_polygon_contains() {
        // L-shape.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(l.contains(&Point::new(0.5, 3.0)));
        assert!(l.contains(&Point::new(3.0, 0.5)));
        assert!(!l.contains(&Point::new(3.0, 3.0)));
    }

    #[test]
    fn knots_conversion() {
        assert!((knots_to_mps(1.0) - 0.514444).abs() < 1e-4);
    }

    #[test]
    fn centroid_of_rect() {
        let r = Polygon::rect(0.0, 0.0, 10.0, 20.0);
        let c = r.centroid();
        assert!((c.x - 5.0).abs() < 1e-9);
        assert!((c.y - 10.0).abs() < 1e-9);
    }
}
