//! # maritime — maritime situational awareness substrate
//!
//! The paper evaluates activity-definition generation on maritime
//! monitoring: AIS position signals from vessels around the port of Brest
//! are preprocessed into *critical events* (area entries, stops, speed
//! changes, communication gaps, ...) over which RTEC detects composite
//! activities such as trawling and ship-to-ship transfer.
//!
//! The original Brest dataset (18M signals, 5K vessels, Oct 2015–Mar 2016)
//! is not redistributable here, so this crate provides a faithful
//! *synthetic* substitute (see `DESIGN.md`, "Substitutions"):
//!
//! * [`geometry`] — planar geometry (point-in-polygon, distances);
//! * [`areas`] — a Brest-like map: port, near-port and coastal bands,
//!   fishing grounds, anchorages, protected areas;
//! * [`vessel`] — vessel identities, types and service speeds;
//! * [`ais`] — AIS position signals and trajectory segments;
//! * [`scenario`] — scripted vessel behaviours (trawling runs, tugging
//!   pairs, pilot boarding, loitering, drifting, SAR sweeps, gaps);
//! * [`preprocess`] — derivation of the critical-event stream and the
//!   `proximity` input fluent from raw AIS, as in the maritime RTEC
//!   pipeline;
//! * [`thresholds`] — the domain's background knowledge (thresholds,
//!   vessel-type service speeds) rendered as RTEC facts;
//! * [`gold`] — the hand-crafted gold-standard event description (after
//!   Pitsikalis et al., DEBS 2019) and the catalogue of the eight target
//!   activities of the paper's evaluation;
//! * [`dataset`] — end-to-end construction of a replayable
//!   [`rtec::stream::InputStream`] plus the gold event description;
//! * [`synth`] — a seeded Brest-scale generator that emits millions of
//!   critical events directly from per-vessel kinematic state machines
//!   (no raw-AIS detour), tiered via `RTEC_SCALE_TIER`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ais;
pub mod areas;
pub mod csv;
pub mod dataset;
pub mod geometry;
pub mod gold;
pub mod preprocess;
pub mod scenario;
pub mod stats;
pub mod synth;
pub mod thresholds;
pub mod vessel;

pub use dataset::{BrestScenario, Dataset};
pub use gold::{activities, gold_event_description, Activity};
pub use synth::{ScaleTier, SynthConfig, SynthDataset};
