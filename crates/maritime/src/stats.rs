//! Descriptive statistics over streams and datasets, for experiment
//! reports and sanity checks.

use rtec::stream::InputStream;
use rtec_obs::CountTable;

/// Event-type histogram and time bounds of a critical-event stream.
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    /// Total number of events.
    pub events: usize,
    /// Events per functor name, sorted by name.
    pub by_kind: CountTable,
    /// Number of input-fluent interval entries (e.g. proximity pairs).
    pub input_intervals: usize,
    /// First event time.
    pub first: i64,
    /// Last event time.
    pub last: i64,
}

impl StreamStats {
    /// Computes the statistics of a stream.
    pub fn of(stream: &InputStream) -> StreamStats {
        let mut by_kind = CountTable::new();
        let mut first = i64::MAX;
        let mut last = i64::MIN;
        for (ev, t) in stream.events() {
            let name = ev
                .functor()
                .and_then(|f| stream.symbols.try_name(f))
                .unwrap_or("?");
            by_kind.increment(name);
            first = first.min(*t);
            last = last.max(*t);
        }
        if stream.is_empty() {
            first = 0;
            last = 0;
        }
        StreamStats {
            events: stream.len(),
            by_kind,
            input_intervals: stream.intervals().len(),
            first,
            last,
        }
    }

    /// Renders a compact text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} events over [{}, {}] s, {} input-fluent entries\n",
            self.events, self.first, self.last, self.input_intervals
        );
        out.push_str(&self.by_kind.render(24));
        out
    }

    /// The count for one event kind (0 if absent).
    pub fn count(&self, kind: &str) -> usize {
        self.by_kind.count(kind) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{BrestScenario, Dataset};

    #[test]
    fn stats_cover_all_event_kinds() {
        let d = Dataset::generate(&BrestScenario::small());
        let s = StreamStats::of(&d.stream);
        assert_eq!(s.events, d.stream.len());
        // Every critical-event kind the preprocessing can emit occurs in
        // the small scenario.
        for kind in [
            "velocity",
            "entersArea",
            "leavesArea",
            "stop_start",
            "stop_end",
            "slow_motion_start",
            "slow_motion_end",
            "change_in_speed_start",
            "change_in_heading",
            "gap_start",
            "gap_end",
        ] {
            assert!(s.count(kind) > 0, "missing {kind}\n{}", s.render());
        }
        // velocity dominates (one per signal).
        assert_eq!(s.count("velocity"), d.signal_count());
        assert!(s.input_intervals >= 2);
        assert!(s.last > s.first);
        let table = s.render();
        assert!(table.contains("velocity"));
    }

    #[test]
    fn empty_stream_stats() {
        let s = StreamStats::of(&InputStream::new());
        assert_eq!(s.events, 0);
        assert_eq!(s.first, 0);
        assert_eq!(s.last, 0);
        assert_eq!(s.count("velocity"), 0);
    }
}
