//! Seeded Brest-scale synthetic critical-event generator.
//!
//! [`dataset`](crate::dataset) scripts a few dozen vessels through
//! behaviour blocks and derives critical events from raw AIS tracks —
//! faithful, but far from the original Brest dataset's scale (18M
//! signals from 5K vessels). This module generates critical events
//! *directly* from per-vessel kinematic state machines, which makes
//! streams of millions of events cheap enough for benchmarks and CI:
//!
//! * every vessel is an independent state machine (in port → under way
//!   → stopped / drifting / AIS gap → …) driven by its own
//!   `splitmix64` generator seeded from the global seed and the vessel
//!   index, so the stream is **deterministic per seed** and identical
//!   whether consumed in one shot or in chunks;
//! * vessels move through the [`AreaMap::brest_like`] layout and emit
//!   `entersArea`/`leavesArea` against the real area polygons;
//! * speed-band crossings emit the same start/end critical events as
//!   the [`preprocess`](crate::preprocess) pipeline (`stop_start`,
//!   `slow_motion_start`, `change_in_speed_start`, …), so the
//!   [`gold`](crate::gold) event description runs unmodified over the
//!   synthetic stream.
//!
//! The `proximity` input fluent is **not** synthesised: pairwise
//! proximity is quadratic in the fleet and the scale tiers exist to
//! stress windowing, not pair detection. Activities that require it
//! (tugging, pilot boarding, rendezvous) are exercised by the scripted
//! [`dataset`](crate::dataset) instead; see `docs/SCALE.md`.
//!
//! Stream sizes are organised in [`ScaleTier`]s selected with the
//! `RTEC_SCALE_TIER` environment variable so `cargo test` stays fast by
//! default while CI and benchmarks can opt into larger streams.

use crate::areas::{AreaId, AreaMap};
use crate::geometry::{heading_diff, knots_to_mps, normalize_deg, Point};
use crate::gold::GOLD_RULES;
use crate::thresholds::{fleet_background_facts, Thresholds};
use crate::vessel::{Vessel, VesselId, VesselType};
use rtec::interval::Timepoint;
use rtec::stream::InputStream;
use rtec::symbol::{Symbol, SymbolTable};
use rtec::term::Term;
use rtec::EventDescription;
use std::collections::{HashMap, VecDeque};

/// Stream-size tiers, selected with the `RTEC_SCALE_TIER` environment
/// variable. The default keeps `cargo test` fast; the larger tiers are
/// opted into by CI smoke jobs and benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleTier {
    /// ~6K events from 40 vessels — the default for unit tests.
    Small,
    /// ~200K events from 250 vessels — the CI `scale-smoke` tier.
    Smoke,
    /// ≥1M events from 1,250 vessels — Brest-scale, for benchmarks.
    Brest,
}

impl ScaleTier {
    /// Parses a tier name (`small`, `smoke`, `brest`).
    pub fn parse(s: &str) -> Option<ScaleTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "small" => Some(ScaleTier::Small),
            "smoke" => Some(ScaleTier::Smoke),
            "brest" => Some(ScaleTier::Brest),
            _ => None,
        }
    }

    /// The tier requested via `RTEC_SCALE_TIER` (default: `small`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised tier name — a typo in a CI matrix
    /// should fail loudly, not silently shrink the stream.
    pub fn from_env() -> ScaleTier {
        match std::env::var("RTEC_SCALE_TIER") {
            Ok(s) => ScaleTier::parse(&s)
                .unwrap_or_else(|| panic!("unknown RTEC_SCALE_TIER {s:?} (small|smoke|brest)")),
            Err(_) => ScaleTier::Small,
        }
    }

    /// The tier's name as accepted by [`ScaleTier::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ScaleTier::Small => "small",
            ScaleTier::Smoke => "smoke",
            ScaleTier::Brest => "brest",
        }
    }

    /// The generator configuration for this tier.
    pub fn config(self) -> SynthConfig {
        match self {
            ScaleTier::Small => SynthConfig {
                seed: 2025,
                vessels: 40,
                steps: 150,
                period: 60,
            },
            ScaleTier::Smoke => SynthConfig {
                seed: 2025,
                vessels: 250,
                steps: 800,
                period: 60,
            },
            ScaleTier::Brest => SynthConfig {
                seed: 2025,
                vessels: 1_250,
                steps: 1_000,
                period: 60,
            },
        }
    }
}

/// Generator configuration. Streams are a pure function of this value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthConfig {
    /// Global seed; every per-vessel generator derives from it.
    pub seed: u64,
    /// Fleet size.
    pub vessels: usize,
    /// Reporting period in seconds (time between steps).
    pub period: i64,
    /// Simulation steps; each vessel reports once per step.
    pub steps: usize,
}

impl SynthConfig {
    /// Replaces the seed, keeping the tier geometry.
    pub fn with_seed(mut self, seed: u64) -> SynthConfig {
        self.seed = seed;
        self
    }

    /// The fleet this configuration generates (types are drawn from the
    /// same per-vessel generators that drive the state machines).
    pub fn fleet(&self) -> Vec<Vessel> {
        (0..self.vessels)
            .map(|i| {
                let mut rng = vessel_rng(self.seed, i);
                Vessel::new(i as u32, draw_type(&mut rng))
            })
            .collect()
    }

    /// A streaming iterator over the configured event stream, in global
    /// time order. Chunked consumption is byte-identical to one-shot.
    pub fn stream(&self) -> SynthStream {
        SynthStream::new(*self)
    }

    /// The last event time-point of the configured stream.
    pub fn horizon(&self) -> Timepoint {
        self.steps as Timepoint * self.period
    }

    /// The background knowledge (areas, thresholds, fleet, input
    /// schema) this configuration's stream runs under, in RTEC concrete
    /// syntax — the same assembly [`generate`] attaches to its dataset.
    pub fn background(&self) -> String {
        let areas = AreaMap::brest_like();
        let thresholds = Thresholds::default();
        format!(
            "{}\n{}\n{}\n{}",
            areas.background_facts(),
            thresholds.background_facts(),
            fleet_background_facts(&self.fleet()),
            crate::gold::input_declarations(),
        )
    }
}

/// A synthetic critical event, before interning into a symbol table.
///
/// Keeping the events symbolic makes byte-identity checks (`render`)
/// and cross-table interning cheap.
#[derive(Clone, Debug, PartialEq)]
pub enum SynthEvent {
    /// AIS kinematic report `velocity(V, Speed, Heading, CourseOverGround)`.
    Velocity {
        /// Reporting vessel.
        vessel: VesselId,
        /// Speed over ground, knots (1 decimal).
        speed: f64,
        /// Heading, degrees (1 decimal).
        heading: f64,
        /// Course over ground, degrees (1 decimal).
        cog: f64,
    },
    /// The vessel crossed into an area of interest.
    EntersArea {
        /// Crossing vessel.
        vessel: VesselId,
        /// Area entered.
        area: AreaId,
    },
    /// The vessel crossed out of an area of interest.
    LeavesArea {
        /// Crossing vessel.
        vessel: VesselId,
        /// Area left.
        area: AreaId,
    },
    /// AIS transmission gap began.
    GapStart {
        /// Silent vessel.
        vessel: VesselId,
    },
    /// AIS transmission resumed.
    GapEnd {
        /// Resuming vessel.
        vessel: VesselId,
    },
    /// Speed dropped into the stopped band.
    StopStart {
        /// Stopping vessel.
        vessel: VesselId,
    },
    /// Speed left the stopped band.
    StopEnd {
        /// Resuming vessel.
        vessel: VesselId,
    },
    /// Speed entered the slow-motion band.
    SlowMotionStart {
        /// Slowing vessel.
        vessel: VesselId,
    },
    /// Speed left the slow-motion band.
    SlowMotionEnd {
        /// Accelerating vessel.
        vessel: VesselId,
    },
    /// Speed began changing faster than the threshold.
    ChangeInSpeedStart {
        /// Accelerating/decelerating vessel.
        vessel: VesselId,
    },
    /// Speed change fell back under the threshold.
    ChangeInSpeedEnd {
        /// Stabilised vessel.
        vessel: VesselId,
    },
    /// Heading changed by more than the threshold in one step.
    ChangeInHeading {
        /// Turning vessel.
        vessel: VesselId,
    },
}

impl SynthEvent {
    /// The reporting vessel.
    pub fn vessel(&self) -> VesselId {
        match self {
            SynthEvent::Velocity { vessel, .. }
            | SynthEvent::EntersArea { vessel, .. }
            | SynthEvent::LeavesArea { vessel, .. }
            | SynthEvent::GapStart { vessel }
            | SynthEvent::GapEnd { vessel }
            | SynthEvent::StopStart { vessel }
            | SynthEvent::StopEnd { vessel }
            | SynthEvent::SlowMotionStart { vessel }
            | SynthEvent::SlowMotionEnd { vessel }
            | SynthEvent::ChangeInSpeedStart { vessel }
            | SynthEvent::ChangeInSpeedEnd { vessel }
            | SynthEvent::ChangeInHeading { vessel } => *vessel,
        }
    }

    /// The event in RTEC concrete syntax, e.g. `entersArea(v3, a4)`.
    pub fn render(&self) -> String {
        match self {
            SynthEvent::Velocity {
                vessel,
                speed,
                heading,
                cog,
            } => format!("velocity({vessel}, {speed:.1}, {heading:.1}, {cog:.1})"),
            SynthEvent::EntersArea { vessel, area } => format!("entersArea({vessel}, {area})"),
            SynthEvent::LeavesArea { vessel, area } => format!("leavesArea({vessel}, {area})"),
            SynthEvent::GapStart { vessel } => format!("gap_start({vessel})"),
            SynthEvent::GapEnd { vessel } => format!("gap_end({vessel})"),
            SynthEvent::StopStart { vessel } => format!("stop_start({vessel})"),
            SynthEvent::StopEnd { vessel } => format!("stop_end({vessel})"),
            SynthEvent::SlowMotionStart { vessel } => format!("slow_motion_start({vessel})"),
            SynthEvent::SlowMotionEnd { vessel } => format!("slow_motion_end({vessel})"),
            SynthEvent::ChangeInSpeedStart { vessel } => {
                format!("change_in_speed_start({vessel})")
            }
            SynthEvent::ChangeInSpeedEnd { vessel } => format!("change_in_speed_end({vessel})"),
            SynthEvent::ChangeInHeading { vessel } => format!("change_in_heading({vessel})"),
        }
    }
}

/// Event-mix counters of a generated stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Total events.
    pub total: usize,
    /// Kinematic reports.
    pub velocity: usize,
    /// `entersArea` crossings.
    pub area_entries: usize,
    /// `leavesArea` crossings.
    pub area_exits: usize,
    /// AIS gaps begun.
    pub gap_starts: usize,
    /// Stopped-band entries.
    pub stop_starts: usize,
    /// Slow-motion-band entries.
    pub slow_starts: usize,
    /// Speed-change episodes begun.
    pub speed_change_starts: usize,
    /// Sharp turns.
    pub heading_changes: usize,
}

impl SynthStats {
    /// Counts one event.
    pub fn count(&mut self, ev: &SynthEvent) {
        self.total += 1;
        match ev {
            SynthEvent::Velocity { .. } => self.velocity += 1,
            SynthEvent::EntersArea { .. } => self.area_entries += 1,
            SynthEvent::LeavesArea { .. } => self.area_exits += 1,
            SynthEvent::GapStart { .. } => self.gap_starts += 1,
            SynthEvent::StopStart { .. } => self.stop_starts += 1,
            SynthEvent::SlowMotionStart { .. } => self.slow_starts += 1,
            SynthEvent::ChangeInSpeedStart { .. } => self.speed_change_starts += 1,
            SynthEvent::ChangeInHeading { .. } => self.heading_changes += 1,
            _ => {}
        }
    }
}

/// A generated dataset: the fleet, the interned stream and the
/// background knowledge the gold description needs to run over it.
#[derive(Debug)]
pub struct SynthDataset {
    /// The fleet.
    pub vessels: Vec<Vessel>,
    /// The areas of interest (always [`AreaMap::brest_like`]).
    pub areas: AreaMap,
    /// The replayable critical-event stream.
    pub stream: InputStream,
    /// Background knowledge in RTEC concrete syntax.
    pub background: String,
    /// Event-mix counters.
    pub stats: SynthStats,
}

impl SynthDataset {
    /// The gold event description over this dataset's background.
    pub fn gold_description(&self) -> EventDescription {
        let src = format!("{}\n{}", GOLD_RULES, self.background);
        EventDescription::parse(&src).expect("gold + synth background parse")
    }

    /// Last event time.
    pub fn horizon(&self) -> Timepoint {
        self.stream.horizon()
    }
}

/// Generates and materialises the configured stream.
pub fn generate(config: &SynthConfig) -> SynthDataset {
    let areas = AreaMap::brest_like();
    let vessels = config.fleet();
    let mut stream = InputStream::new();
    let mut interner = Interner::new(&mut stream.symbols);
    let mut stats = SynthStats::default();
    for (ev, t) in config.stream() {
        stats.count(&ev);
        let term = interner.term(&mut stream.symbols, &ev);
        stream.push_event(term, t);
    }
    let background = config.background();
    SynthDataset {
        vessels,
        areas,
        stream,
        background,
        stats,
    }
}

/// Interns [`SynthEvent`]s into an [`InputStream`]'s symbol table,
/// memoising the functor, vessel and area atoms.
struct Interner {
    velocity: Symbol,
    enters_area: Symbol,
    leaves_area: Symbol,
    gap_start: Symbol,
    gap_end: Symbol,
    stop_start: Symbol,
    stop_end: Symbol,
    slow_start: Symbol,
    slow_end: Symbol,
    speed_ch_start: Symbol,
    speed_ch_end: Symbol,
    heading_ch: Symbol,
    vessels: HashMap<VesselId, Term>,
    areas: HashMap<AreaId, Term>,
}

impl Interner {
    fn new(s: &mut SymbolTable) -> Interner {
        Interner {
            velocity: s.intern("velocity"),
            enters_area: s.intern("entersArea"),
            leaves_area: s.intern("leavesArea"),
            gap_start: s.intern("gap_start"),
            gap_end: s.intern("gap_end"),
            stop_start: s.intern("stop_start"),
            stop_end: s.intern("stop_end"),
            slow_start: s.intern("slow_motion_start"),
            slow_end: s.intern("slow_motion_end"),
            speed_ch_start: s.intern("change_in_speed_start"),
            speed_ch_end: s.intern("change_in_speed_end"),
            heading_ch: s.intern("change_in_heading"),
            vessels: HashMap::new(),
            areas: HashMap::new(),
        }
    }

    fn vessel_term(&mut self, s: &mut SymbolTable, v: VesselId) -> Term {
        if let Some(t) = self.vessels.get(&v) {
            return t.clone();
        }
        let t = Term::Atom(s.intern(&v.to_string()));
        self.vessels.insert(v, t.clone());
        t
    }

    fn area_term(&mut self, s: &mut SymbolTable, a: AreaId) -> Term {
        if let Some(t) = self.areas.get(&a) {
            return t.clone();
        }
        let t = Term::Atom(s.intern(&a.to_string()));
        self.areas.insert(a, t.clone());
        t
    }

    fn term(&mut self, s: &mut SymbolTable, ev: &SynthEvent) -> Term {
        let unary = |f: Symbol, v: Term| Term::Compound(f, vec![v]);
        match ev {
            SynthEvent::Velocity {
                vessel,
                speed,
                heading,
                cog,
            } => Term::Compound(
                self.velocity,
                vec![
                    self.vessel_term(s, *vessel),
                    Term::Float(*speed),
                    Term::Float(*heading),
                    Term::Float(*cog),
                ],
            ),
            SynthEvent::EntersArea { vessel, area } => Term::Compound(
                self.enters_area,
                vec![self.vessel_term(s, *vessel), self.area_term(s, *area)],
            ),
            SynthEvent::LeavesArea { vessel, area } => Term::Compound(
                self.leaves_area,
                vec![self.vessel_term(s, *vessel), self.area_term(s, *area)],
            ),
            SynthEvent::GapStart { vessel } => unary(self.gap_start, self.vessel_term(s, *vessel)),
            SynthEvent::GapEnd { vessel } => unary(self.gap_end, self.vessel_term(s, *vessel)),
            SynthEvent::StopStart { vessel } => {
                unary(self.stop_start, self.vessel_term(s, *vessel))
            }
            SynthEvent::StopEnd { vessel } => unary(self.stop_end, self.vessel_term(s, *vessel)),
            SynthEvent::SlowMotionStart { vessel } => {
                unary(self.slow_start, self.vessel_term(s, *vessel))
            }
            SynthEvent::SlowMotionEnd { vessel } => {
                unary(self.slow_end, self.vessel_term(s, *vessel))
            }
            SynthEvent::ChangeInSpeedStart { vessel } => {
                unary(self.speed_ch_start, self.vessel_term(s, *vessel))
            }
            SynthEvent::ChangeInSpeedEnd { vessel } => {
                unary(self.speed_ch_end, self.vessel_term(s, *vessel))
            }
            SynthEvent::ChangeInHeading { vessel } => {
                unary(self.heading_ch, self.vessel_term(s, *vessel))
            }
        }
    }
}

// --- per-vessel state machines ---------------------------------------

/// `splitmix64`: tiny, fast, and good enough for kinematic noise. Using
/// a hand-rolled generator (instead of `rand`) keeps the stream's
/// byte-identity independent of external crate versions.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

fn vessel_rng(seed: u64, index: usize) -> SplitMix64 {
    SplitMix64::new(seed.wrapping_add((index as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Fleet composition, weighted towards the classes the activity
/// definitions exercise most. Must be the FIRST draw from the
/// per-vessel generator so [`SynthConfig::fleet`] agrees with the state
/// machines.
fn draw_type(rng: &mut SplitMix64) -> VesselType {
    const WEIGHTED: [(VesselType, u64); 7] = [
        (VesselType::Fishing, 30),
        (VesselType::Cargo, 20),
        (VesselType::Tanker, 15),
        (VesselType::Passenger, 10),
        (VesselType::Tug, 10),
        (VesselType::Sar, 10),
        (VesselType::PilotVessel, 5),
    ];
    let mut r = rng.next_u64() % 100;
    for (t, w) in WEIGHTED {
        if r < w {
            return t;
        }
        r -= w;
    }
    VesselType::Fishing
}

#[derive(Clone, Copy, Debug)]
enum Phase {
    InPort { until: Timepoint },
    Underway,
    Stopped { until: Timepoint },
    Drifting { until: Timepoint },
    Gap { until: Timepoint },
}

/// World bounds of the Brest-like layout (see [`AreaMap::brest_like`]).
const WORLD_X: f64 = 60_000.0;
const WORLD_Y: f64 = 40_000.0;

struct VesselState {
    id: VesselId,
    rng: SplitMix64,
    period: i64,
    pos: Point,
    heading: f64,
    speed: f64,
    cruise: f64,
    phase: Phase,
    // Speed-band flags mirrored by the emitted start/end events.
    stopped: bool,
    slow: bool,
    speed_changing: bool,
    // Area membership at the last *reported* step (silent drift during
    // an AIS gap is reconciled when transmission resumes).
    inside: Vec<bool>,
}

impl VesselState {
    fn new(config: &SynthConfig, index: usize, areas: &AreaMap) -> VesselState {
        let mut rng = vessel_rng(config.seed, index);
        let vtype = draw_type(&mut rng); // keep in lockstep with `fleet()`
        let (lo, hi) = vtype.service_speed();
        let cruise = rng.range(lo, hi);
        let in_port = rng.chance(0.3);
        let (pos, speed, phase) = if in_port {
            let port = AreaMap::ports()[index % 2];
            let dwell = (rng.range(5.0, 20.0) as i64) * config.period;
            (port, 0.0, Phase::InPort { until: dwell })
        } else {
            let pos = Point::new(rng.range(5_000.0, 55_000.0), rng.range(6_000.0, 34_000.0));
            (pos, cruise * rng.range(0.5, 1.0), Phase::Underway)
        };
        let heading = rng.range(0.0, 360.0);
        let inside = areas
            .areas()
            .iter()
            .map(|a| a.polygon.contains(&pos))
            .collect();
        VesselState {
            id: VesselId(index as u32),
            rng,
            period: config.period,
            pos,
            heading,
            speed,
            cruise,
            phase,
            stopped: speed <= 0.5,
            slow: speed > 0.5 && speed <= 5.0,
            speed_changing: false,
            inside,
        }
    }

    fn dwell(&mut self, lo_steps: f64, hi_steps: f64) -> Timepoint {
        (self.rng.range(lo_steps, hi_steps) as i64) * self.period
    }

    /// Advances one reporting step, appending this vessel's events at
    /// time `t` to `out`.
    fn step(&mut self, t: Timepoint, areas: &AreaMap, out: &mut Vec<(SynthEvent, Timepoint)>) {
        let prev_speed = self.speed;
        let prev_heading = self.heading;
        let was_silent = matches!(self.phase, Phase::Gap { .. });

        // Phase transitions and kinematics.
        let mut gap_ended = false;
        match self.phase {
            Phase::InPort { until } => {
                self.speed = 0.0;
                if t >= until {
                    // Depart roughly offshore (+y is away from the coast).
                    self.heading = normalize_deg(self.rng.range(-50.0, 50.0));
                    self.speed = self.cruise * 0.3;
                    self.phase = Phase::Underway;
                }
            }
            Phase::Underway => self.step_underway(t),
            Phase::Stopped { until } => {
                self.speed = 0.0;
                if t >= until {
                    self.speed = self.cruise * 0.4;
                    self.phase = Phase::Underway;
                }
            }
            Phase::Drifting { until } => {
                self.speed = self.rng.range(0.8, 2.0);
                if t >= until {
                    self.phase = Phase::Underway;
                }
            }
            Phase::Gap { until } => {
                if t >= until {
                    gap_ended = true;
                    self.phase = Phase::Underway;
                }
            }
        }

        // Movement (AIS gaps do not stop the vessel, only its radio).
        let metres = knots_to_mps(self.speed) * self.period as f64;
        let mut next = self.pos.step(self.heading, metres);
        if next.x < 0.0 || next.x > WORLD_X || next.y < 0.0 || next.y > WORLD_Y {
            next = Point::new(next.x.clamp(0.0, WORLD_X), next.y.clamp(0.0, WORLD_Y));
            // Turn back towards the interior with some scatter.
            let inward = next.heading_to(&Point::new(WORLD_X / 2.0, WORLD_Y / 2.0));
            self.heading = normalize_deg(inward + self.rng.range(-20.0, 20.0));
        }
        self.pos = next;

        let silent = matches!(self.phase, Phase::Gap { .. });
        if gap_ended {
            out.push((SynthEvent::GapEnd { vessel: self.id }, t));
        }
        if silent {
            if !was_silent {
                out.push((SynthEvent::GapStart { vessel: self.id }, t));
            }
            return; // no reports while the transponder is off
        }

        // Speed-band crossings.
        let stopped = self.speed <= 0.5;
        if stopped != self.stopped {
            self.stopped = stopped;
            out.push((
                if stopped {
                    SynthEvent::StopStart { vessel: self.id }
                } else {
                    SynthEvent::StopEnd { vessel: self.id }
                },
                t,
            ));
        }
        let slow = self.speed > 0.5 && self.speed <= 5.0;
        if slow != self.slow {
            self.slow = slow;
            out.push((
                if slow {
                    SynthEvent::SlowMotionStart { vessel: self.id }
                } else {
                    SynthEvent::SlowMotionEnd { vessel: self.id }
                },
                t,
            ));
        }
        let changing = (self.speed - prev_speed).abs() > 1.5;
        if changing != self.speed_changing {
            self.speed_changing = changing;
            out.push((
                if changing {
                    SynthEvent::ChangeInSpeedStart { vessel: self.id }
                } else {
                    SynthEvent::ChangeInSpeedEnd { vessel: self.id }
                },
                t,
            ));
        }
        if heading_diff(prev_heading, self.heading) >= 15.0 {
            out.push((SynthEvent::ChangeInHeading { vessel: self.id }, t));
        }

        // Area crossings: exits first, then entries.
        for (i, a) in areas.areas().iter().enumerate() {
            if self.inside[i] && !a.polygon.contains(&self.pos) {
                self.inside[i] = false;
                out.push((
                    SynthEvent::LeavesArea {
                        vessel: self.id,
                        area: a.id,
                    },
                    t,
                ));
            }
        }
        for (i, a) in areas.areas().iter().enumerate() {
            if !self.inside[i] && a.polygon.contains(&self.pos) {
                self.inside[i] = true;
                out.push((
                    SynthEvent::EntersArea {
                        vessel: self.id,
                        area: a.id,
                    },
                    t,
                ));
            }
        }

        let cog = if matches!(self.phase, Phase::Drifting { .. }) {
            normalize_deg(self.heading + 45.0)
        } else {
            self.heading
        };
        out.push((
            SynthEvent::Velocity {
                vessel: self.id,
                speed: round1(self.speed),
                heading: round1(normalize_deg(self.heading)),
                cog: round1(cog),
            },
            t,
        ));
    }

    fn step_underway(&mut self, t: Timepoint) {
        // Accelerate towards the service speed.
        let d = self.cruise - self.speed;
        self.speed += d.clamp(-2.0, 2.0);
        if self.rng.chance(0.05) {
            self.heading = normalize_deg(self.heading + self.rng.range(-60.0, 60.0));
        }
        if self.rng.chance(0.010) {
            let until = t + self.dwell(10.0, 40.0);
            self.phase = Phase::Stopped { until };
        } else if self.rng.chance(0.004) {
            let until = t + self.dwell(10.0, 30.0);
            self.phase = Phase::Drifting { until };
        } else if self.rng.chance(0.002) {
            // Gaps outlast the preprocessor's 1800 s threshold.
            let until = t + self.dwell(35.0, 65.0);
            self.phase = Phase::Gap { until };
        }
    }
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// A streaming iterator over the synthetic event stream in global time
/// order.
///
/// All vessels report on the same time grid (`t = (step + 1) * period`,
/// so the first report is strictly after the engines' initial
/// frontier); within a time-point, events are ordered by vessel index
/// and, per vessel, by the fixed emission order of the state machine.
/// The iterator holds only the per-vessel states plus one step's worth
/// of buffered events, so arbitrarily long streams never materialise.
pub struct SynthStream {
    config: SynthConfig,
    areas: AreaMap,
    vessels: Vec<VesselState>,
    step: usize,
    buf: VecDeque<(SynthEvent, Timepoint)>,
    scratch: Vec<(SynthEvent, Timepoint)>,
}

impl SynthStream {
    /// Creates the stream for a configuration.
    pub fn new(config: SynthConfig) -> SynthStream {
        let areas = AreaMap::brest_like();
        let vessels = (0..config.vessels)
            .map(|i| VesselState::new(&config, i, &areas))
            .collect();
        SynthStream {
            config,
            areas,
            vessels,
            step: 0,
            buf: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }
}

impl Iterator for SynthStream {
    type Item = (SynthEvent, Timepoint);

    fn next(&mut self) -> Option<(SynthEvent, Timepoint)> {
        loop {
            if let Some(ev) = self.buf.pop_front() {
                return Some(ev);
            }
            if self.step >= self.config.steps {
                return None;
            }
            let t = (self.step as Timepoint + 1) * self.config.period;
            for v in &mut self.vessels {
                v.step(t, &self.areas, &mut self.scratch);
            }
            self.buf.extend(self.scratch.drain(..));
            self.step += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SynthConfig {
        SynthConfig {
            seed: 7,
            vessels: 12,
            steps: 60,
            period: 60,
        }
    }

    #[test]
    fn fleet_matches_state_machines() {
        let c = tiny();
        let fleet = c.fleet();
        assert_eq!(fleet.len(), c.vessels);
        // Types must come from the same draws the state machines use.
        let again = c.fleet();
        assert_eq!(fleet, again);
    }

    #[test]
    fn stream_is_time_ordered_and_bounded() {
        let c = tiny();
        let mut last = 0;
        let mut n = 0usize;
        for (_, t) in c.stream() {
            assert!(t >= last, "time went backwards: {t} < {last}");
            assert!(t >= c.period && t <= c.horizon());
            last = t;
            n += 1;
        }
        assert!(n > c.vessels * c.steps / 2, "suspiciously few events: {n}");
    }

    #[test]
    fn gold_description_runs_over_synth_stream() {
        let d = generate(&tiny());
        let desc = d.gold_description();
        let compiled = desc.compile().unwrap();
        assert!(
            !compiled.report.has_errors(),
            "{:?}",
            compiled.report.errors().collect::<Vec<_>>()
        );
        let mut engine = rtec::Engine::new(&compiled, rtec::EngineConfig::default());
        d.stream.load_into(&mut engine);
        let out = engine.run_to(d.horizon() + 1);
        // The synthetic world must produce *some* recognition (gaps and
        // stops are guaranteed by the mix tolerances in tests/synth.rs).
        assert!(
            out.iter().next().is_some(),
            "no fluent ever held over the synth stream; warnings: {:?}",
            out.warnings
        );
    }
}
