//! End-to-end construction of the synthetic Brest-like dataset: fleet,
//! scripted behaviours, AIS tracks, critical-event stream and the gold
//! event description with its background knowledge.

use crate::ais::Trajectory;
use crate::areas::{AreaKind, AreaMap};
use crate::geometry::Point;
use crate::gold::GOLD_RULES;
use crate::preprocess::{preprocess, PreprocessConfig};
use crate::scenario::TrajectoryBuilder;
use crate::thresholds::{fleet_background_facts, Thresholds};
use crate::vessel::{Vessel, VesselId, VesselType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtec::stream::InputStream;
use rtec::EventDescription;

/// Configuration of the synthetic scenario. The defaults give a dataset
/// that exercises all eight activities in a few seconds of processing;
/// scale `repeats` and the fleet counts up for paper-scale streams.
#[derive(Clone, Copy, Debug)]
pub struct BrestScenario {
    /// RNG seed; every run with the same configuration is identical.
    pub seed: u64,
    /// AIS reporting period, seconds.
    pub sample_period: i64,
    /// Number of trawler round-trips (each also a `withinArea` exercise).
    pub trawlers: usize,
    /// Cargo/tanker transits, half of which speed near the coast.
    pub transits: usize,
    /// Vessels that anchor in the anchorage or moor near a port.
    pub anchored: usize,
    /// Tug+tow pairs.
    pub tug_pairs: usize,
    /// Pilot-boarding pairs.
    pub pilot_pairs: usize,
    /// Loitering vessels.
    pub loiterers: usize,
    /// Search-and-rescue sweeps.
    pub sar: usize,
    /// Drifting vessels.
    pub drifters: usize,
    /// Ship-to-ship transfer (rendezvous) pairs — the extension activity
    /// beyond Figure 2's eight.
    pub rendezvous_pairs: usize,
    /// How many times to repeat each behaviour block along the timeline
    /// (scales the stream length linearly).
    pub repeats: usize,
}

impl Default for BrestScenario {
    fn default() -> Self {
        BrestScenario {
            seed: 42,
            sample_period: 60,
            trawlers: 2,
            transits: 2,
            anchored: 2,
            tug_pairs: 1,
            pilot_pairs: 1,
            loiterers: 1,
            sar: 1,
            drifters: 1,
            rendezvous_pairs: 1,
            repeats: 1,
        }
    }
}

impl BrestScenario {
    /// A smaller configuration for fast unit tests.
    pub fn small() -> BrestScenario {
        BrestScenario {
            trawlers: 1,
            transits: 1,
            anchored: 1,
            tug_pairs: 1,
            pilot_pairs: 1,
            loiterers: 1,
            sar: 1,
            drifters: 1,
            ..BrestScenario::default()
        }
    }

    /// A paper-shaped configuration (hours of traffic from a large fleet).
    pub fn large() -> BrestScenario {
        BrestScenario {
            trawlers: 10,
            transits: 12,
            anchored: 8,
            tug_pairs: 4,
            pilot_pairs: 4,
            loiterers: 4,
            sar: 2,
            drifters: 4,
            repeats: 4,
            ..BrestScenario::default()
        }
    }
}

/// The generated dataset.
#[derive(Debug)]
pub struct Dataset {
    /// The fleet.
    pub vessels: Vec<Vessel>,
    /// The areas of interest.
    pub areas: AreaMap,
    /// The raw AIS tracks.
    pub trajectories: Vec<Trajectory>,
    /// The derived critical-event stream (replayable against any event
    /// description).
    pub stream: InputStream,
    /// Background knowledge (areaType, thresholds, vesselType, typeSpeed)
    /// in RTEC concrete syntax.
    pub background: String,
    /// The preprocessing thresholds used.
    pub preprocess: PreprocessConfig,
    /// The domain thresholds used.
    pub thresholds: Thresholds,
}

impl Dataset {
    /// Generates the dataset for a scenario.
    pub fn generate(config: &BrestScenario) -> Dataset {
        Generator::new(config).run()
    }

    /// The gold event description: rules plus this dataset's background
    /// knowledge.
    pub fn gold_description(&self) -> EventDescription {
        let src = format!("{}\n{}", GOLD_RULES, self.background);
        EventDescription::parse(&src).expect("gold + background parse")
    }

    /// Attaches this dataset's background knowledge to an arbitrary rule
    /// set (e.g. an LLM-generated one) so it can run over the stream.
    pub fn with_background(&self, rules_src: &str) -> EventDescription {
        EventDescription::parse_lenient(&format!("{rules_src}\n{}", self.background))
    }

    /// Total AIS signals.
    pub fn signal_count(&self) -> usize {
        self.trajectories.iter().map(Trajectory::len).sum()
    }

    /// Last event time.
    pub fn horizon(&self) -> i64 {
        self.stream.horizon()
    }
}

struct Generator<'c> {
    config: &'c BrestScenario,
    rng: StdRng,
    areas: AreaMap,
    vessels: Vec<Vessel>,
    trajectories: Vec<Trajectory>,
    next_id: u32,
}

impl<'c> Generator<'c> {
    fn new(config: &'c BrestScenario) -> Generator<'c> {
        Generator {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            areas: AreaMap::brest_like(),
            vessels: Vec::new(),
            trajectories: Vec::new(),
            next_id: 0,
        }
    }

    fn vessel(&mut self, t: VesselType) -> VesselId {
        let id = self.next_id;
        self.next_id += 1;
        self.vessels.push(Vessel::new(id, t));
        VesselId(id)
    }

    fn offshore_point(&mut self) -> Point {
        Point::new(
            self.rng.gen_range(8_000.0..52_000.0),
            self.rng.gen_range(24_000.0..34_000.0),
        )
    }

    fn run(mut self) -> Dataset {
        let period = self.config.sample_period;
        let block = 6 * 3600; // each behaviour block spans ~6 simulated hours
        for rep in 0..self.config.repeats.max(1) {
            let t0 = (rep as i64) * block as i64;
            for i in 0..self.config.trawlers {
                // The first trawler of each repeat always has the
                // mid-trawl AIS gap, so every scenario (including the
                // small test one) exercises gap_start/gap_end pairs.
                self.trawler(t0, period, i == 0);
            }
            for i in 0..self.config.transits {
                self.transit(t0, period, i % 2 == 0);
            }
            for i in 0..self.config.anchored {
                self.anchored(t0, period, i % 2 == 0);
            }
            for _ in 0..self.config.tug_pairs {
                self.tug_pair(t0, period);
            }
            for _ in 0..self.config.pilot_pairs {
                self.pilot_pair(t0, period);
            }
            for _ in 0..self.config.loiterers {
                self.loiterer(t0, period);
            }
            for _ in 0..self.config.sar {
                self.sar(t0, period);
            }
            for _ in 0..self.config.drifters {
                self.drifter(t0, period);
            }
            for _ in 0..self.config.rendezvous_pairs {
                self.rendezvous_pair(t0, period);
            }
        }

        let thresholds = Thresholds::default();
        let pre = PreprocessConfig {
            sample_period: period,
            ..PreprocessConfig::default()
        };
        let stream = preprocess(&self.trajectories, &self.areas, &pre);
        let background = format!(
            "{}\n{}\n{}\n{}",
            self.areas.background_facts(),
            thresholds.background_facts(),
            fleet_background_facts(&self.vessels),
            crate::gold::input_declarations(),
        );
        Dataset {
            vessels: self.vessels,
            areas: self.areas,
            trajectories: self.trajectories,
            stream,
            background,
            preprocess: pre,
            thresholds,
        }
    }

    /// A fishing vessel sails from port into a fishing ground, trawls in a
    /// zigzag for a few hours (sometimes with a mid-trawl AIS gap, always
    /// when `force_gap`), then returns.
    fn trawler(&mut self, t0: i64, period: i64, force_gap: bool) {
        let v = self.vessel(VesselType::Fishing);
        let port = AreaMap::ports()[0];
        let ground = self
            .areas
            .first_of(AreaKind::Fishing)
            .unwrap()
            .polygon
            .centroid();
        let mut b = TrajectoryBuilder::new(v, t0 + self.rng.gen_range(0..600), port, period);
        b.sail_to(&mut self.rng, ground, 9.0)
            .zigzag(&mut self.rng, 3 * 3600, 4.0, 90.0, 40.0, 420);
        if force_gap || self.rng.gen_bool(0.5) {
            b.silence(2_400, 4.0)
                .zigzag(&mut self.rng, 3600, 4.0, 90.0, 40.0, 420);
        }
        b.sail_to(&mut self.rng, port, 9.0);
        self.trajectories.push(b.finish());
    }

    /// A cargo/tanker transit along the coast; `fast` transits cross the
    /// coastal band above the speed limit (highSpeedNearCoast).
    fn transit(&mut self, t0: i64, period: i64, fast: bool) {
        let v = self.vessel(if fast {
            VesselType::Cargo
        } else {
            VesselType::Tanker
        });
        let (y, speed) = if fast {
            (2_500.0, 12.0)
        } else {
            (8_000.0, 11.0)
        };
        let start = Point::new(1_000.0, y);
        let end = Point::new(58_000.0, y);
        let mut b = TrajectoryBuilder::new(v, t0 + self.rng.gen_range(0..1200), start, period);
        b.sail_to(&mut self.rng, end, speed);
        self.trajectories.push(b.finish());
    }

    /// A vessel that anchors in the anchorage (far from ports) or moors
    /// near a port.
    fn anchored(&mut self, t0: i64, period: i64, in_anchorage: bool) {
        let v = self.vessel(VesselType::Cargo);
        let spot = if in_anchorage {
            self.areas
                .first_of(AreaKind::Anchorage)
                .unwrap()
                .polygon
                .centroid()
        } else {
            AreaMap::ports()[1]
        };
        let approach = Point::new(spot.x, spot.y + 9_000.0);
        let mut b = TrajectoryBuilder::new(v, t0 + self.rng.gen_range(0..1200), approach, period);
        b.sail_to(&mut self.rng, spot, 8.0)
            .hold(&mut self.rng, 3 * 3600)
            .sail_to(&mut self.rng, approach, 8.0);
        self.trajectories.push(b.finish());
    }

    /// A tug towing a cargo vessel: side by side at towing speed.
    fn tug_pair(&mut self, t0: i64, period: i64) {
        let tug = self.vessel(VesselType::Tug);
        let tow = self.vessel(VesselType::Cargo);
        let start = self.offshore_point();
        let end = Point::new(start.x + 6_000.0, start.y - 1_000.0);
        let mut lead = TrajectoryBuilder::new(tug, t0 + self.rng.gen_range(0..900), start, period);
        lead.sail_to(&mut self.rng, end, 3.5);
        let lead_tr = lead.finish();
        let mut follow = TrajectoryBuilder::new(
            tow,
            lead_tr.start().unwrap_or(t0),
            Point::new(start.x, start.y + 120.0),
            period,
        );
        follow.shadow(
            &lead_tr,
            lead_tr.start().unwrap_or(t0),
            i64::MAX / 4,
            Point::new(0.0, 120.0),
        );
        self.trajectories.push(lead_tr);
        self.trajectories.push(follow.finish());
    }

    /// A pilot boat meets a tanker offshore; both hold position together.
    fn pilot_pair(&mut self, t0: i64, period: i64) {
        let pilot = self.vessel(VesselType::PilotVessel);
        let ship = self.vessel(VesselType::Tanker);
        let meet = self.offshore_point();
        let start = t0 + self.rng.gen_range(0..900);

        let mut ship_b =
            TrajectoryBuilder::new(ship, start, Point::new(meet.x - 8_000.0, meet.y), period);
        // The second, slow leg tightens the stopping radius (sail_to halts
        // within one reporting step of the target) so that the pair ends up
        // well inside the proximity threshold.
        ship_b
            .sail_to(&mut self.rng, meet, 10.0)
            .sail_to(&mut self.rng, meet, 2.0)
            .hold(&mut self.rng, 2_400)
            .sail_to(&mut self.rng, Point::new(meet.x + 8_000.0, meet.y), 10.0);
        let ship_tr = ship_b.finish();

        // The pilot arrives as the ship slows, holds alongside, departs.
        let hold_from = start + 2_000; // roughly when the ship is stopped
        let mut pilot_b =
            TrajectoryBuilder::new(pilot, start, Point::new(meet.x, meet.y - 6_000.0), period);
        let alongside = Point::new(meet.x + 60.0, meet.y - 60.0);
        pilot_b
            .sail_to(&mut self.rng, alongside, 12.0)
            .sail_to(&mut self.rng, alongside, 2.0);
        // Wait (stopped) next to the meeting point until the ship leaves.
        let wait = (hold_from + 2_400 - pilot_b.now()).max(600);
        pilot_b.hold(&mut self.rng, wait).sail_to(
            &mut self.rng,
            Point::new(meet.x, meet.y - 6_000.0),
            12.0,
        );
        self.trajectories.push(ship_tr);
        self.trajectories.push(pilot_b.finish());
    }

    /// A vessel loitering offshore (slow wandering + stops).
    fn loiterer(&mut self, t0: i64, period: i64) {
        let v = self.vessel(VesselType::Passenger);
        let spot = self.offshore_point();
        let mut b = TrajectoryBuilder::new(v, t0 + self.rng.gen_range(0..900), spot, period);
        b.loiter(&mut self.rng, 3_600)
            .hold(&mut self.rng, 1_800)
            .loiter(&mut self.rng, 1_800);
        self.trajectories.push(b.finish());
    }

    /// A search-and-rescue sweep: fast zigzag offshore.
    fn sar(&mut self, t0: i64, period: i64) {
        let v = self.vessel(VesselType::Sar);
        let spot = self.offshore_point();
        let mut b = TrajectoryBuilder::new(v, t0 + self.rng.gen_range(0..900), spot, period);
        b.zigzag(&mut self.rng, 2 * 3600, 14.0, 0.0, 60.0, 420);
        self.trajectories.push(b.finish());
    }

    /// Two cargo vessels meeting offshore for a possible ship-to-ship
    /// transfer: they approach the same point, hold alongside, and part.
    fn rendezvous_pair(&mut self, t0: i64, period: i64) {
        let a = self.vessel(VesselType::Cargo);
        let b = self.vessel(VesselType::Tanker);
        let meet = self.offshore_point();
        let start = t0 + self.rng.gen_range(0..900);

        let mut a_b =
            TrajectoryBuilder::new(a, start, Point::new(meet.x - 7_000.0, meet.y), period);
        a_b.sail_to(&mut self.rng, meet, 9.0)
            .sail_to(&mut self.rng, meet, 2.0)
            .hold(&mut self.rng, 3_000)
            .sail_to(&mut self.rng, Point::new(meet.x - 7_000.0, meet.y), 9.0);
        self.trajectories.push(a_b.finish());

        let b_spot = Point::new(meet.x + 80.0, meet.y + 80.0);
        let mut b_b = TrajectoryBuilder::new(
            b,
            start,
            Point::new(meet.x + 7_000.0, meet.y + 80.0),
            period,
        );
        b_b.sail_to(&mut self.rng, b_spot, 9.0)
            .sail_to(&mut self.rng, b_spot, 2.0)
            .hold(&mut self.rng, 3_000)
            .sail_to(
                &mut self.rng,
                Point::new(meet.x + 7_000.0, meet.y + 80.0),
                9.0,
            );
        self.trajectories.push(b_b.finish());
    }

    /// A drifting vessel: under way slowly with course offset from heading.
    fn drifter(&mut self, t0: i64, period: i64) {
        let v = self.vessel(VesselType::Tanker);
        let spot = self.offshore_point();
        let mut b = TrajectoryBuilder::new(v, t0 + self.rng.gen_range(0..900), spot, period);
        b.sail_to(&mut self.rng, Point::new(spot.x + 2_000.0, spot.y), 9.0)
            .drift(&mut self.rng, 3_600, 1.5, 45.0)
            .sail_to(&mut self.rng, spot, 9.0);
        self.trajectories.push(b.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::{Engine, EngineConfig};

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&BrestScenario::small());
        let b = Dataset::generate(&BrestScenario::small());
        assert_eq!(a.signal_count(), b.signal_count());
        assert_eq!(a.stream.len(), b.stream.len());
        assert_eq!(a.horizon(), b.horizon());
    }

    #[test]
    fn gold_description_compiles_with_background() {
        let d = Dataset::generate(&BrestScenario::small());
        let desc = d.gold_description();
        let compiled = desc.compile().unwrap();
        assert!(
            !compiled.report.has_errors(),
            "{:?}",
            compiled.report.errors().collect::<Vec<_>>()
        );
    }

    #[test]
    fn gold_description_passes_schema_check() {
        let d = Dataset::generate(&BrestScenario::small());
        let desc = d.gold_description();
        let compiled = desc.compile().unwrap();
        let decls = rtec::declarations::Declarations::from_description(&compiled);
        assert!(!decls.is_empty(), "background carries declarations");
        let report = decls.check(&compiled);
        assert!(
            report.issues.is_empty(),
            "gold violates its own schema: {:?}",
            report.issues
        );
    }

    #[test]
    fn schema_check_flags_out_of_schema_llm_rules() {
        let d = Dataset::generate(&BrestScenario::small());
        // An LLM-style rule over an undeclared event and an undefined
        // fluent.
        let desc = d.with_background(
            "initiatedAt(odd(V)=true, T) :- happensAt(sonarPing(V), T), \
                 holdsAt(cloaked(V)=true, T).",
        );
        let compiled = desc.compile().unwrap();
        let decls = rtec::declarations::Declarations::from_description(&compiled);
        let report = decls.check(&compiled);
        let msgs: Vec<&str> = report.issues.iter().map(|i| i.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("sonarPing")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("cloaked")), "{msgs:?}");
    }

    #[test]
    fn all_eight_activities_are_recognised_on_the_stream() {
        let d = Dataset::generate(&BrestScenario::small());
        let desc = d.gold_description();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        d.stream.load_into(&mut engine);
        let out = engine.run_to(d.horizon() + 1);
        for a in crate::gold::activities() {
            let sym = compiled
                .symbols
                .get(a.name)
                .unwrap_or_else(|| panic!("{} missing", a.name));
            let arity = if matches!(a.key, "tu" | "p") { 2 } else { 1 };
            let union = out.union_of((sym, arity));
            assert!(
                !union.is_empty(),
                "activity {} ({}) was never recognised; warnings: {:?}",
                a.key,
                a.name,
                out.warnings
            );
        }
    }

    #[test]
    fn extension_rendezvous_is_recognised() {
        let d = Dataset::generate(&BrestScenario::small());
        let desc = d.gold_description();
        let compiled = desc.compile().unwrap();
        let mut engine = Engine::new(&compiled, EngineConfig::default());
        d.stream.load_into(&mut engine);
        let out = engine.run_to(d.horizon() + 1);
        let rv = compiled
            .symbols
            .get("rendezVous")
            .expect("rendezVous in gold");
        assert!(
            !out.union_of((rv, 2)).is_empty(),
            "rendezvous never recognised; warnings: {:?}",
            out.warnings
        );
    }

    #[test]
    fn stream_is_nonempty_and_time_bounded() {
        let d = Dataset::generate(&BrestScenario::small());
        assert!(d.stream.len() > 1_000);
        assert!(d.horizon() > 3_600);
        assert!(d.signal_count() > 1_000);
    }
}
