//! Critical-event derivation from raw AIS tracks.
//!
//! The maritime RTEC pipeline does not reason over raw position signals;
//! an online preprocessing step compresses them into *critical events* —
//! `entersArea`/`leavesArea`, `stop_start`/`stop_end`,
//! `slow_motion_start`/`slow_motion_end`, `change_in_speed_start`/`end`,
//! `change_in_heading`, `gap_start`/`gap_end` — plus a `velocity` event
//! carrying the kinematics and a pairwise `proximity` input fluent
//! (Pitsikalis et al., DEBS 2019; paper Sections 3.2 and 5.1). This module
//! reproduces that derivation over the synthetic tracks.

use crate::ais::Trajectory;
use crate::areas::{AreaId, AreaMap};
use crate::geometry::heading_diff;
use crate::vessel::VesselId;
use rtec::stream::InputStream;
use rtec::{GroundFvp, Interval, IntervalList, Symbol, Term};
use std::collections::{HashMap, HashSet};

/// Thresholds of the preprocessing step.
#[derive(Clone, Copy, Debug)]
pub struct PreprocessConfig {
    /// Below this speed (knots) a vessel counts as stopped.
    pub stop_speed: f64,
    /// Below this speed (knots), and at or above `stop_speed`, a vessel is
    /// in slow motion.
    pub slow_speed: f64,
    /// Speed delta (knots) between consecutive signals that counts as a
    /// speed change.
    pub speed_change: f64,
    /// Heading delta (degrees) between consecutive signals that counts as
    /// a heading change.
    pub heading_change: f64,
    /// Silence longer than this (seconds) is a communication gap.
    pub gap_seconds: i64,
    /// Vessels closer than this (metres) are in proximity.
    pub proximity_metres: f64,
    /// Nominal AIS reporting period (seconds); used to bucket the
    /// proximity computation.
    pub sample_period: i64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            stop_speed: 0.5,
            slow_speed: 5.0,
            speed_change: 1.5,
            heading_change: 15.0,
            gap_seconds: 1800,
            proximity_metres: 300.0,
            sample_period: 60,
        }
    }
}

/// Interned event vocabulary for fast term construction.
struct Vocab {
    velocity: Symbol,
    enters_area: Symbol,
    leaves_area: Symbol,
    gap_start: Symbol,
    gap_end: Symbol,
    stop_start: Symbol,
    stop_end: Symbol,
    slow_start: Symbol,
    slow_end: Symbol,
    speed_ch_start: Symbol,
    speed_ch_end: Symbol,
    heading_ch: Symbol,
    proximity: Symbol,
    true_atom: Term,
    vessels: HashMap<VesselId, Term>,
    areas: HashMap<AreaId, Term>,
}

impl Vocab {
    fn new(stream: &mut InputStream, trajectories: &[Trajectory], areas: &AreaMap) -> Vocab {
        let s = &mut stream.symbols;
        let mut vessels = HashMap::new();
        for tr in trajectories {
            if let Some(p) = tr.points.first() {
                vessels
                    .entry(p.vessel)
                    .or_insert_with(|| Term::Atom(s.intern(&p.vessel.to_string())));
            }
        }
        let mut area_terms = HashMap::new();
        for a in areas.areas() {
            area_terms.insert(a.id, Term::Atom(s.intern(&a.id.to_string())));
        }
        Vocab {
            velocity: s.intern("velocity"),
            enters_area: s.intern("entersArea"),
            leaves_area: s.intern("leavesArea"),
            gap_start: s.intern("gap_start"),
            gap_end: s.intern("gap_end"),
            stop_start: s.intern("stop_start"),
            stop_end: s.intern("stop_end"),
            slow_start: s.intern("slow_motion_start"),
            slow_end: s.intern("slow_motion_end"),
            speed_ch_start: s.intern("change_in_speed_start"),
            speed_ch_end: s.intern("change_in_speed_end"),
            heading_ch: s.intern("change_in_heading"),
            proximity: s.intern("proximity"),
            true_atom: Term::Atom(s.intern("true")),
            vessels,
            areas: area_terms,
        }
    }

    fn unary(&self, f: Symbol, v: VesselId) -> Term {
        Term::Compound(f, vec![self.vessels[&v].clone()])
    }

    fn area_event(&self, f: Symbol, v: VesselId, a: AreaId) -> Term {
        Term::Compound(f, vec![self.vessels[&v].clone(), self.areas[&a].clone()])
    }
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Derives the critical-event stream (and proximity intervals) from AIS
/// tracks.
pub fn preprocess(
    trajectories: &[Trajectory],
    areas: &AreaMap,
    config: &PreprocessConfig,
) -> InputStream {
    let mut stream = InputStream::new();
    let vocab = Vocab::new(&mut stream, trajectories, areas);

    for tr in trajectories {
        derive_vessel_events(tr, areas, config, &vocab, &mut stream);
    }
    derive_proximity(trajectories, config, &vocab, &mut stream);
    stream
}

fn derive_vessel_events(
    tr: &Trajectory,
    areas: &AreaMap,
    config: &PreprocessConfig,
    vocab: &Vocab,
    stream: &mut InputStream,
) {
    let Some(first) = tr.points.first() else {
        return;
    };
    let vessel = first.vessel;

    let mut inside: HashSet<AreaId> = HashSet::new();
    let mut stopped = false;
    let mut slow = false;
    let mut changing_speed = false;
    let mut prev: Option<&crate::ais::AisPoint> = None;

    for p in &tr.points {
        // Communication gaps reset every state machine: after the gap the
        // vessel re-appears like a fresh contact.
        if let Some(pr) = prev {
            if p.t - pr.t > config.gap_seconds {
                stream.push_event(vocab.unary(vocab.gap_start, vessel), pr.t);
                stream.push_event(vocab.unary(vocab.gap_end, vessel), p.t);
                inside.clear();
                stopped = false;
                slow = false;
                changing_speed = false;
                prev = None;
            }
        }

        // Area membership.
        let current: HashSet<AreaId> = areas.containing(&p.pos).iter().map(|a| a.id).collect();
        for &a in current.difference(&inside) {
            stream.push_event(vocab.area_event(vocab.enters_area, vessel, a), p.t);
        }
        if prev.is_some() {
            for &a in inside.difference(&current) {
                stream.push_event(vocab.area_event(vocab.leaves_area, vessel, a), p.t);
            }
        }
        inside = current;

        // Stop / slow-motion state machines.
        let now_stopped = p.speed < config.stop_speed;
        if now_stopped && !stopped {
            stream.push_event(vocab.unary(vocab.stop_start, vessel), p.t);
        } else if !now_stopped && stopped {
            stream.push_event(vocab.unary(vocab.stop_end, vessel), p.t);
        }
        stopped = now_stopped;

        let now_slow = p.speed >= config.stop_speed && p.speed < config.slow_speed;
        if now_slow && !slow {
            stream.push_event(vocab.unary(vocab.slow_start, vessel), p.t);
        } else if !now_slow && slow {
            stream.push_event(vocab.unary(vocab.slow_end, vessel), p.t);
        }
        slow = now_slow;

        if let Some(pr) = prev {
            // Speed-change state machine.
            let delta = (p.speed - pr.speed).abs();
            if delta > config.speed_change && !changing_speed {
                stream.push_event(vocab.unary(vocab.speed_ch_start, vessel), p.t);
                changing_speed = true;
            } else if delta <= config.speed_change && changing_speed {
                stream.push_event(vocab.unary(vocab.speed_ch_end, vessel), p.t);
                changing_speed = false;
            }
            // Heading changes are instantaneous events.
            if heading_diff(pr.heading, p.heading) > config.heading_change {
                stream.push_event(vocab.unary(vocab.heading_ch, vessel), p.t);
            }
        }

        // The kinematic report itself.
        let velocity = Term::Compound(
            vocab.velocity,
            vec![
                vocab.vessels[&vessel].clone(),
                Term::Float(round1(p.speed)),
                Term::Float(round1(p.heading)),
                Term::Float(round1(p.cog)),
            ],
        );
        stream.push_event(velocity, p.t);

        prev = Some(p);
    }

    // Lost contact: when the track ends, an online preprocessor concludes
    // after the gap timeout that the vessel stopped transmitting —
    // otherwise every fluent of the vessel would persist (by inertia) to
    // the end of the stream.
    if let Some(last) = tr.points.last() {
        stream.push_event(
            vocab.unary(vocab.gap_start, vessel),
            last.t + config.gap_seconds,
        );
    }
}

/// Grid-bucketed pairwise proximity: for every reporting interval, vessels
/// within `proximity_metres` are paired; consecutive hits amalgamate into
/// maximal intervals, emitted for both argument orders.
fn derive_proximity(
    trajectories: &[Trajectory],
    config: &PreprocessConfig,
    vocab: &Vocab,
    stream: &mut InputStream,
) {
    let bucket = config.sample_period.max(1);
    // bin -> vessel -> position (last report in the bin wins).
    let mut bins: HashMap<i64, HashMap<VesselId, crate::geometry::Point>> = HashMap::new();
    for tr in trajectories {
        for p in &tr.points {
            bins.entry(p.t.div_euclid(bucket))
                .or_default()
                .insert(p.vessel, p.pos);
        }
    }

    let cell = config.proximity_metres.max(1.0);
    let mut active: HashMap<(VesselId, VesselId), Vec<Interval>> = HashMap::new();
    let mut bin_keys: Vec<i64> = bins.keys().copied().collect();
    bin_keys.sort_unstable();

    for bin in bin_keys {
        let positions = &bins[&bin];
        // Spatial hash for this instant.
        let mut grid: HashMap<(i64, i64), Vec<(VesselId, crate::geometry::Point)>> = HashMap::new();
        for (&v, &pos) in positions {
            let key = ((pos.x / cell).floor() as i64, (pos.y / cell).floor() as i64);
            grid.entry(key).or_default().push((v, pos));
        }
        let t0 = bin * bucket;
        let piece = Interval::new(t0, t0 + bucket);
        for (&(cx, cy), members) in &grid {
            for dx in -1..=1_i64 {
                for dy in -1..=1_i64 {
                    let Some(others) = grid.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &(v1, p1) in members {
                        for &(v2, p2) in others {
                            if v1 >= v2 {
                                continue;
                            }
                            if p1.distance(&p2) <= config.proximity_metres {
                                active.entry((v1, v2)).or_default().push(piece);
                            }
                        }
                    }
                }
            }
        }
    }

    let mut pairs: Vec<((VesselId, VesselId), Vec<Interval>)> = active.into_iter().collect();
    pairs.sort_by_key(|(k, _)| *k);
    for ((v1, v2), pieces) in pairs {
        let list = IntervalList::from_intervals(pieces);
        for (a, b) in [(v1, v2), (v2, v1)] {
            let fluent = Term::Compound(
                vocab.proximity,
                vec![vocab.vessels[&a].clone(), vocab.vessels[&b].clone()],
            );
            let fvp = GroundFvp::new(fluent, vocab.true_atom.clone())
                .expect("proximity terms are ground");
            stream.push_intervals(fvp, list.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::AreaMap;
    use crate::geometry::Point;
    use crate::scenario::TrajectoryBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn events_named<'a>(stream: &'a InputStream, name: &str) -> Vec<&'a (Term, i64)> {
        let sym = stream.symbols.get(name);
        stream
            .events()
            .iter()
            .filter(|(e, _)| e.functor() == sym)
            .collect()
    }

    #[test]
    fn area_transitions_are_detected() {
        let areas = AreaMap::brest_like();
        let mut rng = StdRng::seed_from_u64(1);
        // Sail from open sea into the first fishing ground and back out.
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, Point::new(20_000.0, 30_000.0), 60);
        b.sail_to(&mut rng, Point::new(20_000.0, 15_000.0), 10.0) // into fishing a4
            .sail_to(&mut rng, Point::new(20_000.0, 30_000.0), 10.0); // back out
        let tr = b.finish();
        let stream = preprocess(&[tr], &areas, &PreprocessConfig::default());
        assert_eq!(events_named(&stream, "entersArea").len(), 1);
        assert_eq!(events_named(&stream, "leavesArea").len(), 1);
    }

    #[test]
    fn stop_and_resume() {
        let areas = AreaMap::brest_like();
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, Point::new(20_000.0, 30_000.0), 60);
        b.sail_to(&mut rng, Point::new(22_000.0, 30_000.0), 8.0)
            .hold(&mut rng, 1800)
            .sail_to(&mut rng, Point::new(24_000.0, 30_000.0), 8.0);
        let tr = b.finish();
        let stream = preprocess(&[tr], &areas, &PreprocessConfig::default());
        assert_eq!(events_named(&stream, "stop_start").len(), 1);
        assert_eq!(events_named(&stream, "stop_end").len(), 1);
        // The acceleration out of the stop triggers a speed change.
        assert!(!events_named(&stream, "change_in_speed_start").is_empty());
    }

    #[test]
    fn gaps_reset_and_reenter_areas() {
        let areas = AreaMap::brest_like();
        let mut rng = StdRng::seed_from_u64(3);
        // Loiter inside the fishing ground, go silent for 2 h, come back
        // still inside the ground.
        let centre = Point::new(20_000.0, 15_000.0);
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, centre, 60);
        b.loiter(&mut rng, 900)
            .silence(7_200, 0.5)
            .loiter(&mut rng, 900);
        let tr = b.finish();
        let stream = preprocess(&[tr], &areas, &PreprocessConfig::default());
        // One mid-track gap plus the lost-contact gap at the end of the
        // trajectory.
        assert_eq!(events_named(&stream, "gap_start").len(), 2);
        assert_eq!(events_named(&stream, "gap_end").len(), 1);
        // Re-entry after the gap duplicates the entersArea event.
        assert_eq!(events_named(&stream, "entersArea").len(), 2);
    }

    #[test]
    fn heading_changes_fire_in_zigzag() {
        let areas = AreaMap::brest_like();
        let mut rng = StdRng::seed_from_u64(4);
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, Point::new(17_000.0, 12_000.0), 60);
        b.zigzag(&mut rng, 3_600, 4.0, 45.0, 40.0, 300);
        let tr = b.finish();
        let stream = preprocess(&[tr], &areas, &PreprocessConfig::default());
        assert!(events_named(&stream, "change_in_heading").len() >= 5);
    }

    #[test]
    fn velocity_emitted_per_signal() {
        let areas = AreaMap::brest_like();
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, Point::new(0.0, 30_000.0), 60);
        b.sail_to(&mut rng, Point::new(2_000.0, 30_000.0), 10.0);
        let tr = b.finish();
        let n = tr.len();
        let stream = preprocess(&[tr], &areas, &PreprocessConfig::default());
        assert_eq!(events_named(&stream, "velocity").len(), n);
    }

    #[test]
    fn proximity_intervals_for_adjacent_vessels() {
        let areas = AreaMap::brest_like();
        let mut rng = StdRng::seed_from_u64(6);
        let mut lead = TrajectoryBuilder::new(VesselId(1), 0, Point::new(20_000.0, 30_000.0), 60);
        lead.sail_to(&mut rng, Point::new(24_000.0, 30_000.0), 4.0);
        let lead_tr = lead.finish();
        let mut follow = TrajectoryBuilder::new(VesselId(2), 0, Point::new(20_000.0, 30_100.0), 60);
        follow.shadow(&lead_tr, 0, 1_000_000, Point::new(0.0, 100.0));
        let follow_tr = follow.finish();
        let stream = preprocess(&[lead_tr, follow_tr], &areas, &PreprocessConfig::default());
        // Both orderings are emitted.
        assert_eq!(stream.intervals().len(), 2);
        let (fvp, list) = &stream.intervals()[0];
        assert!(fvp.fluent.arity() == 2);
        assert!(!list.is_empty());
    }

    #[test]
    fn distant_vessels_have_no_proximity() {
        let areas = AreaMap::brest_like();
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = TrajectoryBuilder::new(VesselId(1), 0, Point::new(10_000.0, 30_000.0), 60);
        a.loiter(&mut rng, 1800);
        let mut b = TrajectoryBuilder::new(VesselId(2), 0, Point::new(50_000.0, 30_000.0), 60);
        b.loiter(&mut rng, 1800);
        let stream = preprocess(
            &[a.finish(), b.finish()],
            &areas,
            &PreprocessConfig::default(),
        );
        assert!(stream.intervals().is_empty());
    }
}
