//! The hand-crafted gold-standard event description and the catalogue of
//! target activities.
//!
//! These are the maritime composite activity definitions the paper uses as
//! its gold standard (after Pitsikalis et al., *Composite Event
//! Recognition for Maritime Monitoring*, DEBS 2019): lower-level fluents
//! (`gap`, `withinArea`, `stopped`, `lowSpeed`, `changingSpeed`,
//! `movingSpeed`, `underWay`) and the eight target activities of
//! Figure 2 — `highSpeedNearCoast` (h), `anchoredOrMoored` (aM),
//! `trawling` (tr), `tugging` (tu), `pilotOps` (p), `loitering` (l),
//! `sar` (s) and `drifting` (d).

use rtec::ast::Clause;
use rtec::EventDescription;

/// The gold-standard rules (no background facts; those come from the
/// scenario via [`crate::areas::AreaMap::background_facts`],
/// [`crate::thresholds::Thresholds::background_facts`] and
/// [`crate::thresholds::fleet_background_facts`]).
pub const GOLD_RULES: &str = r#"
% ===================== lower-level fluents =====================

% --- communication gap, split by port vicinity (prompt G's example) ---
initiatedAt(gap(Vessel)=nearPorts, T) :-
    happensAt(gap_start(Vessel), T),
    holdsAt(withinArea(Vessel, nearPorts)=true, T).
initiatedAt(gap(Vessel)=farFromPorts, T) :-
    happensAt(gap_start(Vessel), T),
    not holdsAt(withinArea(Vessel, nearPorts)=true, T).
terminatedAt(gap(Vessel)=nearPorts, T) :-
    happensAt(gap_end(Vessel), T).
terminatedAt(gap(Vessel)=farFromPorts, T) :-
    happensAt(gap_end(Vessel), T).

% --- within area of some type (paper rules (1)-(3)) ---
initiatedAt(withinArea(Vessel, AreaType)=true, T) :-
    happensAt(entersArea(Vessel, AreaId), T),
    areaType(AreaId, AreaType).
terminatedAt(withinArea(Vessel, AreaType)=true, T) :-
    happensAt(leavesArea(Vessel, AreaId), T),
    areaType(AreaId, AreaType).
terminatedAt(withinArea(Vessel, _AreaType)=true, T) :-
    happensAt(gap_start(Vessel), T).

% --- stopped, split by port vicinity ---
initiatedAt(stopped(Vessel)=nearPorts, T) :-
    happensAt(stop_start(Vessel), T),
    holdsAt(withinArea(Vessel, nearPorts)=true, T).
initiatedAt(stopped(Vessel)=farFromPorts, T) :-
    happensAt(stop_start(Vessel), T),
    not holdsAt(withinArea(Vessel, nearPorts)=true, T).
terminatedAt(stopped(Vessel)=_Value, T) :-
    happensAt(stop_end(Vessel), T).
terminatedAt(stopped(Vessel)=_Value, T) :-
    happensAt(gap_start(Vessel), T).

% --- low speed ---
initiatedAt(lowSpeed(Vessel)=true, T) :-
    happensAt(slow_motion_start(Vessel), T).
terminatedAt(lowSpeed(Vessel)=true, T) :-
    happensAt(slow_motion_end(Vessel), T).
terminatedAt(lowSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).

% --- changing speed ---
initiatedAt(changingSpeed(Vessel)=true, T) :-
    happensAt(change_in_speed_start(Vessel), T).
terminatedAt(changingSpeed(Vessel)=true, T) :-
    happensAt(change_in_speed_end(Vessel), T).
terminatedAt(changingSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).

% --- moving speed relative to the service speed of the vessel type ---
initiatedAt(movingSpeed(Vessel)=below, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(movingMin, MovingMin),
    Speed >= MovingMin,
    vesselType(Vessel, Type),
    typeSpeed(Type, Min, _Max),
    Speed < Min.
initiatedAt(movingSpeed(Vessel)=normal, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    vesselType(Vessel, Type),
    typeSpeed(Type, Min, Max),
    Speed >= Min,
    Speed =< Max.
initiatedAt(movingSpeed(Vessel)=above, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    vesselType(Vessel, Type),
    typeSpeed(Type, _Min, Max),
    Speed > Max.
terminatedAt(movingSpeed(Vessel)=_Value, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(movingMin, MovingMin),
    Speed < MovingMin.
terminatedAt(movingSpeed(Vessel)=_Value, T) :-
    happensAt(gap_start(Vessel), T).

% --- under way: sailing at any moving speed ---
holdsFor(underWay(Vessel)=true, I) :-
    holdsFor(movingSpeed(Vessel)=below, I1),
    holdsFor(movingSpeed(Vessel)=normal, I2),
    holdsFor(movingSpeed(Vessel)=above, I3),
    union_all([I1, I2, I3], I).

% ===================== target activities =====================

% --- (h) high speed near coast ---
initiatedAt(highSpeedNearCoast(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(hcNearCoastMax, HcNearCoastMax),
    Speed > HcNearCoastMax,
    holdsAt(withinArea(Vessel, nearCoast)=true, T).
terminatedAt(highSpeedNearCoast(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(hcNearCoastMax, HcNearCoastMax),
    Speed =< HcNearCoastMax.
terminatedAt(highSpeedNearCoast(Vessel)=true, T) :-
    happensAt(leavesArea(Vessel, AreaId), T),
    areaType(AreaId, nearCoast).
terminatedAt(highSpeedNearCoast(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).

% --- (aM) anchored or moored (paper rule (4)) ---
holdsFor(anchoredOrMoored(Vessel)=true, I) :-
    holdsFor(stopped(Vessel)=farFromPorts, Isf),
    holdsFor(withinArea(Vessel, anchorage)=true, Ia),
    intersect_all([Isf, Ia], Isfa),
    holdsFor(stopped(Vessel)=nearPorts, Isn),
    union_all([Isfa, Isn], I).

% --- (tr) trawling: trawling speed plus trawling movement in a fishing area ---
initiatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    vesselType(Vessel, fishing),
    thresholds(trawlspeedMin, TrawlspeedMin),
    thresholds(trawlspeedMax, TrawlspeedMax),
    Speed >= TrawlspeedMin,
    Speed =< TrawlspeedMax,
    holdsAt(withinArea(Vessel, fishing)=true, T).
terminatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(trawlspeedMin, TrawlspeedMin),
    Speed < TrawlspeedMin.
terminatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(trawlspeedMax, TrawlspeedMax),
    Speed > TrawlspeedMax.
terminatedAt(trawlSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).

initiatedAt(trawlingMovement(Vessel)=true, T) :-
    happensAt(change_in_heading(Vessel), T),
    holdsAt(withinArea(Vessel, fishing)=true, T).
terminatedAt(trawlingMovement(Vessel)=true, T) :-
    happensAt(leavesArea(Vessel, AreaId), T),
    areaType(AreaId, fishing).
terminatedAt(trawlingMovement(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).

holdsFor(trawling(Vessel)=true, I) :-
    holdsFor(trawlSpeed(Vessel)=true, Is),
    holdsFor(trawlingMovement(Vessel)=true, Im),
    intersect_all([Is, Im], I).

% --- (tu) tugging: a tug and its tow in proximity at towing speed ---
initiatedAt(tuggingSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(tuggingMin, TuggingMin),
    thresholds(tuggingMax, TuggingMax),
    Speed >= TuggingMin,
    Speed =< TuggingMax.
terminatedAt(tuggingSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(tuggingMin, TuggingMin),
    Speed < TuggingMin.
terminatedAt(tuggingSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(tuggingMax, TuggingMax),
    Speed > TuggingMax.
terminatedAt(tuggingSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).

holdsFor(tugging(Vessel1, Vessel2)=true, I) :-
    holdsFor(proximity(Vessel1, Vessel2)=true, Ip),
    vesselType(Vessel1, tug),
    holdsFor(tuggingSpeed(Vessel1)=true, I1),
    holdsFor(tuggingSpeed(Vessel2)=true, I2),
    intersect_all([Ip, I1, I2], I).

% --- (p) pilot boarding: a pilot boat alongside a slow/stopped vessel off the ports ---
holdsFor(pilotOps(Vessel1, Vessel2)=true, I) :-
    holdsFor(proximity(Vessel1, Vessel2)=true, Ip),
    vesselType(Vessel1, pilotVessel),
    holdsFor(lowSpeed(Vessel1)=true, Il1),
    holdsFor(stopped(Vessel1)=farFromPorts, Is1),
    union_all([Il1, Is1], Ia),
    holdsFor(lowSpeed(Vessel2)=true, Il2),
    holdsFor(stopped(Vessel2)=farFromPorts, Is2),
    union_all([Il2, Is2], Ib),
    intersect_all([Ip, Ia, Ib], I).

% --- (l) loitering: slow or stopped away from coast and anchorages ---
holdsFor(loitering(Vessel)=true, I) :-
    holdsFor(lowSpeed(Vessel)=true, Il),
    holdsFor(stopped(Vessel)=farFromPorts, Is),
    union_all([Il, Is], Ils),
    holdsFor(withinArea(Vessel, nearCoast)=true, Inc),
    holdsFor(withinArea(Vessel, anchorage)=true, Ianc),
    relative_complement_all(Ils, [Inc, Ianc], I).

% --- (s) search and rescue: an SAR vessel sweeping at speed ---
initiatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    vesselType(Vessel, sar),
    thresholds(sarMinSpeed, SarMinSpeed),
    Speed >= SarMinSpeed.
terminatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(velocity(Vessel, Speed, _Heading, _Cog), T),
    thresholds(sarMinSpeed, SarMinSpeed),
    Speed < SarMinSpeed.
terminatedAt(sarSpeed(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).

initiatedAt(sarMovement(Vessel)=true, T) :-
    happensAt(change_in_heading(Vessel), T),
    vesselType(Vessel, sar).
terminatedAt(sarMovement(Vessel)=true, T) :-
    happensAt(stop_start(Vessel), T).
terminatedAt(sarMovement(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).

holdsFor(sar(Vessel)=true, I) :-
    holdsFor(sarSpeed(Vessel)=true, Is),
    holdsFor(sarMovement(Vessel)=true, Im),
    intersect_all([Is, Im], I).

% --- (extension) ship-to-ship transfer / rendezvous ---
% Mentioned in the paper's evaluation setup alongside trawling: two
% vessels close to each other, each slow or stopped far from ports, away
% from the coast. Not part of Figure 2's eight activities.
holdsFor(rendezVous(Vessel1, Vessel2)=true, I) :-
    holdsFor(proximity(Vessel1, Vessel2)=true, Ip),
    holdsFor(lowSpeed(Vessel1)=true, Il1),
    holdsFor(stopped(Vessel1)=farFromPorts, Is1),
    union_all([Il1, Is1], Ia),
    holdsFor(lowSpeed(Vessel2)=true, Il2),
    holdsFor(stopped(Vessel2)=farFromPorts, Is2),
    union_all([Il2, Is2], Ib),
    intersect_all([Ip, Ia, Ib], Iab),
    holdsFor(withinArea(Vessel1, nearCoast)=true, Inc),
    relative_complement_all(Iab, [Inc], I).

% --- (d) drifting: under way with course deviating from heading ---
initiatedAt(drifting(Vessel)=true, T) :-
    happensAt(velocity(Vessel, _Speed, Heading, Cog), T),
    thresholds(adriftAngThr, AdriftAngThr),
    min(abs(Heading - Cog), 360 - abs(Heading - Cog)) > AdriftAngThr,
    holdsAt(underWay(Vessel)=true, T).
terminatedAt(drifting(Vessel)=true, T) :-
    happensAt(velocity(Vessel, _Speed, Heading, Cog), T),
    thresholds(adriftAngThr, AdriftAngThr),
    min(abs(Heading - Cog), 360 - abs(Heading - Cog)) =< AdriftAngThr.
terminatedAt(drifting(Vessel)=true, T) :-
    happensAt(stop_start(Vessel), T).
terminatedAt(drifting(Vessel)=true, T) :-
    happensAt(gap_start(Vessel), T).
"#;

/// One of the eight target activities of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Activity {
    /// The short key used on Figure 2's x-axis (`h`, `aM`, `tr`, ...).
    pub key: &'static str,
    /// The main fluent functor of the activity.
    pub name: &'static str,
    /// All fluent functors belonging to the activity's definition
    /// (including dedicated helper fluents such as `trawlSpeed`).
    pub fluents: &'static [&'static str],
    /// Natural-language description, used verbatim in prompt G.
    pub description: &'static str,
}

/// The eight activities, in the order of Figure 2.
pub fn activities() -> Vec<Activity> {
    vec![
        Activity {
            key: "h",
            name: "highSpeedNearCoast",
            fluents: &["highSpeedNearCoast"],
            description: "High speed near coast: this activity starts when a vessel sails \
                within a coastal area at a speed that exceeds the maximum safe sailing speed \
                for coastal areas. It ends when the vessel slows down to a safe speed, leaves \
                the coastal area, or stops transmitting its position.",
        },
        Activity {
            key: "aM",
            name: "anchoredOrMoored",
            fluents: &["anchoredOrMoored"],
            description: "Anchored or moored: this activity lasts as long as a vessel is \
                stopped far from all ports inside an anchorage area, or is stopped near some \
                port.",
        },
        Activity {
            key: "tr",
            name: "trawling",
            fluents: &["trawlSpeed", "trawlingMovement", "trawling"],
            description: "Trawling: a fishing vessel is trawling while it sails within a \
                fishing area at trawling speed and, at the same time, exhibits trawling \
                movement, i.e. repeated heading changes inside the fishing area. Trawling \
                speed lies between the trawling speed thresholds. Both trawling speed and \
                trawling movement end when the vessel leaves the speed range or the fishing \
                area, and when there is a communication gap.",
        },
        Activity {
            key: "tu",
            name: "tugging",
            fluents: &["tuggingSpeed", "tugging"],
            description: "Tugging: a tug and another vessel are tugging while they are close \
                to each other and both sail at towing speed, i.e. a speed between the tugging \
                speed thresholds. Towing speed ends when the vessel leaves the speed range \
                or there is a communication gap.",
        },
        Activity {
            key: "p",
            name: "pilotOps",
            fluents: &["pilotOps"],
            description: "Pilot boarding: a pilot vessel and another vessel perform a pilot \
                boarding operation while they are close to each other and each of them is \
                either sailing at low speed or stopped far from all ports.",
        },
        Activity {
            key: "l",
            name: "loitering",
            fluents: &["loitering"],
            description: "Loitering: a vessel loiters while it is sailing at low speed or is \
                stopped far from all ports, provided that it is neither within a coastal \
                area nor within an anchorage area.",
        },
        Activity {
            key: "s",
            name: "sar",
            fluents: &["sarSpeed", "sarMovement", "sar"],
            description: "Search and rescue: a search-and-rescue vessel performs a \
                search-and-rescue operation while it sails at search-and-rescue speed, i.e. \
                above the minimum search-and-rescue speed, and exhibits search-and-rescue \
                movement, i.e. repeated heading changes. Search-and-rescue movement ends when \
                the vessel stops or there is a communication gap.",
        },
        Activity {
            key: "d",
            name: "drifting",
            fluents: &["drifting"],
            description: "Drifting: a vessel is drifting while it is under way and the \
                difference between its heading and its course over ground exceeds the drift \
                angle threshold. Drifting ends when the deviation falls below the threshold, \
                when the vessel stops, or when there is a communication gap.",
        },
    ]
}

/// Extension activities beyond Figure 2's eight: recognised by the gold
/// event description and exercised by the dataset, but not part of the
/// paper's reported series.
pub fn extension_activities() -> Vec<Activity> {
    vec![Activity {
        key: "rv",
        name: "rendezVous",
        fluents: &["rendezVous"],
        description: "Ship-to-ship transfer (rendezvous): two vessels perform a possible \
            ship-to-ship transfer while they are close to each other, each of them is \
            sailing at low speed or stopped far from all ports, and they are away from the \
            coast.",
    }]
}

/// The lower-level fluents shared by the activity definitions; taught to
/// the LLM via prompt F's examples and reused across prompt G answers.
pub fn lower_level_fluents() -> &'static [&'static str] {
    &[
        "gap",
        "withinArea",
        "stopped",
        "lowSpeed",
        "changingSpeed",
        "movingSpeed",
        "underWay",
    ]
}

/// The input-schema declarations of the maritime application: the events
/// produced by AIS preprocessing and the `proximity` input fluent.
/// Shipping these alongside the background knowledge lets
/// [`rtec::declarations::Declarations`] statically flag rules that
/// reference out-of-schema events or fluents (the paper's third error
/// category).
pub fn input_declarations() -> String {
    let events = [
        "velocity/4",
        "change_in_speed_start/1",
        "change_in_speed_end/1",
        "change_in_heading/1",
        "stop_start/1",
        "stop_end/1",
        "slow_motion_start/1",
        "slow_motion_end/1",
        "gap_start/1",
        "gap_end/1",
        "entersArea/2",
        "leavesArea/2",
    ];
    let mut out = String::new();
    for e in events {
        out.push_str(&format!("inputEvent({e}).\n"));
    }
    out.push_str("inputFluent(proximity/2).\n");
    out
}

/// Parses the gold rules into an event description.
pub fn gold_event_description() -> EventDescription {
    EventDescription::parse(GOLD_RULES).expect("gold rules parse")
}

/// The clauses of `desc` whose head defines one of `activity`'s fluents —
/// the per-activity rule subsets scored in Figure 2a.
pub fn rules_for_activity<'d>(desc: &'d EventDescription, activity: &Activity) -> Vec<&'d Clause> {
    clauses_for_fluents(desc, activity.fluents)
}

/// The clauses of `desc` whose head defines one of the given fluents.
pub fn clauses_for_fluents<'d>(desc: &'d EventDescription, fluents: &[&str]) -> Vec<&'d Clause> {
    desc.clauses
        .iter()
        .filter(|c| head_fluent_name(desc, c).is_some_and(|n| fluents.contains(&n)))
        .collect()
}

/// The fluent functor name defined by a clause head
/// (`initiatedAt`/`terminatedAt`/`holdsFor` over `F=V`), if any.
pub fn head_fluent_name<'d>(desc: &'d EventDescription, clause: &Clause) -> Option<&'d str> {
    let head = &clause.head;
    let pred = desc.symbols.try_name(head.functor()?)?;
    if !matches!(pred, "initiatedAt" | "terminatedAt" | "holdsFor") {
        return None;
    }
    let fvp = head.args().first()?;
    let eq = desc.symbols.get("=")?;
    if fvp.functor()? != eq {
        return None;
    }
    let fluent = fvp.args().first()?;
    desc.symbols.try_name(fluent.functor()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_rules_parse_and_compile() {
        let desc = gold_event_description();
        let compiled = desc.compile().unwrap();
        assert!(
            !compiled.report.has_errors(),
            "gold must be valid: {:?}",
            compiled.report.errors().collect::<Vec<_>>()
        );
        // Simple + static fluents both present.
        assert!(compiled.simple.len() > 20);
        assert!(compiled.statics.len() >= 6);
    }

    #[test]
    fn all_eight_activities_have_rules() {
        let desc = gold_event_description();
        for a in activities() {
            let rules = rules_for_activity(&desc, &a);
            assert!(!rules.is_empty(), "no rules for {}", a.key);
        }
    }

    #[test]
    fn activity_keys_match_figure_2() {
        let keys: Vec<&str> = activities().iter().map(|a| a.key).collect();
        assert_eq!(keys, vec!["h", "aM", "tr", "tu", "p", "l", "s", "d"]);
    }

    #[test]
    fn hierarchy_strata_put_lower_level_first() {
        let desc = gold_event_description();
        let compiled = desc.compile().unwrap();
        let pos = |name: &str| {
            let s = compiled
                .symbols
                .get(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            compiled
                .strata
                .iter()
                .position(|k| k.0 == s)
                .unwrap_or_else(|| panic!("{name} not in strata"))
        };
        assert!(pos("withinArea") < pos("highSpeedNearCoast"));
        assert!(pos("movingSpeed") < pos("underWay"));
        assert!(pos("underWay") < pos("drifting"));
        assert!(pos("stopped") < pos("anchoredOrMoored"));
        assert!(pos("lowSpeed") < pos("loitering"));
    }

    #[test]
    fn rule_subsets_are_disjoint_across_activities() {
        let _desc = gold_event_description();
        let acts = activities();
        for (i, a) in acts.iter().enumerate() {
            for b in &acts[i + 1..] {
                for f in a.fluents {
                    assert!(
                        !b.fluents.contains(f),
                        "{f} in both {} and {}",
                        a.key,
                        b.key
                    );
                }
            }
        }
    }

    #[test]
    fn head_fluent_name_extracts() {
        let desc = gold_event_description();
        let names: Vec<_> = desc
            .clauses
            .iter()
            .filter_map(|c| head_fluent_name(&desc, c))
            .collect();
        assert!(names.contains(&"withinArea"));
        assert!(names.contains(&"trawling"));
    }
}
