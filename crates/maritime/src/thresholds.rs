//! Domain thresholds and vessel-type service speeds — the background
//! knowledge presented to the LLM in prompt T and consulted by the
//! activity definitions.

use crate::vessel::VesselType;

/// The maritime threshold table (values in knots and degrees), mirroring
/// the thresholds of the maritime RTEC event description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// Maximum safe sailing speed in a coastal area (knots).
    pub hc_near_coast_max: f64,
    /// Minimum trawling speed (knots).
    pub trawlspeed_min: f64,
    /// Maximum trawling speed (knots).
    pub trawlspeed_max: f64,
    /// Minimum towing speed (knots).
    pub tugging_min: f64,
    /// Maximum towing speed (knots).
    pub tugging_max: f64,
    /// Minimum speed of a search-and-rescue sweep (knots).
    pub sar_min_speed: f64,
    /// Minimum speed at which a vessel counts as moving (knots).
    pub moving_min: f64,
    /// Heading/course deviation indicating drift (degrees).
    pub adrift_ang_thr: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            hc_near_coast_max: 5.0,
            trawlspeed_min: 2.0,
            trawlspeed_max: 6.0,
            tugging_min: 1.0,
            tugging_max: 6.0,
            sar_min_speed: 10.0,
            moving_min: 0.5,
            adrift_ang_thr: 30.0,
        }
    }
}

impl Thresholds {
    /// Renders the `thresholds/2` facts in RTEC concrete syntax.
    pub fn background_facts(&self) -> String {
        let rows = [
            ("hcNearCoastMax", self.hc_near_coast_max),
            ("trawlspeedMin", self.trawlspeed_min),
            ("trawlspeedMax", self.trawlspeed_max),
            ("tuggingMin", self.tugging_min),
            ("tuggingMax", self.tugging_max),
            ("sarMinSpeed", self.sar_min_speed),
            ("movingMin", self.moving_min),
            ("adriftAngThr", self.adrift_ang_thr),
        ];
        rows.iter()
            .map(|(name, v)| format!("thresholds({name}, {v:.1}).\n"))
            .collect()
    }

    /// The named threshold/value pairs with the one-line meanings used by
    /// prompt T.
    pub fn catalogue(&self) -> Vec<(&'static str, f64, &'static str)> {
        vec![
            (
                "hcNearCoastMax",
                self.hc_near_coast_max,
                "The maximum sailing speed that is safe for a vessel to have in a coastal area.",
            ),
            (
                "trawlspeedMin",
                self.trawlspeed_min,
                "The minimum speed at which a fishing vessel trawls.",
            ),
            (
                "trawlspeedMax",
                self.trawlspeed_max,
                "The maximum speed at which a fishing vessel trawls.",
            ),
            (
                "tuggingMin",
                self.tugging_min,
                "The minimum towing speed of a tug and its tow.",
            ),
            (
                "tuggingMax",
                self.tugging_max,
                "The maximum towing speed of a tug and its tow.",
            ),
            (
                "sarMinSpeed",
                self.sar_min_speed,
                "The minimum speed of a vessel engaged in a search-and-rescue sweep.",
            ),
            (
                "movingMin",
                self.moving_min,
                "The minimum speed at which a vessel counts as moving.",
            ),
            (
                "adriftAngThr",
                self.adrift_ang_thr,
                "The minimum deviation between heading and course over ground indicating drift.",
            ),
        ]
    }
}

/// Renders the `vesselType/2` and `typeSpeed/3` facts for a fleet.
pub fn fleet_background_facts(vessels: &[crate::vessel::Vessel]) -> String {
    let mut out = String::new();
    for v in vessels {
        out.push_str(&format!(
            "vesselType({}, {}).\n",
            v.id,
            v.vessel_type.as_atom()
        ));
    }
    for t in VesselType::ALL {
        let (min, max) = t.service_speed();
        out.push_str(&format!(
            "typeSpeed({}, {min:.1}, {max:.1}).\n",
            t.as_atom()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vessel::Vessel;

    #[test]
    fn facts_parse_as_rtec() {
        let t = Thresholds::default();
        let vessels = vec![
            Vessel::new(0, VesselType::Fishing),
            Vessel::new(1, VesselType::Tug),
        ];
        let src = format!(
            "{}{}",
            t.background_facts(),
            fleet_background_facts(&vessels)
        );
        let desc = rtec::EventDescription::parse(&src).unwrap();
        // 8 thresholds + 2 vesselType + 7 typeSpeed.
        assert_eq!(desc.clauses.len(), 8 + 2 + 7);
        let compiled = desc.compile().unwrap();
        assert!(!compiled.report.has_errors());
        assert_eq!(compiled.facts.len(), 17);
    }

    #[test]
    fn trawl_band_inside_fishing_service_gap() {
        // Trawling speeds must be below the fishing service range so that
        // movingSpeed=below coincides with trawling behaviour.
        let t = Thresholds::default();
        let (min, _) = VesselType::Fishing.service_speed();
        assert!(t.trawlspeed_max < min);
        assert!(t.moving_min < t.trawlspeed_min);
    }

    #[test]
    fn catalogue_covers_all_thresholds() {
        let t = Thresholds::default();
        assert_eq!(t.catalogue().len(), 8);
    }
}
