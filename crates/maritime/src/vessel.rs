//! Vessel identities, types and service-speed profiles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vessel identifier; rendered as the RTEC constant `v<n>` (standing in
/// for an MMSI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VesselId(pub u32);

impl fmt::Display for VesselId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The vessel classes of the synthetic fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VesselType {
    /// Fishing vessel (may trawl).
    Fishing,
    /// Harbour tug.
    Tug,
    /// Pilot boat.
    PilotVessel,
    /// Search-and-rescue vessel.
    Sar,
    /// Cargo ship.
    Cargo,
    /// Tanker.
    Tanker,
    /// Passenger ferry.
    Passenger,
}

impl VesselType {
    /// All types, in a stable order.
    pub const ALL: [VesselType; 7] = [
        VesselType::Fishing,
        VesselType::Tug,
        VesselType::PilotVessel,
        VesselType::Sar,
        VesselType::Cargo,
        VesselType::Tanker,
        VesselType::Passenger,
    ];

    /// The RTEC constant naming this type.
    pub fn as_atom(self) -> &'static str {
        match self {
            VesselType::Fishing => "fishing",
            VesselType::Tug => "tug",
            VesselType::PilotVessel => "pilotVessel",
            VesselType::Sar => "sar",
            VesselType::Cargo => "cargo",
            VesselType::Tanker => "tanker",
            VesselType::Passenger => "passenger",
        }
    }

    /// The service-speed range `(min, max)` in knots: the speeds at which
    /// a vessel of this type normally sails (the `typeSpeed/3` background
    /// predicate).
    pub fn service_speed(self) -> (f64, f64) {
        match self {
            VesselType::Fishing => (7.0, 11.0),
            VesselType::Tug => (6.0, 10.0),
            VesselType::PilotVessel => (10.0, 20.0),
            VesselType::Sar => (12.0, 25.0),
            VesselType::Cargo => (10.0, 16.0),
            VesselType::Tanker => (9.0, 14.0),
            VesselType::Passenger => (14.0, 22.0),
        }
    }
}

/// A vessel of the synthetic fleet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Vessel {
    /// Identifier.
    pub id: VesselId,
    /// Class.
    pub vessel_type: VesselType,
}

impl Vessel {
    /// Creates a vessel.
    pub fn new(id: u32, vessel_type: VesselType) -> Vessel {
        Vessel {
            id: VesselId(id),
            vessel_type,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_renders_as_atom() {
        assert_eq!(VesselId(42).to_string(), "v42");
    }

    #[test]
    fn service_speeds_are_sane() {
        for t in VesselType::ALL {
            let (min, max) = t.service_speed();
            assert!(min > 0.0 && min < max, "{t:?}");
        }
    }

    #[test]
    fn atoms_are_lowercase_constants() {
        for t in VesselType::ALL {
            let a = t.as_atom();
            assert!(a.chars().next().unwrap().is_lowercase());
        }
    }
}
