//! Scripted vessel behaviours.
//!
//! [`TrajectoryBuilder`] composes behaviour segments — sailing legs,
//! station keeping, trawling zigzags, drift, loitering, AIS silence — into
//! an AIS track. The segments are designed so that the preprocessing of
//! [`crate::preprocess`] derives exactly the critical events that the gold
//! activity definitions react to (e.g. a trawling zigzag inside a fishing
//! ground yields `change_in_heading` events at trawling speed, so
//! `trawlSpeed` and `trawlingMovement` both hold).

use crate::ais::{AisPoint, Trajectory};
use crate::geometry::{knots_to_mps, normalize_deg, Point};
use crate::vessel::VesselId;
use rand::rngs::StdRng;
use rand::Rng;

/// Incrementally builds one vessel's AIS track from behaviour segments.
#[derive(Debug)]
pub struct TrajectoryBuilder {
    vessel: VesselId,
    /// Seconds between consecutive AIS reports.
    period: i64,
    t: i64,
    pos: Point,
    heading: f64,
    points: Vec<AisPoint>,
}

impl TrajectoryBuilder {
    /// Starts a track for `vessel` at `start` seconds, position `pos`,
    /// reporting every `period` seconds.
    pub fn new(vessel: VesselId, start: i64, pos: Point, period: i64) -> TrajectoryBuilder {
        assert!(period > 0);
        TrajectoryBuilder {
            vessel,
            period,
            t: start,
            pos,
            heading: 0.0,
            points: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> i64 {
        self.t
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.pos
    }

    fn sample(&mut self, speed: f64, heading: f64, cog: f64) {
        self.points.push(AisPoint {
            vessel: self.vessel,
            t: self.t,
            pos: self.pos,
            speed: speed.max(0.0),
            heading: normalize_deg(heading),
            cog: normalize_deg(cog),
        });
        self.t += self.period;
    }

    fn advance(&mut self, speed_kn: f64, heading: f64) {
        let metres = knots_to_mps(speed_kn) * self.period as f64;
        self.pos = self.pos.step(heading, metres);
        self.heading = heading;
    }

    /// Sails in a straight line towards `target` at roughly `speed_kn`,
    /// stopping when within one reporting step of it.
    pub fn sail_to(&mut self, rng: &mut StdRng, target: Point, speed_kn: f64) -> &mut Self {
        let step = knots_to_mps(speed_kn) * self.period as f64;
        // Guard against zero-length legs.
        let mut guard = 0;
        while self.pos.distance(&target) > step && guard < 100_000 {
            let heading = self.pos.heading_to(&target);
            let speed = speed_kn + rng.gen_range(-0.3..0.3);
            self.sample(speed, heading, heading);
            self.advance(speed, heading);
            guard += 1;
        }
        self
    }

    /// Stays (almost) put for `duration` seconds: speed jitters around
    /// 0.1 kn, well below the stop threshold.
    pub fn hold(&mut self, rng: &mut StdRng, duration: i64) -> &mut Self {
        let end = self.t + duration;
        while self.t < end {
            let heading = self.heading + rng.gen_range(-3.0..3.0);
            let speed = rng.gen_range(0.0..0.25);
            self.sample(speed, heading, heading);
            self.heading = heading;
        }
        self
    }

    /// Wanders slowly (1–3 kn, gently turning) for `duration` seconds —
    /// the kinematics of loitering.
    pub fn loiter(&mut self, rng: &mut StdRng, duration: i64) -> &mut Self {
        let end = self.t + duration;
        while self.t < end {
            let heading = normalize_deg(self.heading + rng.gen_range(-8.0..8.0));
            let speed = rng.gen_range(1.2..3.0);
            self.sample(speed, heading, heading);
            self.advance(speed, heading);
        }
        self
    }

    /// Trawling/search zigzag: legs of `leg_seconds` at `speed_kn`,
    /// alternating heading by ±`turn_deg` around `base_heading`.
    pub fn zigzag(
        &mut self,
        rng: &mut StdRng,
        duration: i64,
        speed_kn: f64,
        base_heading: f64,
        turn_deg: f64,
        leg_seconds: i64,
    ) -> &mut Self {
        let end = self.t + duration;
        let mut sign = 1.0;
        let mut leg_end = self.t + leg_seconds;
        while self.t < end {
            if self.t >= leg_end {
                sign = -sign;
                leg_end = self.t + leg_seconds;
            }
            let heading = normalize_deg(base_heading + sign * turn_deg + rng.gen_range(-2.0..2.0));
            let speed = speed_kn + rng.gen_range(-0.3..0.3);
            self.sample(speed, heading, heading);
            self.advance(speed, heading);
        }
        self
    }

    /// Drifts for `duration` seconds: low-but-moving speed with the course
    /// over ground offset from the heading by `cog_offset_deg` (wind/
    /// current pushing the hull sideways).
    pub fn drift(
        &mut self,
        rng: &mut StdRng,
        duration: i64,
        speed_kn: f64,
        cog_offset_deg: f64,
    ) -> &mut Self {
        let end = self.t + duration;
        while self.t < end {
            let heading = normalize_deg(self.heading + rng.gen_range(-1.5..1.5));
            let cog = normalize_deg(heading + cog_offset_deg + rng.gen_range(-3.0..3.0));
            let speed = speed_kn + rng.gen_range(-0.2..0.2);
            self.sample(speed, heading, cog);
            // The hull moves along the course over ground, not the heading.
            let metres = knots_to_mps(speed) * self.period as f64;
            self.pos = self.pos.step(cog, metres);
            self.heading = heading;
        }
        self
    }

    /// AIS silence: no reports for `duration` seconds (the vessel keeps
    /// sailing its current heading slowly). Produces a communication gap
    /// when `duration` exceeds the preprocessing gap threshold.
    pub fn silence(&mut self, duration: i64, speed_kn: f64) -> &mut Self {
        let metres = knots_to_mps(speed_kn) * duration as f64;
        self.pos = self.pos.step(self.heading, metres);
        self.t += duration;
        self
    }

    /// Keeps pace alongside a leader's track segment (for tugging and
    /// pilot boarding): mirrors the leader's kinematics from `from_t`
    /// onwards at a constant offset, for `duration` seconds.
    pub fn shadow(
        &mut self,
        leader: &Trajectory,
        from_t: i64,
        duration: i64,
        offset: Point,
    ) -> &mut Self {
        let end = from_t + duration;
        for p in &leader.points {
            if p.t < from_t.max(self.t) || p.t >= end {
                continue;
            }
            self.t = p.t;
            self.pos = Point::new(p.pos.x + offset.x, p.pos.y + offset.y);
            self.heading = p.heading;
            self.sample(p.speed, p.heading, p.cog);
        }
        self
    }

    /// Finishes the track.
    pub fn finish(self) -> Trajectory {
        let tr = Trajectory {
            points: self.points,
        };
        tr.check_sorted();
        tr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn sail_to_reaches_target() {
        let mut r = rng();
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, Point::new(0.0, 0.0), 60);
        b.sail_to(&mut r, Point::new(5_000.0, 0.0), 10.0);
        let tr = b.finish();
        assert!(!tr.is_empty());
        let last = tr.points.last().unwrap();
        assert!(last.pos.distance(&Point::new(5_000.0, 0.0)) < 1_000.0);
        // Speeds hover around 10 kn.
        assert!(tr.points.iter().all(|p| (p.speed - 10.0).abs() < 1.0));
    }

    #[test]
    fn hold_is_nearly_stationary() {
        let mut r = rng();
        let start = Point::new(100.0, 100.0);
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, start, 60);
        b.hold(&mut r, 3600);
        let tr = b.finish();
        assert_eq!(tr.len(), 60);
        assert!(tr.points.iter().all(|p| p.speed < 0.5));
        assert!(tr.points.iter().all(|p| p.pos.distance(&start) < 1.0));
    }

    #[test]
    fn zigzag_changes_heading_repeatedly() {
        let mut r = rng();
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, Point::new(0.0, 0.0), 60);
        b.zigzag(&mut r, 3600, 4.0, 90.0, 40.0, 300);
        let tr = b.finish();
        let big_turns = tr
            .points
            .windows(2)
            .filter(|w| crate::geometry::heading_diff(w[0].heading, w[1].heading) > 15.0)
            .count();
        assert!(big_turns >= 5, "only {big_turns} large turns");
    }

    #[test]
    fn drift_offsets_cog_from_heading() {
        let mut r = rng();
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, Point::new(0.0, 0.0), 60);
        b.drift(&mut r, 1800, 1.5, 40.0);
        let tr = b.finish();
        assert!(tr
            .points
            .iter()
            .all(|p| crate::geometry::heading_diff(p.heading, p.cog) > 30.0));
    }

    #[test]
    fn silence_creates_report_hole() {
        let mut r = rng();
        let mut b = TrajectoryBuilder::new(VesselId(1), 0, Point::new(0.0, 0.0), 60);
        b.loiter(&mut r, 600).silence(7200, 2.0).loiter(&mut r, 600);
        let tr = b.finish();
        let max_gap = tr.points.windows(2).map(|w| w[1].t - w[0].t).max().unwrap();
        assert!(max_gap >= 7200);
    }

    #[test]
    fn shadow_tracks_leader() {
        let mut r = rng();
        let mut lead = TrajectoryBuilder::new(VesselId(1), 0, Point::new(0.0, 0.0), 60);
        lead.sail_to(&mut r, Point::new(3_000.0, 0.0), 4.0);
        let lead = lead.finish();
        let mut follow = TrajectoryBuilder::new(VesselId(2), 0, Point::new(0.0, 50.0), 60);
        follow.shadow(&lead, 0, 100_000, Point::new(0.0, 80.0));
        let follow = follow.finish();
        assert_eq!(follow.len(), lead.len());
        for (a, b) in lead.points.iter().zip(&follow.points) {
            assert!(a.pos.distance(&b.pos) < 100.0);
            assert_eq!(a.t, b.t);
        }
    }
}
