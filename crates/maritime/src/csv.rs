//! AIS CSV import/export.
//!
//! The paper's dataset is the public Brest AIS corpus (zenodo record
//! 1167595, `nari_dynamic.csv`), with columns
//! `sourcemmsi,navigationalstatus,rateofturn,speedoverground,
//! courseoverground,trueheading,lon,lat,t`. This module parses that
//! format (header-driven, so column order is free) into [`Trajectory`]s
//! — anyone with the real corpus can replay it through the exact same
//! pipeline as the synthetic scenario — and exports synthetic tracks back
//! to the same format for inspection.
//!
//! Longitude/latitude are projected to local planar metres with an
//! equirectangular projection around the dataset's centroid, which is
//! accurate to well under 1% over a coastal region the size of the Brest
//! area.

use crate::ais::{AisPoint, Trajectory};
use crate::geometry::Point;
use crate::vessel::VesselId;
use std::collections::BTreeMap;
use std::fmt;

/// Metres per degree of latitude (spherical approximation).
const METRES_PER_DEG_LAT: f64 = 111_320.0;

/// A CSV parsing failure.
#[derive(Clone, Debug, PartialEq)]
pub struct CsvError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// The recognised column names (case-insensitive). `heading` falls back
/// to `courseoverground` when `trueheading` reports the AIS
/// not-available sentinel (511).
#[derive(Debug, Clone, Copy)]
struct Columns {
    mmsi: usize,
    sog: usize,
    cog: usize,
    heading: Option<usize>,
    lon: usize,
    lat: usize,
    t: usize,
}

fn locate_columns(header: &str, line: usize) -> Result<Columns, CsvError> {
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_lowercase()).collect();
    let find = |candidates: &[&str]| -> Option<usize> {
        names.iter().position(|n| candidates.contains(&n.as_str()))
    };
    let need = |candidates: &[&str]| -> Result<usize, CsvError> {
        find(candidates).ok_or_else(|| CsvError {
            line,
            message: format!("missing column (one of {candidates:?})"),
        })
    };
    Ok(Columns {
        mmsi: need(&["sourcemmsi", "mmsi"])?,
        sog: need(&["speedoverground", "sog", "speed"])?,
        cog: need(&["courseoverground", "cog", "course"])?,
        heading: find(&["trueheading", "heading"]),
        lon: need(&["lon", "longitude"])?,
        lat: need(&["lat", "latitude"])?,
        t: need(&["t", "ts", "timestamp"])?,
    })
}

/// The MMSI-to-dense-id mapping produced by CSV import.
pub type MmsiMapping = Vec<(u64, VesselId)>;

/// One row (or the header) skipped by [`parse_ais_csv_lossy`].
#[derive(Clone, Debug, PartialEq)]
pub struct RowDiagnostic {
    /// 1-based line number of the skipped row.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl RowDiagnostic {
    /// Converts to the engine's dead-letter shape, reason-coded
    /// [`rtec::reorder::DeadLetterReason::Malformed`], so CSV skips and
    /// wire-level refusals share one audit vocabulary.
    pub fn to_dead_letter(&self) -> rtec::reorder::DeadLetter {
        rtec::reorder::DeadLetter {
            reason: rtec::reorder::DeadLetterReason::Malformed,
            t: None,
            detail: format!("line {}: {}", self.line, self.message),
        }
    }
}

impl fmt::Display for RowDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl From<CsvError> for RowDiagnostic {
    fn from(err: CsvError) -> RowDiagnostic {
        RowDiagnostic {
            line: err.line,
            message: err.message,
        }
    }
}

struct Raw {
    mmsi: u64,
    t: i64,
    lon: f64,
    lat: f64,
    sog: f64,
    cog: f64,
    heading: Option<f64>,
}

fn parse_row(cols: &Columns, line_no: usize, line: &str) -> Result<Raw, CsvError> {
    let fields: Vec<&str> = line.split(',').collect();
    let get = |idx: usize| -> Result<&str, CsvError> {
        fields.get(idx).copied().ok_or_else(|| CsvError {
            line: line_no,
            message: format!("missing field {idx}"),
        })
    };
    let num = |idx: usize| -> Result<f64, CsvError> {
        get(idx)?.trim().parse::<f64>().map_err(|e| CsvError {
            line: line_no,
            message: format!("bad number '{}': {e}", fields[idx]),
        })
    };
    let heading = match cols.heading {
        Some(h) => {
            let v = num(h)?;
            // 511 is AIS's "not available" sentinel.
            (v < 360.0).then_some(v)
        }
        None => None,
    };
    Ok(Raw {
        mmsi: num(cols.mmsi)? as u64,
        t: num(cols.t)? as i64,
        lon: num(cols.lon)?,
        lat: num(cols.lat)?,
        sog: num(cols.sog)?,
        cog: num(cols.cog)?,
        heading,
    })
}

/// Parses Brest-format AIS CSV text into per-vessel trajectories, sorted
/// by time, with positions projected to local planar metres. Vessels are
/// renumbered densely (`v0`, `v1`, ...) in MMSI order; the mapping is
/// returned alongside. Strict: the first bad row aborts the parse — use
/// [`parse_ais_csv_lossy`] for real-world feeds with occasional junk.
pub fn parse_ais_csv(text: &str) -> Result<(Vec<Trajectory>, MmsiMapping), CsvError> {
    let mut lines = text.lines().enumerate();
    let (hline, header) = lines.next().ok_or(CsvError {
        line: 1,
        message: "empty input".into(),
    })?;
    let cols = locate_columns(header, hline + 1)?;
    let mut raws: Vec<Raw> = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        raws.push(parse_row(&cols, i + 1, line)?);
    }
    Ok(assemble(raws))
}

/// Tolerant variant of [`parse_ais_csv`]: rows that fail field lookup or
/// numeric validation are skipped and recorded as [`RowDiagnostic`]s
/// instead of aborting the parse, so one corrupt line in a
/// multi-gigabyte AIS dump does not discard the rest. An unusable
/// header (or empty input) yields no trajectories and a single
/// header-level diagnostic.
pub fn parse_ais_csv_lossy(text: &str) -> (Vec<Trajectory>, MmsiMapping, Vec<RowDiagnostic>) {
    let mut lines = text.lines().enumerate();
    let Some((hline, header)) = lines.next() else {
        return (
            Vec::new(),
            Vec::new(),
            vec![RowDiagnostic {
                line: 1,
                message: "empty input".into(),
            }],
        );
    };
    let cols = match locate_columns(header, hline + 1) {
        Ok(cols) => cols,
        Err(err) => return (Vec::new(), Vec::new(), vec![err.into()]),
    };
    let mut raws: Vec<Raw> = Vec::new();
    let mut diagnostics: Vec<RowDiagnostic> = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_row(&cols, i + 1, line) {
            Ok(raw) => raws.push(raw),
            Err(err) => diagnostics.push(err.into()),
        }
    }
    let (trajectories, mapping) = assemble(raws);
    (trajectories, mapping, diagnostics)
}

/// Projects raw rows and groups them into densely renumbered per-vessel
/// trajectories (the shared back half of both parse entry points).
fn assemble(raws: Vec<Raw>) -> (Vec<Trajectory>, MmsiMapping) {
    if raws.is_empty() {
        return (Vec::new(), Vec::new());
    }

    // Equirectangular projection around the centroid.
    let lat0 = raws.iter().map(|r| r.lat).sum::<f64>() / raws.len() as f64;
    let lon0 = raws.iter().map(|r| r.lon).sum::<f64>() / raws.len() as f64;
    let t0 = raws.iter().map(|r| r.t).min().expect("non-empty");
    let metres_per_deg_lon = METRES_PER_DEG_LAT * lat0.to_radians().cos();

    let mut by_vessel: BTreeMap<u64, Vec<AisPoint>> = BTreeMap::new();
    for r in &raws {
        by_vessel.entry(r.mmsi).or_default().push(AisPoint {
            vessel: VesselId(0), // patched below
            t: r.t - t0,
            pos: Point::new(
                (r.lon - lon0) * metres_per_deg_lon,
                (r.lat - lat0) * METRES_PER_DEG_LAT,
            ),
            speed: r.sog,
            heading: r.heading.unwrap_or(r.cog),
            cog: r.cog,
        });
    }

    let mut mapping = Vec::new();
    let mut trajectories = Vec::new();
    for (idx, (mmsi, mut points)) in by_vessel.into_iter().enumerate() {
        let id = VesselId(idx as u32);
        mapping.push((mmsi, id));
        points.sort_by_key(|p| p.t);
        points.dedup_by_key(|p| p.t);
        for p in &mut points {
            p.vessel = id;
        }
        trajectories.push(Trajectory { points });
    }
    (trajectories, mapping)
}

/// Exports trajectories to the Brest CSV format (one row per signal).
pub fn to_ais_csv(trajectories: &[Trajectory]) -> String {
    let mut out = String::from(
        "sourcemmsi,navigationalstatus,rateofturn,speedoverground,courseoverground,\
         trueheading,lon,lat,t\n",
    );
    for tr in trajectories {
        for p in &tr.points {
            // Export the planar metres as pseudo lon/lat around 0,0 so a
            // round trip through parse_ais_csv is lossless up to
            // projection.
            out.push_str(&format!(
                "{},0,0,{:.2},{:.1},{:.1},{:.8},{:.8},{}\n",
                p.vessel.0,
                p.speed,
                p.cog,
                p.heading,
                p.pos.x / (METRES_PER_DEG_LAT),
                p.pos.y / METRES_PER_DEG_LAT,
                p.t
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
sourcemmsi,navigationalstatus,rateofturn,speedoverground,courseoverground,trueheading,lon,lat,t
227002330,0,0,9.5,91.0,90.0,-4.45,48.35,1443650400
227002330,0,0,9.6,91.0,90.0,-4.44,48.35,1443650460
228131000,0,0,0.1,10.0,511,-4.47,48.36,1443650400
";

    #[test]
    fn parses_brest_format() {
        let (trs, mapping) = parse_ais_csv(SAMPLE).unwrap();
        assert_eq!(trs.len(), 2);
        assert_eq!(mapping.len(), 2);
        assert_eq!(mapping[0].0, 227002330);
        // Two points for the first vessel, relative times 0 and 60.
        assert_eq!(trs[0].len(), 2);
        assert_eq!(trs[0].points[0].t, 0);
        assert_eq!(trs[0].points[1].t, 60);
        // Heading sentinel 511 falls back to course over ground.
        assert_eq!(trs[1].points[0].heading, 10.0);
        // ~0.01 deg of longitude at 48N is about 740 m.
        let d = trs[0].points[0].pos.distance(&trs[0].points[1].pos);
        assert!((600.0..900.0).contains(&d), "distance {d}");
    }

    #[test]
    fn header_columns_may_be_reordered() {
        let csv = "t,lat,lon,sog,cog,mmsi\n100,48.0,-4.0,5.0,90.0,42\n";
        let (trs, mapping) = parse_ais_csv(csv).unwrap();
        assert_eq!(trs.len(), 1);
        assert_eq!(mapping[0].0, 42);
        assert_eq!(trs[0].points[0].speed, 5.0);
    }

    #[test]
    fn missing_column_is_an_error() {
        let csv = "lat,lon,sog,cog,mmsi\n48.0,-4.0,5.0,90.0,42\n";
        let err = parse_ais_csv(csv).unwrap_err();
        assert!(err.message.contains("missing column"));
    }

    #[test]
    fn bad_number_reports_line() {
        let csv = "t,lat,lon,sog,cog,mmsi\n100,48.0,-4.0,abc,90.0,42\n";
        let err = parse_ais_csv(csv).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad number"));
    }

    #[test]
    fn empty_body_gives_empty_output() {
        let csv = "t,lat,lon,sog,cog,mmsi\n";
        let (trs, mapping) = parse_ais_csv(csv).unwrap();
        assert!(trs.is_empty());
        assert!(mapping.is_empty());
    }

    #[test]
    fn export_then_import_round_trips_counts() {
        let dataset = crate::dataset::Dataset::generate(&crate::dataset::BrestScenario::small());
        let csv = to_ais_csv(&dataset.trajectories[..2]);
        let (back, _) = parse_ais_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        let orig: usize = dataset.trajectories[..2].iter().map(Trajectory::len).sum();
        let round: usize = back.iter().map(Trajectory::len).sum();
        assert_eq!(orig, round);
        // Speeds survive exactly (2 decimal places in export, one in gen).
        assert!((back[0].points[0].speed - dataset.trajectories[0].points[0].speed).abs() < 0.01);
    }

    #[test]
    fn imported_csv_feeds_the_preprocessing_pipeline() {
        let (trs, _) = parse_ais_csv(SAMPLE).unwrap();
        let areas = crate::areas::AreaMap::brest_like();
        let stream = crate::preprocess::preprocess(
            &trs,
            &areas,
            &crate::preprocess::PreprocessConfig::default(),
        );
        // Three signals -> three velocity events at least.
        assert!(stream.len() >= 3);
    }
}
