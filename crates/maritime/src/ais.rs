//! AIS position signals.
//!
//! Each signal carries the kinematics the real Automatic Identification
//! System transmits: position, speed over ground, heading and course over
//! ground (paper, Section 5.1).

use crate::geometry::Point;
use crate::vessel::VesselId;
use serde::{Deserialize, Serialize};

/// One AIS position report.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AisPoint {
    /// Reporting vessel.
    pub vessel: VesselId,
    /// Unix-style timestamp in seconds from scenario start.
    pub t: i64,
    /// Position (metres, local plane).
    pub pos: Point,
    /// Speed over ground, knots.
    pub speed: f64,
    /// Heading, degrees clockwise from north.
    pub heading: f64,
    /// Course over ground, degrees clockwise from north. Deviates from
    /// heading when the vessel drifts.
    pub cog: f64,
}

/// The time-ordered AIS track of one vessel.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// The signals, sorted by time.
    pub points: Vec<AisPoint>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Trajectory {
        Trajectory::default()
    }

    /// Number of signals.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First signal time, if any.
    pub fn start(&self) -> Option<i64> {
        self.points.first().map(|p| p.t)
    }

    /// Last signal time, if any.
    pub fn end(&self) -> Option<i64> {
        self.points.last().map(|p| p.t)
    }

    /// Asserts the time-ordering invariant (strictly increasing).
    pub fn check_sorted(&self) {
        for w in self.points.windows(2) {
            assert!(w[0].t < w[1].t, "trajectory not strictly time-ordered");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_bookkeeping() {
        let mut tr = Trajectory::new();
        assert!(tr.is_empty());
        tr.points.push(AisPoint {
            vessel: VesselId(1),
            t: 0,
            pos: Point::new(0.0, 0.0),
            speed: 10.0,
            heading: 90.0,
            cog: 90.0,
        });
        tr.points.push(AisPoint {
            vessel: VesselId(1),
            t: 60,
            pos: Point::new(300.0, 0.0),
            speed: 10.0,
            heading: 90.0,
            cog: 90.0,
        });
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.start(), Some(0));
        assert_eq!(tr.end(), Some(60));
        tr.check_sorted();
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unsorted_trajectory_panics_check() {
        let p = AisPoint {
            vessel: VesselId(1),
            t: 60,
            pos: Point::new(0.0, 0.0),
            speed: 0.0,
            heading: 0.0,
            cog: 0.0,
        };
        let tr = Trajectory {
            points: vec![p, AisPoint { t: 10, ..p }],
        };
        tr.check_sorted();
    }
}
