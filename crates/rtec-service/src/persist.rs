//! Durable session checkpoints: one JSON document per session, written
//! atomically at tick boundaries.
//!
//! A [`SessionCheckpoint`] captures everything needed to rebuild a
//! session with identical future behaviour: the description source, the
//! session configuration, the master symbol names in interning order
//! (re-interning them reproduces identical symbol ids, so terms encoded
//! with raw ids decode against the rebuilt table), the router's
//! entity→shard assignment, one [`EngineCheckpoint`] per shard, and the
//! session counters.
//!
//! The on-disk document carries the same `{"version", "crc", "state"}`
//! envelope as engine checkpoints: a torn or truncated write fails the
//! checksum on load instead of restoring corrupt state. Writes go to a
//! temp file first and are renamed into place, so the previous
//! checkpoint survives any failure before the rename — including the
//! injected I/O faults from [`crate::fault`].

use crate::fault;
use crate::router::RouterSnapshot;
use crate::session::{Session, SessionConfig, SessionStats};
use rtec::checkpoint::{decode_term, encode_term, fnv1a_hex, EngineCheckpoint, CHECKPOINT_VERSION};
use rtec::reorder::{DeadLetterReason, ReorderSnapshot};
use rtec::Timepoint;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A persistable image of a whole session at a tick boundary.
#[derive(Clone, Debug)]
pub struct SessionCheckpoint {
    /// Session name.
    pub name: String,
    /// The description source the session was opened with.
    pub description_src: String,
    /// Session configuration.
    pub config: SessionConfig,
    /// Master symbol names in interning order.
    pub master_symbols: Vec<String>,
    /// The router's sharding decisions.
    pub router: RouterSnapshot,
    /// One engine checkpoint per shard, in shard order.
    pub shards: Vec<EngineCheckpoint>,
    /// Session counters (the latency histogram is not persisted).
    pub stats: SessionStats,
    /// Exact dead-letter counts in [`DeadLetterReason::ALL`] order (the
    /// per-record ring is process-local audit state and is not
    /// persisted).
    pub deadletter_counts: [u64; DeadLetterReason::ALL.len()],
    /// Ledger records evicted from the bounded ring before capture.
    pub deadletter_records_dropped: u64,
    /// The reorder buffer's contents and frontier, when the session has
    /// one configured: events admitted but still awaiting the watermark
    /// at the tick boundary must survive a restore.
    pub reorder: Option<ReorderSnapshot>,
    /// The write-ahead journal sequence number this checkpoint covers:
    /// every journaled record with `seq <= journal_seq` is already
    /// folded into the image, so recovery replays only the tail beyond
    /// it. Zero when the session is not journaled (see
    /// [`crate::journal`]).
    pub journal_seq: u64,
}

impl SessionCheckpoint {
    /// Captures a session. Returns `None` before the first tick (no
    /// shard checkpoints yet) or while items are buffered awaiting a
    /// flush — callers checkpoint right after a successful tick, where
    /// both conditions hold.
    pub fn capture(session: &Session) -> Option<SessionCheckpoint> {
        if session.buffered() > 0 {
            return None;
        }
        let shards = session.shard_checkpoints()?;
        Some(SessionCheckpoint {
            name: session.name().to_string(),
            description_src: session.description_src().to_string(),
            config: session.config(),
            master_symbols: session
                .master_symbols()
                .iter()
                .map(|(_, name)| name.to_string())
                .collect(),
            router: session.router_snapshot(),
            shards: shards.into_iter().cloned().collect(),
            stats: session.stats().clone(),
            deadletter_counts: session.dead_letters().counts(),
            deadletter_records_dropped: session.dead_letters().records_dropped(),
            reorder: session.reorder_snapshot(),
            journal_seq: 0,
        })
    }

    /// Rebuilds a live session from this checkpoint.
    pub fn restore(&self) -> Result<Session, String> {
        let mut session = Session::reopen(
            self.name.clone(),
            &self.description_src,
            self.config,
            &self.master_symbols,
            &self.router,
            self.shards.clone(),
            self.stats.clone(),
        )?;
        session.restore_ingest(
            self.deadletter_counts,
            self.deadletter_records_dropped,
            self.reorder.as_ref(),
        );
        Ok(session)
    }

    /// Serializes to the versioned, checksummed document. Deterministic:
    /// the same session state yields byte-identical documents.
    pub fn to_json(&self) -> String {
        let state = self.to_value();
        let payload = serde_json::to_string(&state).unwrap_or_else(|_| "{}".into());
        let mut doc = BTreeMap::new();
        doc.insert("version".to_string(), Value::from(CHECKPOINT_VERSION));
        doc.insert(
            "crc".to_string(),
            Value::from(fnv1a_hex(payload.as_bytes())),
        );
        doc.insert("state".to_string(), state);
        serde_json::to_string(&Value::Object(doc)).unwrap_or_else(|_| "{}".into())
    }

    /// Parses and verifies a document (version, then checksum).
    pub fn from_json(text: &str) -> Result<SessionCheckpoint, String> {
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| format!("session checkpoint: malformed JSON: {e}"))?;
        let version = doc
            .get("version")
            .and_then(Value::as_i64)
            .ok_or("session checkpoint: missing \"version\"")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "session checkpoint: unsupported version {version} (expected {CHECKPOINT_VERSION})"
            ));
        }
        let crc = doc
            .get("crc")
            .and_then(Value::as_str)
            .ok_or("session checkpoint: missing \"crc\"")?;
        let state = doc
            .get("state")
            .ok_or("session checkpoint: missing \"state\"")?;
        let payload =
            serde_json::to_string(state).map_err(|e| format!("session checkpoint: {e}"))?;
        let actual = fnv1a_hex(payload.as_bytes());
        if actual != crc {
            return Err(format!(
                "session checkpoint: checksum mismatch (stored {crc}, computed {actual}) — \
                 torn write?"
            ));
        }
        SessionCheckpoint::from_value(state)
    }

    fn to_value(&self) -> Value {
        let mut state = BTreeMap::new();
        state.insert("name".to_string(), Value::from(self.name.as_str()));
        state.insert(
            "description".to_string(),
            Value::from(self.description_src.as_str()),
        );
        let mut config = BTreeMap::new();
        config.insert(
            "window".to_string(),
            match self.config.window {
                Some(w) => Value::from(w),
                None => Value::Null,
            },
        );
        config.insert(
            "slide".to_string(),
            match self.config.slide {
                Some(s) => Value::from(s),
                None => Value::Null,
            },
        );
        config.insert(
            "incremental".to_string(),
            Value::Bool(self.config.incremental),
        );
        config.insert("shards".to_string(), counter(self.config.shards));
        config.insert(
            "queue_capacity".to_string(),
            counter(self.config.queue_capacity),
        );
        config.insert(
            "max_worker_restarts".to_string(),
            counter(self.config.max_worker_restarts),
        );
        config.insert(
            "reorder_slack".to_string(),
            match self.config.reorder_slack {
                Some(s) => Value::from(s),
                None => Value::Null,
            },
        );
        config.insert("dedup".to_string(), Value::Bool(self.config.dedup));
        config.insert(
            "max_events_per_tick".to_string(),
            opt_counter_u64(self.config.max_events_per_tick),
        );
        config.insert(
            "max_buffered_bytes".to_string(),
            opt_counter_u64(self.config.max_buffered_bytes),
        );
        config.insert(
            "tick_deadline_ms".to_string(),
            opt_counter_u64(self.config.tick_deadline_ms),
        );
        config.insert("eval".to_string(), Value::from(self.config.eval.as_str()));
        config.insert("profile".to_string(), Value::Bool(self.config.profile));
        config.insert(
            "slow_tick_ms".to_string(),
            opt_counter_u64(self.config.slow_tick_ms),
        );
        state.insert("config".to_string(), Value::Object(config));
        state.insert(
            "master_symbols".to_string(),
            Value::Array(
                self.master_symbols
                    .iter()
                    .map(|s| Value::from(s.as_str()))
                    .collect(),
            ),
        );
        let mut router = BTreeMap::new();
        router.insert("n_shards".to_string(), counter(self.router.n_shards));
        router.insert(
            "entities".to_string(),
            Value::Array(self.router.entities.iter().map(encode_term).collect()),
        );
        router.insert(
            "parent".to_string(),
            Value::Array(self.router.parent.iter().map(|&p| counter(p)).collect()),
        );
        router.insert(
            "shard_of_root".to_string(),
            Value::Array(
                self.router
                    .shard_of_root
                    .iter()
                    .map(|&(root, shard)| Value::Array(vec![counter(root), counter(shard)]))
                    .collect(),
            ),
        );
        router.insert("pinned".to_string(), counter(self.router.pinned));
        router.insert(
            "late_couplings".to_string(),
            counter_u64(self.router.late_couplings),
        );
        state.insert("router".to_string(), Value::Object(router));
        state.insert(
            "shards".to_string(),
            Value::Array(self.shards.iter().map(EngineCheckpoint::to_value).collect()),
        );
        let mut stats = BTreeMap::new();
        stats.insert(
            "events_ingested".to_string(),
            counter_u64(self.stats.events_ingested),
        );
        stats.insert(
            "intervals_ingested".to_string(),
            counter_u64(self.stats.intervals_ingested),
        );
        stats.insert(
            "backpressure_waits".to_string(),
            counter_u64(self.stats.backpressure_waits),
        );
        stats.insert("ticks".to_string(), counter_u64(self.stats.ticks));
        stats.insert(
            "processed_to".to_string(),
            Value::from(self.stats.processed_to),
        );
        stats.insert(
            "queue_high_water".to_string(),
            Value::Array(
                self.stats
                    .queue_high_water
                    .iter()
                    .map(|&n| counter_u64(n))
                    .collect(),
            ),
        );
        stats.insert(
            "worker_restarts".to_string(),
            counter_u64(self.stats.worker_restarts),
        );
        stats.insert(
            "frames_rejected".to_string(),
            counter_u64(self.stats.frames_rejected),
        );
        let mut engine = BTreeMap::new();
        engine.insert("windows".to_string(), counter(self.stats.engine.windows));
        engine.insert(
            "events_processed".to_string(),
            counter(self.stats.engine.events_processed),
        );
        engine.insert(
            "events_dropped".to_string(),
            counter(self.stats.engine.events_dropped),
        );
        stats.insert("shed".to_string(), counter_u64(self.stats.shed));
        stats.insert("engine".to_string(), Value::Object(engine));
        state.insert("stats".to_string(), Value::Object(stats));
        let mut ingest = BTreeMap::new();
        let mut dl = BTreeMap::new();
        for (reason, &count) in DeadLetterReason::ALL.iter().zip(&self.deadletter_counts) {
            dl.insert(reason.as_str().to_string(), counter_u64(count));
        }
        ingest.insert("deadletter".to_string(), Value::Object(dl));
        ingest.insert(
            "deadletter_records_dropped".to_string(),
            counter_u64(self.deadletter_records_dropped),
        );
        ingest.insert(
            "reorder".to_string(),
            match &self.reorder {
                None => Value::Null,
                Some(snapshot) => {
                    let mut map = BTreeMap::new();
                    map.insert(
                        "events".to_string(),
                        Value::Array(
                            snapshot
                                .events
                                .iter()
                                .map(|(term, t)| {
                                    Value::Array(vec![encode_term(term), Value::from(*t)])
                                })
                                .collect(),
                        ),
                    );
                    map.insert("max_seen".to_string(), Value::from(snapshot.max_seen));
                    map.insert("released_to".to_string(), Value::from(snapshot.released_to));
                    Value::Object(map)
                }
            },
        );
        state.insert("ingest".to_string(), Value::Object(ingest));
        state.insert("journal_seq".to_string(), counter_u64(self.journal_seq));
        Value::Object(state)
    }

    fn from_value(state: &Value) -> Result<SessionCheckpoint, String> {
        let name = str_of(state, "name")?;
        let description_src = str_of(state, "description")?;
        let config_v = state
            .get("config")
            .ok_or("session checkpoint: missing \"config\"")?;
        let config = SessionConfig {
            window: match config_v.get("window") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_i64().ok_or("session checkpoint: non-integer window")?),
            },
            // Lenient on read: checkpoints written before sliding
            // evaluation lack both keys (tumbling, full recompute).
            slide: opt_i64_of(config_v, "slide")?,
            incremental: matches!(config_v.get("incremental"), Some(Value::Bool(true))),
            shards: usize_of(config_v, "shards")?,
            queue_capacity: usize_of(config_v, "queue_capacity")?,
            max_worker_restarts: usize_of(config_v, "max_worker_restarts")?,
            // Ingest options are lenient on read: checkpoints written
            // before the resilient-ingestion layer simply lack them.
            reorder_slack: opt_i64_of(config_v, "reorder_slack")?,
            dedup: bool_of(config_v, "dedup")?,
            max_events_per_tick: opt_u64_of(config_v, "max_events_per_tick")?,
            max_buffered_bytes: opt_u64_of(config_v, "max_buffered_bytes")?,
            tick_deadline_ms: opt_u64_of(config_v, "tick_deadline_ms")?,
            // Lenient on read (older checkpoints lack it). Engine state
            // is mode-agnostic, so restoring under a different mode than
            // the one that wrote the checkpoint is sound; the recorded
            // mode wins over the environment when present.
            eval: match config_v.get("eval") {
                None | Some(Value::Null) => SessionConfig::default().eval,
                Some(v) => v
                    .as_str()
                    .and_then(rtec::engine::EvalMode::parse)
                    .ok_or("session checkpoint: bad eval mode")?,
            },
            // Lenient on read: checkpoints written before the profiler
            // restore with it on (the default) — profiler state itself
            // is process-local and was never in the checkpoint anyway.
            profile: match config_v.get("profile") {
                None | Some(Value::Null) => true,
                Some(b) => b
                    .as_bool()
                    .ok_or("session checkpoint: non-boolean \"profile\"")?,
            },
            slow_tick_ms: opt_u64_of(config_v, "slow_tick_ms")?,
        };
        let master_symbols = str_array(state, "master_symbols")?;
        let router_v = state
            .get("router")
            .ok_or("session checkpoint: missing \"router\"")?;
        let router = RouterSnapshot {
            n_shards: usize_of(router_v, "n_shards")?,
            entities: array_of(router_v, "entities")?
                .iter()
                .map(decode_term)
                .collect::<Result<Vec<_>, String>>()?,
            parent: array_of(router_v, "parent")?
                .iter()
                .map(|v| {
                    v.as_i64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| "session checkpoint: bad parent entry".to_string())
                })
                .collect::<Result<Vec<_>, String>>()?,
            shard_of_root: array_of(router_v, "shard_of_root")?
                .iter()
                .map(|v| {
                    let pair = v
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or("session checkpoint: bad shard_of_root entry")?;
                    let root = pair[0]
                        .as_i64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or("session checkpoint: bad shard_of_root root")?;
                    let shard = pair[1]
                        .as_i64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or("session checkpoint: bad shard_of_root shard")?;
                    Ok::<(usize, usize), String>((root, shard))
                })
                .collect::<Result<Vec<_>, String>>()?,
            pinned: usize_of(router_v, "pinned")?,
            late_couplings: u64_of(router_v, "late_couplings")?,
        };
        let shards = array_of(state, "shards")?
            .iter()
            .map(EngineCheckpoint::from_value)
            .collect::<Result<Vec<_>, String>>()?;
        let stats_v = state
            .get("stats")
            .ok_or("session checkpoint: missing \"stats\"")?;
        let engine_v = stats_v
            .get("engine")
            .ok_or("session checkpoint: missing \"stats.engine\"")?;
        let stats = SessionStats {
            shed: opt_u64_of(stats_v, "shed")?.unwrap_or(0),
            events_ingested: u64_of(stats_v, "events_ingested")?,
            intervals_ingested: u64_of(stats_v, "intervals_ingested")?,
            backpressure_waits: u64_of(stats_v, "backpressure_waits")?,
            ticks: u64_of(stats_v, "ticks")?,
            processed_to: stats_v
                .get("processed_to")
                .and_then(Value::as_i64)
                .ok_or("session checkpoint: missing \"processed_to\"")?
                as Timepoint,
            tick_latency: Default::default(),
            queue_high_water: array_of(stats_v, "queue_high_water")?
                .iter()
                .map(|v| {
                    v.as_i64()
                        .and_then(|n| u64::try_from(n).ok())
                        .ok_or_else(|| "session checkpoint: bad queue_high_water".to_string())
                })
                .collect::<Result<Vec<_>, String>>()?,
            worker_restarts: u64_of(stats_v, "worker_restarts")?,
            frames_rejected: u64_of(stats_v, "frames_rejected")?,
            engine: rtec::engine::EngineStats {
                windows: usize_of(engine_v, "windows")?,
                events_processed: usize_of(engine_v, "events_processed")?,
                events_dropped: usize_of(engine_v, "events_dropped")?,
            },
        };
        // The whole ingest section is optional (older checkpoints).
        let mut deadletter_counts = [0u64; DeadLetterReason::ALL.len()];
        let mut deadletter_records_dropped = 0u64;
        let mut reorder = None;
        if let Some(ingest_v) = state.get("ingest") {
            if let Some(dl) = ingest_v.get("deadletter") {
                for (i, reason) in DeadLetterReason::ALL.iter().enumerate() {
                    deadletter_counts[i] = opt_u64_of(dl, reason.as_str())?.unwrap_or(0);
                }
            }
            deadletter_records_dropped =
                opt_u64_of(ingest_v, "deadletter_records_dropped")?.unwrap_or(0);
            if let Some(snap_v) = ingest_v.get("reorder").filter(|v| !v.is_null()) {
                let events = array_of(snap_v, "events")?
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .as_array()
                            .filter(|p| p.len() == 2)
                            .ok_or("session checkpoint: bad reorder event entry")?;
                        let term = decode_term(&pair[0])?;
                        let t = pair[1]
                            .as_i64()
                            .ok_or("session checkpoint: bad reorder event timestamp")?;
                        Ok::<(rtec::Term, Timepoint), String>((term, t))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                reorder = Some(ReorderSnapshot {
                    events,
                    max_seen: snap_v
                        .get("max_seen")
                        .and_then(Value::as_i64)
                        .ok_or("session checkpoint: missing \"max_seen\"")?,
                    released_to: snap_v
                        .get("released_to")
                        .and_then(Value::as_i64)
                        .ok_or("session checkpoint: missing \"released_to\"")?,
                });
            }
        }
        Ok(SessionCheckpoint {
            name,
            description_src,
            config,
            master_symbols,
            router,
            shards,
            stats,
            deadletter_counts,
            deadletter_records_dropped,
            reorder,
            // Lenient on read: checkpoints written before the journal
            // have no covered sequence, i.e. replay from the start.
            journal_seq: opt_u64_of(state, "journal_seq")?.unwrap_or(0),
        })
    }
}

/// The checkpoint file for `session` under `dir`. Session names are
/// escaped so arbitrary names (slashes, dots, unicode) map to safe,
/// distinct file names.
pub fn checkpoint_path(dir: &Path, session: &str) -> PathBuf {
    dir.join(format!("{}.session.json", escape_name(session)))
}

/// Writes `cp` atomically and durably under `dir` (created if missing):
/// the document goes to a temp file which is synced and renamed into
/// place, then the directory itself is synced — so the previous
/// checkpoint survives any mid-write failure and the rename survives a
/// power cut. Injected I/O faults ([`crate::fault`]) surface here.
pub fn save(dir: &Path, cp: &SessionCheckpoint) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("checkpoint dir {}: {e}", dir.display()))?;
    let path = checkpoint_path(dir, &cp.name);
    let doc = cp.to_json();
    match fault::on_checkpoint_write() {
        Some(fault::IoFaultKind::Error) => {
            return Err("checkpoint write failed (injected I/O error)".to_string());
        }
        Some(fault::IoFaultKind::Torn { keep_bytes }) => {
            // Simulate a crash mid-write: only a prefix reaches the temp
            // file and the rename never happens. The previous checkpoint
            // file is untouched; the torn temp file fails its checksum.
            let tmp = path.with_extension("json.tmp");
            let keep = keep_bytes.min(doc.len());
            let _ = std::fs::write(&tmp, &doc.as_bytes()[..keep]);
            return Err("checkpoint write torn (injected fault)".to_string());
        }
        Some(fault::IoFaultKind::Delayed { millis }) => fault::apply_delay(millis),
        None => {}
    }
    write_durable(&path, doc.as_bytes())?;
    Ok(path)
}

/// Writes `bytes` to `path` via temp-file + `sync_all` + rename, then
/// syncs the parent directory so the rename itself is durable. Without
/// the two syncs a crash shortly after rename can legitimately surface
/// an empty or stale file on the next boot — the classic
/// "atomic-rename is not durable-rename" trap. Shared by checkpoint
/// saves and journal segment rewrites.
pub(crate) fn write_durable(path: &Path, bytes: &[u8]) -> Result<(), String> {
    use std::io::Write;
    let tmp = path.with_extension(
        path.extension()
            .and_then(|e| e.to_str())
            .map(|e| format!("{e}.tmp"))
            .unwrap_or_else(|| "tmp".to_string()),
    );
    let mut file =
        std::fs::File::create(&tmp).map_err(|e| format!("durable write {}: {e}", tmp.display()))?;
    file.write_all(bytes)
        .map_err(|e| format!("durable write {}: {e}", tmp.display()))?;
    file.sync_all()
        .map_err(|e| format!("durable sync {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("durable rename {}: {e}", path.display()))?;
    if let Some(dir) = path.parent() {
        fsync_dir(dir)?;
    }
    Ok(())
}

/// Syncs a directory so a just-renamed (or just-created) entry inside
/// it survives a crash. Best-effort on platforms where directories
/// cannot be opened for sync.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), String> {
    match std::fs::File::open(dir) {
        Ok(handle) => handle
            .sync_all()
            .map_err(|e| format!("dir sync {}: {e}", dir.display())),
        // Opening a directory read-only can fail on exotic filesystems;
        // the rename itself still happened, so don't fail the write.
        Err(_) => Ok(()),
    }
}

/// Loads and verifies the checkpoint for `session` under `dir`.
pub fn load(dir: &Path, session: &str) -> Result<SessionCheckpoint, String> {
    let path = checkpoint_path(dir, session);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("checkpoint read {}: {e}", path.display()))?;
    SessionCheckpoint::from_json(&text)
}

/// Removes the checkpoint for `session`, if present (called on close).
pub fn remove(dir: &Path, session: &str) {
    let _ = std::fs::remove_file(checkpoint_path(dir, session));
}

/// Session names with a checkpoint under `dir` (empty if the directory
/// does not exist).
pub fn list(dir: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let file = e.file_name().into_string().ok()?;
            let encoded = file.strip_suffix(".session.json")?;
            unescape_name(encoded)
        })
        .collect();
    names.sort();
    names
}

/// Escapes a session name for use as a file-name stem: alphanumerics,
/// `-` and `_` pass through, everything else becomes `%xx` per byte.
pub(crate) fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02x}"));
            }
        }
    }
    out
}

fn unescape_name(encoded: &str) -> Option<String> {
    let mut bytes = Vec::with_capacity(encoded.len());
    let mut chars = encoded.bytes();
    while let Some(b) = chars.next() {
        if b == b'%' {
            let hi = chars.next()?;
            let lo = chars.next()?;
            let hex = [hi, lo];
            let hex = std::str::from_utf8(&hex).ok()?;
            bytes.push(u8::from_str_radix(hex, 16).ok()?);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).ok()
}

fn counter(n: usize) -> Value {
    Value::from(i64::try_from(n).unwrap_or(i64::MAX))
}

fn counter_u64(n: u64) -> Value {
    Value::from(i64::try_from(n).unwrap_or(i64::MAX))
}

fn str_of(v: &Value, field: &str) -> Result<String, String> {
    v.get(field)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("session checkpoint: missing string \"{field}\""))
}

fn str_array(v: &Value, field: &str) -> Result<Vec<String>, String> {
    array_of(v, field)?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("session checkpoint: non-string in \"{field}\""))
        })
        .collect()
}

fn array_of<'v>(v: &'v Value, field: &str) -> Result<&'v Vec<Value>, String> {
    v.get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("session checkpoint: missing array \"{field}\""))
}

fn usize_of(v: &Value, field: &str) -> Result<usize, String> {
    v.get(field)
        .and_then(Value::as_i64)
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| format!("session checkpoint: bad integer \"{field}\""))
}

fn u64_of(v: &Value, field: &str) -> Result<u64, String> {
    v.get(field)
        .and_then(Value::as_i64)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("session checkpoint: bad integer \"{field}\""))
}

/// An optional non-negative integer: absent or `null` reads as `None`.
fn opt_u64_of(v: &Value, field: &str) -> Result<Option<u64>, String> {
    match v.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(_) => u64_of(v, field).map(Some),
    }
}

/// An optional integer: absent or `null` reads as `None`.
fn opt_i64_of(v: &Value, field: &str) -> Result<Option<i64>, String> {
    match v.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(n) => n
            .as_i64()
            .map(Some)
            .ok_or_else(|| format!("session checkpoint: bad integer \"{field}\"")),
    }
}

/// An optional boolean: absent or `null` reads as `false`.
fn bool_of(v: &Value, field: &str) -> Result<bool, String> {
    match v.get(field) {
        None | Some(Value::Null) => Ok(false),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| format!("session checkpoint: non-boolean \"{field}\"")),
    }
}

fn opt_counter_u64(n: Option<u64>) -> Value {
    match n {
        Some(n) => counter_u64(n),
        None => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESC: &str = "
        initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
        terminatedAt(on(X)=true, T) :- happensAt(down(X), T).
    ";

    fn ticked_session(name: &str) -> Session {
        let mut s = Session::open(
            name,
            DESC,
            SessionConfig {
                window: Some(20),
                shards: 2,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        s.ingest_event("up(a)", 5).unwrap();
        s.ingest_event("up(b)", 7).unwrap();
        s.tick(20).unwrap();
        s
    }

    #[test]
    fn capture_save_load_restore_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "rtec-persist-test-{}-{}",
            std::process::id(),
            "round_trip"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = ticked_session("alpha/β");
        let cp = SessionCheckpoint::capture(&s).expect("capturable after tick");
        let path = save(&dir, &cp).unwrap();
        assert!(path.exists());
        assert_eq!(list(&dir), vec!["alpha/β".to_string()]);

        let loaded = load(&dir, "alpha/β").unwrap();
        let mut t = loaded.restore().unwrap();
        s.ingest_event("down(a)", 25).unwrap();
        t.ingest_event("down(a)", 25).unwrap();
        s.tick(40).unwrap();
        t.tick(40).unwrap();
        let (so, ssym) = s.query().unwrap();
        let (to, tsym) = t.query().unwrap();
        let render = |out: &rtec::engine::RecognitionOutput, sym: &rtec::SymbolTable| {
            let mut rows: Vec<String> = out
                .iter()
                .map(|(f, l)| format!("{}={}", f.display(sym), l))
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(render(&so, &ssym), render(&to, &tsym));
        assert!(!render(&so, &ssym).is_empty());

        remove(&dir, "alpha/β");
        assert!(list(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
        s.close().unwrap();
        t.close().unwrap();
    }

    #[test]
    fn documents_are_deterministic_and_checksummed() {
        let s = ticked_session("det");
        let cp = SessionCheckpoint::capture(&s).unwrap();
        let a = cp.to_json();
        let b = SessionCheckpoint::capture(&s).unwrap().to_json();
        assert_eq!(a, b, "same state must serialize identically");

        // Truncation (a torn write) must fail the checksum or the parse.
        for cut in [a.len() / 2, a.len() - 2] {
            assert!(SessionCheckpoint::from_json(&a[..cut]).is_err());
        }
        // Bit-flip in the payload must fail the checksum.
        let flipped = a.replace("\"events_ingested\":2", "\"events_ingested\":3");
        if flipped != a {
            assert!(SessionCheckpoint::from_json(&flipped).is_err());
        }
        s.close().unwrap();
    }

    #[test]
    fn name_escaping_round_trips() {
        for name in ["plain", "has space", "a/b", "ünïcode", "%25", "-_A9"] {
            assert_eq!(unescape_name(&escape_name(name)).as_deref(), Some(name));
        }
    }
}
