//! Deterministic fault injection for the service (the `testkit`
//! feature).
//!
//! A [`FaultPlan`] is a seeded schedule of failures — shard-worker
//! panics at chosen step counts, queue-full rejections on chosen ingest
//! operations, and I/O faults (hard errors, torn writes, delayed
//! writes) on chosen checkpoint writes. Production code calls the
//! `on_*` hooks at its fault sites; without the `testkit` feature the
//! hooks compile to no-ops and the plan machinery stays out of the
//! binary. With the feature, `with_plan` installs a plan for the
//! duration of a closure, so every failure mode is reproducible in CI
//! from a single `u64` seed.
//!
//! Each scheduled fault fires **exactly once**: counters advance
//! monotonically across worker restarts (a respawned worker does not
//! re-trigger the panic that killed its predecessor), which is what
//! makes recovery testable — inject, recover, converge.

#![cfg_attr(not(feature = "testkit"), allow(unused_variables, dead_code))]

/// An I/O fault to apply to one checkpoint write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The write fails outright with an injected error.
    Error,
    /// Only the first `keep_bytes` bytes reach the file (torn write);
    /// the atomic-rename protocol must leave the previous checkpoint
    /// intact, and the checksum must reject the torn temp file.
    Torn {
        /// Bytes that survive.
        keep_bytes: usize,
    },
    /// The write completes after an injected delay.
    Delayed {
        /// Delay in milliseconds.
        millis: u64,
    },
}

/// A worker panic scheduled at a processing step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Shard index the panic targets.
    pub shard: usize,
    /// Fires when the shard has processed this many messages (1-based:
    /// `step = 1` panics on the first message).
    pub step: u64,
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The seed this plan was derived from (0 for hand-built plans);
    /// logged so failures reproduce.
    pub seed: u64,
    /// Worker panics by shard and step.
    pub worker_panics: Vec<WorkerPanic>,
    /// 1-based ingest-operation indices to reject as queue-full.
    pub queue_rejects: Vec<u64>,
    /// I/O faults by 1-based checkpoint-write index.
    pub io_faults: Vec<(u64, IoFaultKind)>,
    /// Injected evaluation stalls by 1-based tick index: the session's
    /// tick sleeps this many milliseconds mid-evaluation, driving it
    /// over a configured slow-tick threshold (the flight-recorder
    /// tests) or deadline.
    pub tick_delays: Vec<(u64, u64)>,
    /// I/O faults by 1-based journal-write index (appends and segment
    /// rotations share the counter).
    pub journal_faults: Vec<(u64, IoFaultKind)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a worker panic on `shard` at processing step `step`.
    pub fn panic_worker(mut self, shard: usize, step: u64) -> FaultPlan {
        self.worker_panics.push(WorkerPanic { shard, step });
        self
    }

    /// Schedules a queue-full rejection on the `n`-th ingest operation.
    pub fn reject_ingest(mut self, n: u64) -> FaultPlan {
        self.queue_rejects.push(n);
        self
    }

    /// Schedules an I/O fault on the `n`-th checkpoint write.
    pub fn io_fault(mut self, n: u64, kind: IoFaultKind) -> FaultPlan {
        self.io_faults.push((n, kind));
        self
    }

    /// Schedules a `millis` evaluation stall inside the `n`-th tick.
    pub fn delay_tick(mut self, n: u64, millis: u64) -> FaultPlan {
        self.tick_delays.push((n, millis));
        self
    }

    /// Schedules an I/O fault on the `n`-th journal write.
    pub fn journal_fault(mut self, n: u64, kind: IoFaultKind) -> FaultPlan {
        self.journal_faults.push((n, kind));
        self
    }

    /// Derives a randomized plan from a seed: a handful of worker
    /// panics, ingest rejections, and I/O faults at pseudo-random
    /// steps. The same seed always yields the same plan — this is what
    /// the CI chaos job sweeps.
    #[cfg(feature = "testkit")]
    pub fn random(seed: u64, shards: usize, approx_steps: u64) -> FaultPlan {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        let span = approx_steps.max(2);
        for _ in 0..rng.gen_range(1..=2u64) {
            plan.worker_panics.push(WorkerPanic {
                shard: rng.gen_range(0..shards.max(1)),
                step: rng.gen_range(1..span),
            });
        }
        if rng.gen_bool(0.5) {
            plan.queue_rejects.push(rng.gen_range(1..span));
        }
        for _ in 0..rng.gen_range(0..=2u64) {
            let kind = match rng.gen_range(0..3u32) {
                0 => IoFaultKind::Error,
                1 => IoFaultKind::Torn {
                    keep_bytes: rng.gen_range(0..256usize),
                },
                _ => IoFaultKind::Delayed {
                    millis: rng.gen_range(1..20u64),
                },
            };
            plan.io_faults.push((rng.gen_range(1..8u64), kind));
        }
        plan
    }
}

#[cfg(feature = "testkit")]
mod active {
    use super::{FaultPlan, IoFaultKind};
    use parking_lot::Mutex;

    /// The installed plan plus its monotonic fire-state.
    pub(super) struct FaultState {
        pub plan: FaultPlan,
        /// Messages processed per shard (cumulative across restarts).
        pub worker_steps: Vec<u64>,
        /// Which scheduled panics already fired.
        pub panics_fired: Vec<bool>,
        /// Ingest operations observed.
        pub ingest_ops: u64,
        /// Which scheduled rejections already fired.
        pub rejects_fired: Vec<bool>,
        /// Checkpoint writes observed.
        pub writes: u64,
        /// Which scheduled I/O faults already fired.
        pub io_fired: Vec<bool>,
        /// Ticks observed.
        pub ticks: u64,
        /// Which scheduled tick delays already fired.
        pub tick_delays_fired: Vec<bool>,
        /// Journal writes observed.
        pub journal_writes: u64,
        /// Which scheduled journal faults already fired.
        pub journal_fired: Vec<bool>,
        /// Total faults injected under this plan.
        pub injected: u64,
    }

    pub(super) static ACTIVE: Mutex<Option<FaultState>> = Mutex::new(None);

    /// Serializes tests that install plans: process-global fault state
    /// must not be shared by concurrently running `#[test]`s.
    pub(super) static TEST_GUARD: Mutex<()> = Mutex::new(());

    impl FaultState {
        pub fn new(plan: FaultPlan) -> FaultState {
            let n_panics = plan.worker_panics.len();
            let n_rejects = plan.queue_rejects.len();
            let n_io = plan.io_faults.len();
            let n_ticks = plan.tick_delays.len();
            let n_journal = plan.journal_faults.len();
            FaultState {
                plan,
                worker_steps: Vec::new(),
                panics_fired: vec![false; n_panics],
                ingest_ops: 0,
                rejects_fired: vec![false; n_rejects],
                writes: 0,
                io_fired: vec![false; n_io],
                ticks: 0,
                tick_delays_fired: vec![false; n_ticks],
                journal_writes: 0,
                journal_fired: vec![false; n_journal],
                injected: 0,
            }
        }
    }

    pub(super) fn record_injection(state: &mut FaultState) {
        state.injected += 1;
        crate::obs::metrics().faults_injected.inc();
    }

    pub(super) fn next_io_fault(state: &mut FaultState) -> Option<IoFaultKind> {
        state.writes += 1;
        let writes = state.writes;
        for (i, &(at, kind)) in state.plan.io_faults.iter().enumerate() {
            if !state.io_fired[i] && writes >= at {
                state.io_fired[i] = true;
                record_injection(state);
                return Some(kind);
            }
        }
        None
    }

    pub(super) fn next_journal_fault(state: &mut FaultState) -> Option<IoFaultKind> {
        state.journal_writes += 1;
        let writes = state.journal_writes;
        for (i, &(at, kind)) in state.plan.journal_faults.iter().enumerate() {
            if !state.journal_fired[i] && writes >= at {
                state.journal_fired[i] = true;
                record_injection(state);
                return Some(kind);
            }
        }
        None
    }
}

/// Installs `plan`, runs `f`, clears the plan, and returns `f`'s result
/// together with the number of faults actually injected. Holds a global
/// guard so concurrent tests cannot interleave plans.
#[cfg(feature = "testkit")]
pub fn with_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> (T, u64) {
    use std::sync::atomic::Ordering;
    let _guard = active::TEST_GUARD.lock();
    LAST_INJECTED.store(0, Ordering::SeqCst);
    *active::ACTIVE.lock() = Some(active::FaultState::new(plan));
    // Clear the plan even if `f` panics, so a failed test cannot leak
    // fault state into the next one; capture the injection count on the
    // way out.
    struct Clear;
    impl Drop for Clear {
        fn drop(&mut self) {
            if let Some(state) = active::ACTIVE.lock().take() {
                LAST_INJECTED.store(state.injected, std::sync::atomic::Ordering::SeqCst);
            }
        }
    }
    let result = {
        let _clear = Clear;
        f()
    };
    (result, LAST_INJECTED.load(Ordering::SeqCst))
}

#[cfg(feature = "testkit")]
static LAST_INJECTED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Faults injected by the most recently completed [`with_plan`] run.
#[cfg(feature = "testkit")]
pub fn last_injected() -> u64 {
    LAST_INJECTED.load(std::sync::atomic::Ordering::SeqCst)
}

/// Called by a shard worker before processing each message. May panic
/// (the injected fault); the supervisor is expected to catch the dead
/// worker and restore from checkpoint.
#[inline]
pub(crate) fn on_worker_step(shard: usize) {
    #[cfg(feature = "testkit")]
    {
        let mut slot = active::ACTIVE.lock();
        let Some(state) = slot.as_mut() else { return };
        if shard >= state.worker_steps.len() {
            state.worker_steps.resize(shard + 1, 0);
        }
        state.worker_steps[shard] += 1;
        let step = state.worker_steps[shard];
        for i in 0..state.plan.worker_panics.len() {
            let p = state.plan.worker_panics[i];
            if !state.panics_fired[i] && p.shard == shard && step >= p.step {
                state.panics_fired[i] = true;
                active::record_injection(state);
                let seed = state.plan.seed;
                drop(slot);
                panic!("injected fault: worker panic (shard {shard}, step {step}, seed {seed})");
            }
        }
    }
}

/// Called by the session's ingest path. Returns `Err` when this ingest
/// operation is scheduled to be rejected as queue-full.
#[inline]
pub(crate) fn on_ingest() -> Result<(), String> {
    #[cfg(feature = "testkit")]
    {
        let mut slot = active::ACTIVE.lock();
        if let Some(state) = slot.as_mut() {
            state.ingest_ops += 1;
            let op = state.ingest_ops;
            for i in 0..state.plan.queue_rejects.len() {
                let at = state.plan.queue_rejects[i];
                if !state.rejects_fired[i] && op >= at {
                    state.rejects_fired[i] = true;
                    active::record_injection(state);
                    return Err("queue full (injected fault)".to_string());
                }
            }
        }
    }
    Ok(())
}

/// Called inside each session tick (after the start timestamp); returns
/// the injected stall in milliseconds, if one is scheduled. The caller
/// sleeps, so the stall lands inside the measured tick wall time.
#[inline]
pub(crate) fn on_tick() -> Option<u64> {
    #[cfg(feature = "testkit")]
    {
        let mut slot = active::ACTIVE.lock();
        if let Some(state) = slot.as_mut() {
            state.ticks += 1;
            let tick = state.ticks;
            for i in 0..state.plan.tick_delays.len() {
                let (at, millis) = state.plan.tick_delays[i];
                if !state.tick_delays_fired[i] && tick >= at {
                    state.tick_delays_fired[i] = true;
                    active::record_injection(state);
                    return Some(millis);
                }
            }
        }
    }
    None
}

/// Called before each checkpoint write; returns the I/O fault to apply,
/// if one is scheduled for this write.
#[inline]
pub(crate) fn on_checkpoint_write() -> Option<IoFaultKind> {
    #[cfg(feature = "testkit")]
    {
        let mut slot = active::ACTIVE.lock();
        if let Some(state) = slot.as_mut() {
            return active::next_io_fault(state);
        }
    }
    None
}

/// Called before each journal write (append commits and segment
/// rotations); returns the I/O fault to apply, if one is scheduled.
#[inline]
pub(crate) fn on_journal_write() -> Option<IoFaultKind> {
    #[cfg(feature = "testkit")]
    {
        let mut slot = active::ACTIVE.lock();
        if let Some(state) = slot.as_mut() {
            return active::next_journal_fault(state);
        }
    }
    None
}

/// Hook for delayed-write faults: sleeps the injected duration.
#[inline]
pub(crate) fn apply_delay(millis: u64) {
    std::thread::sleep(std::time::Duration::from_millis(millis));
}

#[cfg(all(test, feature = "testkit"))]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(42, 4, 100);
        let b = FaultPlan::random(42, 4, 100);
        assert_eq!(a.worker_panics, b.worker_panics);
        assert_eq!(a.queue_rejects, b.queue_rejects);
        assert_eq!(a.io_faults, b.io_faults);
        let c = FaultPlan::random(43, 4, 100);
        assert!(
            a.worker_panics != c.worker_panics
                || a.queue_rejects != c.queue_rejects
                || a.io_faults != c.io_faults,
            "different seeds should differ"
        );
    }

    #[test]
    fn faults_fire_exactly_once() {
        let plan = FaultPlan::new().reject_ingest(2);
        let ((), injected) = with_plan(plan, || {
            assert!(on_ingest().is_ok(), "op 1 passes");
            assert!(on_ingest().is_err(), "op 2 rejected");
            assert!(on_ingest().is_ok(), "op 3 passes: one-shot");
        });
        assert_eq!(injected, 1);
    }

    #[test]
    fn tick_delays_fire_once_at_their_tick() {
        let plan = FaultPlan::new().delay_tick(2, 25);
        let ((), injected) = with_plan(plan, || {
            assert_eq!(on_tick(), None, "tick 1 passes");
            assert_eq!(on_tick(), Some(25), "tick 2 stalls");
            assert_eq!(on_tick(), None, "tick 3 passes: one-shot");
        });
        assert_eq!(injected, 1);
    }

    #[test]
    fn io_faults_fire_at_their_write_index() {
        let plan = FaultPlan::new().io_fault(2, IoFaultKind::Error);
        let ((), _) = with_plan(plan, || {
            assert_eq!(on_checkpoint_write(), None);
            assert_eq!(on_checkpoint_write(), Some(IoFaultKind::Error));
            assert_eq!(on_checkpoint_write(), None);
        });
    }
}
