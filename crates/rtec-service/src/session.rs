//! A recognition session: one compiled event description, a master
//! symbol table, a [`Router`] and a pool of entity-sharded engine
//! workers.
//!
//! The lifecycle mirrors how an RTEC deployment is operated:
//!
//! 1. **open** — compile the description, spawn `shards` workers;
//! 2. **ingest** — events / input intervals are parsed against the
//!    master table, routed by entity component, and pushed through each
//!    shard's bounded queue (blocking, counted, when full);
//! 3. **tick** — pin still-unpinned components, flush the buffer, and
//!    drive every shard's `run_to(to)`; per-tick wall time feeds the
//!    latency histogram;
//! 4. **query** — snapshot every shard and merge with
//!    [`RecognitionOutput::absorb`];
//! 5. **close** — drain the workers (all queued items are processed, no
//!    extra evaluation is forced) and report final stats.
//!
//! # Crash recovery
//!
//! Shard workers can die (a panic in engine code, or an injected fault
//! from [`crate::fault`]). The session supervises them:
//!
//! - after every successful tick it takes an [`EngineCheckpoint`] of
//!   each shard and clears that shard's *replay log*;
//! - every input sent to a shard is appended to the shard's replay log,
//!   so the log always holds exactly the items the checkpoint has not
//!   yet absorbed;
//! - when a send or a reply observes a dead worker, the shard is
//!   respawned from its checkpoint (or fresh, before the first
//!   checkpoint), the replay log is re-sent, and the original operation
//!   is retried. Windows are re-evaluated deterministically, so output
//!   after recovery is byte-identical to an uninterrupted run;
//! - restarts are budgeted by [`SessionConfig::max_worker_restarts`];
//!   when the budget is exhausted the session is **quarantined**: every
//!   command except `close` fails with a `quarantined` error, and other
//!   sessions are unaffected.

use crate::flight::{FlightRecorder, TickTrace};
use crate::router::{PendingItem, Route, Router, RouterSnapshot};
use crate::worker::{ShardWorker, WorkerMsg, WorkerOptions};
use crossbeam::channel::bounded;
use rtec::checkpoint::EngineCheckpoint;
use rtec::description::{CompiledDescription, EventDescription};
use rtec::engine::{EngineConfig, EngineStats, EvalMode, RecognitionOutput};
use rtec::interval::IntervalList;
use rtec::parallel::{FirstArgPartitioner, Partitioner};
use rtec::reorder::{DeadLetterLedger, DeadLetterReason, ReorderBuffer, ReorderSnapshot};
use rtec::term::{GroundFvp, Term};
use rtec::{SymbolTable, Timepoint};
use rtec_obs::profile::ProfileAggregate;
use rtec_obs::Histogram;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Session parameters.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Recognition window size; `None` evaluates each tick as one chunk
    /// covering everything since the previous tick.
    pub window: Option<Timepoint>,
    /// Sliding step; `Some(s)` re-evaluates every `s` timepoints over
    /// the trailing `window` (requires `window`, `0 < s <= window`).
    /// Shard engines then amend events arriving inside the
    /// `window - slide` overlap instead of dead-lettering them.
    pub slide: Option<Timepoint>,
    /// Incremental window re-evaluation (requires `slide`): overlapped
    /// windows extend the previous evaluation instead of recomputing
    /// from the window boundary, falling back to full recomputation
    /// whenever equivalence cannot be proven (late events, changed
    /// input intervals). Observationally identical to the full mode.
    pub incremental: bool,
    /// Number of engine shards (threads).
    pub shards: usize,
    /// Bounded per-shard queue capacity.
    pub queue_capacity: usize,
    /// Crashed-worker respawns allowed before the session is
    /// quarantined.
    pub max_worker_restarts: usize,
    /// Out-of-order tolerance, in timepoints. `Some(slack)` places a
    /// [`ReorderBuffer`] in front of the router: events may arrive up to
    /// `slack` timepoints late and are released in timestamp order;
    /// events behind the watermark go to the dead-letter ledger instead
    /// of the engines. `None` (the default) ingests in arrival order —
    /// the historical behaviour.
    pub reorder_slack: Option<Timepoint>,
    /// With the reorder buffer enabled, absorb exact `(t, event)`
    /// duplicates (refused as `duplicate` dead letters). Ignored
    /// without `reorder_slack`.
    pub dedup: bool,
    /// Admission budget: events admitted between two ticks. Ingest
    /// beyond the budget is shed (`overloaded` error, `shed` dead
    /// letter) until the next tick.
    pub max_events_per_tick: Option<u64>,
    /// Admission budget: approximate bytes resident in the reorder
    /// buffer. Ingest while over budget is shed. Ignored without
    /// `reorder_slack`.
    pub max_buffered_bytes: Option<u64>,
    /// Per-tick deadline in milliseconds: a tick whose wall-clock time
    /// exceeds it reports `degraded: true` (the tick still completes —
    /// the deadline marks the reply, it does not abort evaluation).
    pub tick_deadline_ms: Option<u64>,
    /// Window-evaluation strategy for the shard engines: the AST
    /// interpreter, or a compiled plan (`rtec-plan`). The two are
    /// observationally identical; the default follows the `RTEC_EVAL`
    /// environment variable so whole test suites can be re-run under
    /// either mode without code changes.
    pub eval: EvalMode,
    /// Per-rule evaluation profiling: shard engines attribute self
    /// wall-time, call counts and interval-algebra ops to each fluent,
    /// the session merges them per tick, and recognition-latency stamps
    /// feed `rtec_recognition_latency_us`. On by default — attribution
    /// is a couple of clock reads per stratum and never perturbs
    /// recognition output. Profiler state is process-local: it is not
    /// checkpointed, and a respawned shard restarts attribution at zero.
    pub profile: bool,
    /// Slow-tick threshold in milliseconds: a profiled tick at least
    /// this slow promotes its flight-recorder trace to a retained JSON
    /// dump (see [`crate::flight`]). `None` disables promotion;
    /// requires `profile`.
    pub slow_tick_ms: Option<u64>,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            window: None,
            slide: None,
            incremental: false,
            shards: 2,
            queue_capacity: 1024,
            max_worker_restarts: 2,
            reorder_slack: None,
            dedup: false,
            max_events_per_tick: None,
            max_buffered_bytes: None,
            tick_deadline_ms: None,
            eval: EvalMode::from_env(),
            profile: true,
            slow_tick_ms: None,
        }
    }
}

/// Counters of a session (monotonic over its lifetime).
#[derive(Clone, Debug, Default)]
pub struct SessionStats {
    /// Events accepted by `ingest_event`.
    pub events_ingested: u64,
    /// Input-interval entries accepted.
    pub intervals_ingested: u64,
    /// Ingest operations that blocked on a full shard queue.
    pub backpressure_waits: u64,
    /// Ticks served.
    pub ticks: u64,
    /// Horizon of the last tick (-1 before the first).
    pub processed_to: Timepoint,
    /// Tick wall-clock latency distribution.
    pub tick_latency: Histogram,
    /// Per-shard queue-depth high-water marks since open.
    pub queue_high_water: Vec<u64>,
    /// Crashed shard workers respawned from checkpoint.
    pub worker_restarts: u64,
    /// Request frames addressed to this session answered with an error.
    pub frames_rejected: u64,
    /// Ingest operations refused by admission control (event-rate or
    /// buffered-bytes budget).
    pub shed: u64,
    /// Merged per-shard engine counters as of the last tick/drain:
    /// event counts are summed; `windows` is the max across shards
    /// (every shard evaluates the same window sequence).
    pub engine: EngineStats,
}

/// Outcome of a successful (non-error) event ingest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ingest {
    /// The event was admitted (routed now, or buffered for in-order
    /// release).
    Accepted,
    /// The event was refused and recorded in the dead-letter ledger
    /// with the given reason. Not an error: refusing bad input is the
    /// resilient-ingestion layer doing its job.
    Refused(DeadLetterReason),
}

/// What one tick accomplished.
#[derive(Clone, Copy, Debug, Default)]
pub struct TickReport {
    /// Aggregated engine counters (summed events, max windows).
    pub engine: EngineStats,
    /// Whether the tick overran [`SessionConfig::tick_deadline_ms`].
    pub degraded: bool,
    /// Ingest operations shed by admission control since the previous
    /// tick.
    pub shed: u64,
}

/// Per-shard recovery state.
struct ShardState {
    /// Engine image as of the last successful tick (None before it).
    checkpoint: Option<EngineCheckpoint>,
    /// Inputs sent to the shard since the checkpoint was taken.
    replay: Vec<PendingItem>,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            checkpoint: None,
            replay: Vec::new(),
        }
    }
}

/// A live recognition session.
pub struct Session {
    name: String,
    desc: Arc<CompiledDescription>,
    /// Master symbol table: description symbols plus every constant seen
    /// on the stream, append-only. All routed terms are interned here.
    master: SymbolTable,
    workers: Vec<ShardWorker>,
    shard_states: Vec<ShardState>,
    router: Router,
    partitioner: FirstArgPartitioner,
    stats: SessionStats,
    config: SessionConfig,
    engine_config: EngineConfig,
    description_src: String,
    /// Why the session was quarantined, once the restart budget ran out.
    quarantined: Option<String>,
    /// Session-wide reorder buffer, in front of the router (one buffer
    /// rather than one per shard, so lateness and duplicates are judged
    /// against the session's whole stream — including items the router
    /// has not pinned to a shard yet).
    reorder: Option<ReorderBuffer>,
    /// Reason-coded audit trail of every refused record.
    ledger: DeadLetterLedger,
    /// Events admitted since the last tick (the event-rate budget).
    events_since_tick: u64,
    /// Ingests shed since the last tick (reported on the tick reply).
    shed_since_tick: u64,
    /// Merged per-rule totals across shard engines, refreshed each tick
    /// (empty when profiling is off). Process-local, never persisted.
    profile_agg: ProfileAggregate,
    /// Ring of recent per-tick traces plus promoted dumps.
    flight: FlightRecorder,
    /// `(timepoint, service-admission instant)` per admitted event,
    /// drained into the recognition-latency histogram by the tick that
    /// evaluates past the timepoint. Bounded; overflow drops stamps
    /// (latency sampling degrades, recognition is untouched).
    arrival_stamps: Vec<(Timepoint, Instant)>,
    /// Like `arrival_stamps`, stamped when the event leaves the reorder
    /// buffer (or is routed directly) — the release stage.
    release_stamps: Vec<(Timepoint, Instant)>,
}

/// Recent refused-record entries retained per session (counts are exact
/// regardless).
const SESSION_DEAD_LETTER_CAP: usize = 1024;

/// Recognition-latency stamps retained per stage between ticks; beyond
/// this the stamp is dropped (sampling, not accounting).
const STAMP_CAP: usize = 65536;

impl Session {
    /// Compiles `description_src` and spawns the shard workers.
    pub fn open(
        name: impl Into<String>,
        description_src: &str,
        config: SessionConfig,
    ) -> Result<Session, String> {
        let desc =
            EventDescription::parse(description_src).map_err(|e| format!("description: {e}"))?;
        let compiled = Arc::new(desc.compile().map_err(|e| format!("description: {e}"))?);
        let engine_config = engine_config_for(&config)?;
        if config.shards == 0 {
            return Err("shards must be >= 1".into());
        }
        let workers = (0..config.shards)
            .map(|shard| {
                ShardWorker::spawn(
                    Arc::clone(&compiled),
                    engine_config,
                    worker_options(&config),
                    config.queue_capacity,
                    shard,
                )
            })
            .collect();
        let name = name.into();
        crate::obs::metrics().sessions_opened.inc();
        rtec_obs::info(
            "session.open",
            &[
                ("session", name.as_str().into()),
                ("shards", config.shards.into()),
                ("window", config.window.unwrap_or(-1).into()),
                ("slide", config.slide.unwrap_or(-1).into()),
                ("incremental", config.incremental.into()),
            ],
        );
        Ok(Session {
            name,
            master: compiled.symbols.clone(),
            desc: compiled,
            workers,
            shard_states: (0..config.shards).map(|_| ShardState::new()).collect(),
            router: Router::new(config.shards),
            partitioner: FirstArgPartitioner,
            stats: SessionStats {
                processed_to: -1,
                queue_high_water: vec![0; config.shards],
                ..SessionStats::default()
            },
            config,
            engine_config,
            description_src: description_src.to_string(),
            quarantined: None,
            reorder: config
                .reorder_slack
                .map(|slack| ReorderBuffer::new(slack, config.dedup)),
            ledger: DeadLetterLedger::new(SESSION_DEAD_LETTER_CAP),
            events_since_tick: 0,
            shed_since_tick: 0,
            profile_agg: ProfileAggregate::new(),
            flight: FlightRecorder::new(),
            arrival_stamps: Vec::new(),
            release_stamps: Vec::new(),
        })
    }

    /// Rebuilds a session from persisted parts: the original description
    /// source, a master symbol-name list, a router snapshot and one
    /// engine checkpoint per shard. Workers resume from their
    /// checkpoints; the tick-latency histogram starts fresh.
    pub fn reopen(
        name: impl Into<String>,
        description_src: &str,
        config: SessionConfig,
        master_names: &[String],
        router: &RouterSnapshot,
        shard_checkpoints: Vec<EngineCheckpoint>,
        stats: SessionStats,
    ) -> Result<Session, String> {
        let desc =
            EventDescription::parse(description_src).map_err(|e| format!("description: {e}"))?;
        let compiled = Arc::new(desc.compile().map_err(|e| format!("description: {e}"))?);
        let engine_config = engine_config_for(&config)?;
        if shard_checkpoints.len() != config.shards {
            return Err(format!(
                "checkpoint has {} shard(s), config wants {}",
                shard_checkpoints.len(),
                config.shards
            ));
        }
        let mut master = SymbolTable::new();
        for name in master_names {
            master.intern(name);
        }
        for (sym, name) in compiled.symbols.iter() {
            if master.try_name(sym) != Some(name) {
                return Err("session checkpoint symbols do not extend the description".into());
            }
        }
        let router = Router::restore(router)?;
        let workers = shard_checkpoints
            .iter()
            .enumerate()
            .map(|(shard, cp)| {
                ShardWorker::respawn(
                    Arc::clone(&compiled),
                    engine_config,
                    worker_options(&config),
                    config.queue_capacity,
                    shard,
                    cp.clone(),
                )
            })
            .collect();
        let name = name.into();
        crate::obs::metrics().sessions_opened.inc();
        rtec_obs::info(
            "session.reopen",
            &[
                ("session", name.as_str().into()),
                ("shards", config.shards.into()),
                ("processed_to", stats.processed_to.into()),
            ],
        );
        Ok(Session {
            name,
            master,
            desc: compiled,
            workers,
            shard_states: shard_checkpoints
                .into_iter()
                .map(|cp| ShardState {
                    checkpoint: Some(cp),
                    replay: Vec::new(),
                })
                .collect(),
            router,
            partitioner: FirstArgPartitioner,
            stats,
            config,
            engine_config,
            description_src: description_src.to_string(),
            quarantined: None,
            reorder: config
                .reorder_slack
                .map(|slack| ReorderBuffer::new(slack, config.dedup)),
            ledger: DeadLetterLedger::new(SESSION_DEAD_LETTER_CAP),
            events_since_tick: 0,
            shed_since_tick: 0,
            profile_agg: ProfileAggregate::new(),
            flight: FlightRecorder::new(),
            arrival_stamps: Vec::new(),
            release_stamps: Vec::new(),
        })
    }

    /// Restores ingestion-layer state captured alongside the shard
    /// checkpoints: exact dead-letter counts and the reorder buffer's
    /// unreleased contents + frontier. Called by
    /// [`crate::persist::SessionCheckpoint::restore`] after
    /// [`Session::reopen`].
    pub fn restore_ingest(
        &mut self,
        ledger_counts: [u64; DeadLetterReason::ALL.len()],
        ledger_records_dropped: u64,
        reorder: Option<&ReorderSnapshot>,
    ) {
        self.ledger
            .restore_counts(ledger_counts, ledger_records_dropped);
        if let (Some(slack), Some(snapshot)) = (self.config.reorder_slack, reorder) {
            self.reorder = Some(ReorderBuffer::restore(slack, self.config.dedup, snapshot));
        }
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The session's configuration.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// The compiled description (for tests and tooling).
    pub fn description(&self) -> &CompiledDescription {
        &self.desc
    }

    /// The description source the session was opened with.
    pub fn description_src(&self) -> &str {
        &self.description_src
    }

    /// The master symbol table (interning order reproduces it).
    pub fn master_symbols(&self) -> &SymbolTable {
        &self.master
    }

    /// The router's current sharding decisions.
    pub fn router_snapshot(&self) -> RouterSnapshot {
        self.router.snapshot()
    }

    /// Per-shard engine checkpoints as of the last tick; `None` until
    /// every shard has one (i.e. before the first successful tick).
    pub fn shard_checkpoints(&self) -> Option<Vec<&EngineCheckpoint>> {
        self.shard_states
            .iter()
            .map(|s| s.checkpoint.as_ref())
            .collect()
    }

    /// Why the session is quarantined, if it is.
    pub fn quarantined(&self) -> Option<&str> {
        self.quarantined.as_deref()
    }

    /// Counts a rejected frame against this session.
    pub fn note_frame_rejected(&mut self) {
        self.stats.frames_rejected += 1;
    }

    fn check_live(&self) -> Result<(), String> {
        match &self.quarantined {
            Some(reason) => Err(format!("session quarantined: {reason}")),
            None => Ok(()),
        }
    }

    /// The latest timestamp the session refuses as past-horizon. With
    /// tumbling windows this is the last ticked horizon; sliding
    /// engines keep the `window - slide` overlap amendable, so the
    /// frontier is relaxed by it.
    fn ingest_frontier(&self) -> Timepoint {
        match (self.config.window, self.config.slide) {
            (Some(w), Some(s)) => self.stats.processed_to.saturating_sub(w - s),
            _ => self.stats.processed_to,
        }
    }

    /// Parses and ingests one event (`term_src` like
    /// `entersArea(v1, brest_port)`) at time `t`.
    ///
    /// Three-way outcome: `Ok(Ingest::Accepted)` admits the event (into
    /// the reorder buffer when one is configured, else straight to the
    /// router); `Ok(Ingest::Refused(reason))` records a dead letter —
    /// late, duplicate, or past-horizon input the resilient-ingestion
    /// layer filtered out; `Err` is an actual failure (quarantine, a
    /// parse error, or an `overloaded: ...` admission-control shed).
    pub fn ingest_event(&mut self, term_src: &str, t: Timepoint) -> Result<Ingest, String> {
        self.check_live()?;
        crate::fault::on_ingest()?;
        if let Some(budget) = self.config.max_events_per_tick {
            if self.events_since_tick >= budget {
                self.shed(Some(t), term_src);
                return Err(format!(
                    "overloaded: per-tick event budget ({budget}) exhausted; tick to admit more"
                ));
            }
        }
        if let (Some(budget), Some(buf)) = (self.config.max_buffered_bytes, self.reorder.as_ref()) {
            let held = buf.approx_bytes() as u64;
            if held >= budget {
                self.shed(Some(t), term_src);
                return Err(format!(
                    "overloaded: reorder buffer holds ~{held} of {budget} budgeted bytes; \
                     tick to release"
                ));
            }
        }
        self.events_since_tick += 1;
        let term = match rtec::parser::parse_term(term_src, &mut self.master) {
            Ok(term) => term,
            Err(e) => {
                self.dead_letter(DeadLetterReason::Malformed, Some(t), term_src);
                return Err(format!("event: {e}"));
            }
        };
        let ingest_frontier = self.ingest_frontier();
        if let Some(buf) = self.reorder.as_mut() {
            // The engine frontier outranks the buffer's own lateness
            // verdict: anything at or before the last ticked horizon
            // belongs to an already evaluated (and forgotten) window —
            // unless the engines slide, in which case events inside the
            // `window - slide` overlap are still amendable.
            if t <= ingest_frontier {
                self.dead_letter(DeadLetterReason::PastHorizon, Some(t), term_src);
                return Ok(Ingest::Refused(DeadLetterReason::PastHorizon));
            }
            if t <= self.stats.processed_to {
                // Behind the buffer's release frontier but inside the
                // sliding overlap: the in-order guarantee is already
                // unmeetable for this event, so hand it straight to the
                // engines, whose amendment replay absorbs it exactly.
                self.stamp_arrival(t);
                self.route_event(term, t)?;
            } else {
                if let Err(reason) = buf.push(term, t) {
                    self.dead_letter(reason, Some(t), term_src);
                    return Ok(Ingest::Refused(reason));
                }
                self.stamp_arrival(t);
                self.release_ready()?;
            }
        } else {
            self.stamp_arrival(t);
            self.route_event(term, t)?;
        }
        self.stats.events_ingested += 1;
        crate::obs::metrics().events_ingested.inc();
        Ok(Ingest::Accepted)
    }

    /// Stamps one admitted event for the `stage="admission"` leg of the
    /// recognition-latency histogram.
    fn stamp_arrival(&mut self, t: Timepoint) {
        if self.config.profile && self.arrival_stamps.len() < STAMP_CAP {
            self.arrival_stamps.push((t, Instant::now()));
        }
    }

    /// Routes one (released or direct) event to its shard.
    fn route_event(&mut self, term: Term, t: Timepoint) -> Result<(), String> {
        if self.config.profile && self.release_stamps.len() < STAMP_CAP {
            self.release_stamps.push((t, Instant::now()));
        }
        let entities = self.partitioner.event_entities(&term);
        match self.router.route(&entities) {
            Route::Shard(s) => self.send_input(s, PendingItem::Event(term, t))?,
            Route::Broadcast => {
                for s in 0..self.workers.len() {
                    self.send_input(s, PendingItem::Event(term.clone(), t))?;
                }
            }
            Route::Buffered => self
                .router
                .buffer(PendingItem::Event(term, t), &entities[0]),
        }
        Ok(())
    }

    /// Routes everything the reorder buffer's watermark has passed.
    fn release_ready(&mut self) -> Result<(), String> {
        let Some(buf) = self.reorder.as_mut() else {
            return Ok(());
        };
        for (term, t) in buf.drain_ready() {
            self.route_event(term, t)?;
        }
        Ok(())
    }

    /// Records one dead letter (ledger + per-reason metric).
    fn dead_letter(&mut self, reason: DeadLetterReason, t: Option<Timepoint>, detail: &str) {
        self.ledger.record(reason, t, detail.to_string());
        crate::obs::metrics().deadletter(reason).inc();
    }

    /// Records an admission-control refusal.
    fn shed(&mut self, t: Option<Timepoint>, detail: &str) {
        self.stats.shed += 1;
        self.shed_since_tick += 1;
        crate::obs::metrics().shed.inc();
        self.dead_letter(DeadLetterReason::Shed, t, detail);
    }

    /// Parses and ingests input-fluent intervals, e.g.
    /// `proximity(v0, v1)` / `true` over `[(0, 200)]`.
    pub fn ingest_intervals(
        &mut self,
        fluent_src: &str,
        value_src: &str,
        pairs: &[(Timepoint, Timepoint)],
    ) -> Result<(), String> {
        self.check_live()?;
        crate::fault::on_ingest()?;
        let fluent = rtec::parser::parse_term(fluent_src, &mut self.master)
            .map_err(|e| format!("fluent: {e}"))?;
        let value = rtec::parser::parse_term(value_src, &mut self.master)
            .map_err(|e| format!("value: {e}"))?;
        let fvp = GroundFvp::new(fluent, value)
            .ok_or_else(|| format!("not a ground fluent-value pair: {fluent_src}={value_src}"))?;
        let list = IntervalList::from_pairs(pairs);
        let entities = self.partitioner.fvp_entities(&fvp);
        match self.router.route(&entities) {
            Route::Shard(s) => self.send_input(s, PendingItem::Intervals(fvp, list))?,
            Route::Broadcast => {
                for s in 0..self.workers.len() {
                    self.send_input(s, PendingItem::Intervals(fvp.clone(), list.clone()))?;
                }
            }
            Route::Buffered => self
                .router
                .buffer(PendingItem::Intervals(fvp, list), &entities[0].clone()),
        }
        self.stats.intervals_ingested += 1;
        crate::obs::metrics().intervals_ingested.inc();
        Ok(())
    }

    /// Sends an input item to a shard and records it in the shard's
    /// replay log (so a later crash can re-send it).
    fn send_input(&mut self, shard: usize, item: PendingItem) -> Result<(), String> {
        let msg = match &item {
            PendingItem::Event(ev, t) => WorkerMsg::Event(ev.clone(), *t),
            PendingItem::Intervals(fvp, list) => WorkerMsg::Intervals(fvp.clone(), list.clone()),
        };
        self.send(shard, msg)?;
        self.shard_states[shard].replay.push(item);
        Ok(())
    }

    /// Sends a message, respawning the shard (bounded by the restart
    /// budget) and retrying if the worker is found dead.
    fn send(&mut self, shard: usize, msg: WorkerMsg) -> Result<(), String> {
        let mut msg = msg;
        loop {
            match self.workers[shard].send(msg) {
                Ok(blocked) => {
                    if blocked {
                        self.stats.backpressure_waits += 1;
                        crate::obs::metrics().backpressure_waits.inc();
                    }
                    let depth = self.workers[shard].queue_len() as u64;
                    if depth > self.stats.queue_high_water[shard] {
                        self.stats.queue_high_water[shard] = depth;
                    }
                    return Ok(());
                }
                Err(back) => {
                    msg = back;
                    self.respawn_shard(shard)?;
                }
            }
        }
    }

    /// Replaces a dead shard worker: restores from the shard's last
    /// checkpoint (or starts fresh before the first one), re-sends the
    /// replay log, and charges the restart budget. Quarantines the
    /// session when the budget is exhausted.
    fn respawn_shard(&mut self, shard: usize) -> Result<(), String> {
        self.check_live()?;
        if self.stats.worker_restarts >= self.config.max_worker_restarts as u64 {
            let reason = format!(
                "restart budget exhausted ({} restarts) at shard {shard}",
                self.config.max_worker_restarts
            );
            self.quarantined = Some(reason.clone());
            rtec_obs::error(
                "session.quarantined",
                &[
                    ("session", self.name.as_str().into()),
                    ("shard", shard.into()),
                    ("restarts", self.stats.worker_restarts.into()),
                ],
            );
            return Err(format!("session quarantined: {reason}"));
        }
        self.stats.worker_restarts += 1;
        crate::obs::metrics().worker_restarts.inc();
        // Brief bounded backoff: give a transient cause (allocator
        // pressure, scheduler hiccups) room to clear before the retry.
        // The seeded jitter decorrelates respawn storms across sessions
        // and shards without any RNG state: the same (session, shard,
        // restart) triple always backs off by the same amount, so fault
        // schedules stay reproducible under the testkit.
        let base = 2 * self.stats.worker_restarts.min(5);
        let jitter = respawn_jitter_ms(&self.name, shard, self.stats.worker_restarts);
        std::thread::sleep(Duration::from_millis(base + jitter));
        let worker = match &self.shard_states[shard].checkpoint {
            Some(cp) => ShardWorker::respawn(
                Arc::clone(&self.desc),
                self.engine_config,
                worker_options(&self.config),
                self.config.queue_capacity,
                shard,
                cp.clone(),
            ),
            None => ShardWorker::spawn(
                Arc::clone(&self.desc),
                self.engine_config,
                worker_options(&self.config),
                self.config.queue_capacity,
                shard,
            ),
        };
        for item in &self.shard_states[shard].replay {
            let msg = match item {
                PendingItem::Event(ev, t) => WorkerMsg::Event(ev.clone(), *t),
                PendingItem::Intervals(fvp, list) => {
                    WorkerMsg::Intervals(fvp.clone(), list.clone())
                }
            };
            if worker.send(msg).is_err() {
                // The replacement died too (e.g. its checkpoint failed
                // to restore). Install it anyway; the next attempt will
                // charge the budget again and eventually quarantine.
                self.workers[shard] = worker;
                return Err("shard worker exited during replay".to_string());
            }
        }
        self.workers[shard] = worker;
        // The restored engine is behind the session's tick frontier
        // until it re-evaluates the replayed window(s); catch it up so
        // snapshots taken right after a restart are never stale. If the
        // replacement dies during catch-up the next operation detects
        // it and charges the budget again.
        if self.stats.processed_to >= 0 {
            let (tx, rx) = bounded(1);
            if self.workers[shard]
                .send(WorkerMsg::RunTo(self.stats.processed_to, tx))
                .is_ok()
            {
                let _ = self.workers[shard].recv_reply(&rx);
            }
        }
        rtec_obs::warn(
            "session.worker_restarted",
            &[
                ("session", self.name.as_str().into()),
                ("shard", shard.into()),
                ("restarts", self.stats.worker_restarts.into()),
                ("replayed", self.shard_states[shard].replay.len().into()),
            ],
        );
        // Post-mortem context: what was the session doing in the ticks
        // leading up to the crash? The whole ring is promoted so the
        // evidence survives the respawn.
        if self.config.profile {
            let dump = self.flight.dump_ring(&self.name, "worker_respawn");
            rtec_obs::warn(
                "session.flight_recorder_dump",
                &[
                    ("session", self.name.as_str().into()),
                    ("reason", "worker_respawn".into()),
                    ("shard", shard.into()),
                    ("dump", dump.as_str().into()),
                ],
            );
        }
        Ok(())
    }

    /// Drives one shard to `to`, recovering from worker death.
    fn run_shard_to(&mut self, shard: usize, to: Timepoint) -> Result<EngineStats, String> {
        loop {
            let (tx, rx) = bounded(1);
            self.send(shard, WorkerMsg::RunTo(to, tx))?;
            match self.workers[shard].recv_reply(&rx) {
                Ok(stats) => return Ok(stats),
                Err(_) => self.respawn_shard(shard)?,
            }
        }
    }

    /// Pins pending components, flushes the buffer, and evaluates every
    /// shard up to `to`. Returns the aggregated engine counters, the
    /// degraded flag (deadline overrun) and the shed count since the
    /// previous tick.
    pub fn tick(&mut self, to: Timepoint) -> Result<TickReport, String> {
        self.check_live()?;
        let started = Instant::now();
        // Injected evaluation stall (testkit): lands inside the measured
        // tick wall time so slow-tick handling is testable.
        if let Some(millis) = crate::fault::on_tick() {
            crate::fault::apply_delay(millis);
        }
        // Force-release everything at or before the tick horizon:
        // evaluation up to `to` must see every admitted event there,
        // watermark or not.
        if let Some(buf) = self.reorder.as_mut() {
            for (term, t) in buf.drain_to(to) {
                self.route_event(term, t)?;
            }
        }
        for (shard, item) in self.router.flush() {
            self.send_input(shard, item)?;
        }
        let mut replies = Vec::with_capacity(self.workers.len());
        for shard in 0..self.workers.len() {
            let (tx, rx) = bounded(1);
            self.send(shard, WorkerMsg::RunTo(to, tx))?;
            replies.push(rx);
        }
        let mut total = EngineStats::default();
        for (shard, rx) in replies.into_iter().enumerate() {
            let stats = match self.workers[shard].recv_reply(&rx) {
                Ok(stats) => stats,
                Err(_) => {
                    // The worker died mid-evaluation; restore from the
                    // last checkpoint and re-evaluate deterministically.
                    self.respawn_shard(shard)?;
                    self.run_shard_to(shard, to)?
                }
            };
            // Every shard evaluates the same window sequence, so the
            // logical window count is the max, not the sum.
            total.windows = total.windows.max(stats.windows);
            total.events_processed += stats.events_processed;
            total.events_dropped += stats.events_dropped;
        }
        self.stats.engine = total;
        self.stats.ticks += 1;
        self.stats.processed_to = self.stats.processed_to.max(to);
        self.refresh_checkpoints();
        let elapsed = started.elapsed();
        self.stats.tick_latency.observe_duration(elapsed);
        let metrics = crate::obs::metrics();
        metrics.ticks.inc();
        metrics
            .tick_duration(self.config.eval)
            .observe_duration(elapsed);
        self.observe_recognition_latency(to);
        let degraded = self
            .config
            .tick_deadline_ms
            .is_some_and(|deadline| elapsed.as_millis() as u64 > deadline);
        if degraded {
            rtec_obs::warn(
                "session.tick_degraded",
                &[
                    ("session", self.name.as_str().into()),
                    ("elapsed_ms", (elapsed.as_millis() as u64).into()),
                    (
                        "deadline_ms",
                        self.config.tick_deadline_ms.unwrap_or(0).into(),
                    ),
                ],
            );
        }
        let shed = std::mem::take(&mut self.shed_since_tick);
        self.events_since_tick = 0;
        if self.config.profile {
            self.record_tick_trace(to, elapsed, shed, degraded);
        }
        Ok(TickReport {
            engine: total,
            degraded,
            shed,
        })
    }

    /// Drains recognition-latency stamps the tick horizon has passed
    /// into the stage-labelled `rtec_recognition_latency_us` histograms:
    /// an event's intervals become externally visible at the completion
    /// of the first tick whose horizon covers its timepoint.
    fn observe_recognition_latency(&mut self, to: Timepoint) {
        if self.arrival_stamps.is_empty() && self.release_stamps.is_empty() {
            return;
        }
        let now = Instant::now();
        let metrics = crate::obs::metrics();
        for (stamps, histogram) in [
            (
                &mut self.arrival_stamps,
                &metrics.recognition_latency_admission,
            ),
            (
                &mut self.release_stamps,
                &metrics.recognition_latency_release,
            ),
        ] {
            stamps.retain(|&(t, at)| {
                if t <= to {
                    histogram.observe_duration(now.saturating_duration_since(at));
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Collects per-shard profiles, refreshes the session's merged
    /// totals, and records this tick's trace (the per-rule cost *delta*
    /// against the previous merge) into the flight recorder; a tick at
    /// or over [`SessionConfig::slow_tick_ms`] promotes the trace to a
    /// retained JSON dump. Best-effort: a shard that died mid-collection
    /// simply contributes nothing this round.
    fn record_tick_trace(&mut self, to: Timepoint, elapsed: Duration, shed: u64, degraded: bool) {
        let mut merged = ProfileAggregate::new();
        let mut replies = Vec::with_capacity(self.workers.len());
        for (shard, worker) in self.workers.iter().enumerate() {
            let (tx, rx) = bounded(1);
            if worker.send(WorkerMsg::Profile(tx)).is_ok() {
                replies.push((shard, rx));
            }
        }
        for (shard, rx) in replies {
            if let Ok(agg) = self.workers[shard].recv_reply(&rx) {
                merged.merge(&agg);
            }
        }
        let rules = merged.delta_since(&self.profile_agg);
        self.profile_agg = merged;
        let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.flight.record(TickTrace {
            tick: self.stats.ticks,
            to,
            elapsed_us,
            rules,
            queue_depths: self.queue_depths(),
            reorder_buffered: self.reorder_buffered(),
            watermark_lag: self.watermark_lag(),
            shed,
            degraded,
        });
        let slow = self
            .config
            .slow_tick_ms
            .is_some_and(|threshold| elapsed.as_millis() as u64 >= threshold);
        if slow {
            if let Some(dump) = self.flight.dump_last(&self.name, "slow_tick") {
                rtec_obs::warn(
                    "session.flight_recorder_dump",
                    &[
                        ("session", self.name.as_str().into()),
                        ("reason", "slow_tick".into()),
                        ("elapsed_us", elapsed_us.into()),
                        ("dump", dump.as_str().into()),
                    ],
                );
            }
        }
    }

    /// Takes a fresh checkpoint of every shard and clears the replay
    /// logs. Best-effort: a shard that fails keeps its previous
    /// checkpoint *and* replay log, which together still reproduce its
    /// state.
    fn refresh_checkpoints(&mut self) {
        for shard in 0..self.workers.len() {
            let (tx, rx) = bounded(1);
            if self.workers[shard].send(WorkerMsg::Checkpoint(tx)).is_err() {
                continue;
            }
            match self.workers[shard].recv_reply(&rx) {
                Ok(cp) => {
                    self.shard_states[shard].checkpoint = Some(*cp);
                    self.shard_states[shard].replay.clear();
                }
                Err(_) => {
                    rtec_obs::warn(
                        "session.checkpoint_skipped",
                        &[
                            ("session", self.name.as_str().into()),
                            ("shard", shard.into()),
                        ],
                    );
                }
            }
        }
    }

    /// Snapshots and merges every shard's output. The returned symbol
    /// table renders the merged output's terms.
    pub fn query(&mut self) -> Result<(RecognitionOutput, SymbolTable), String> {
        self.check_live()?;
        let mut replies = Vec::with_capacity(self.workers.len());
        for shard in 0..self.workers.len() {
            let (tx, rx) = bounded(1);
            self.send(shard, WorkerMsg::Snapshot(tx))?;
            replies.push(rx);
        }
        let mut merged = RecognitionOutput::default();
        for (shard, rx) in replies.into_iter().enumerate() {
            let out = match self.workers[shard].recv_reply(&rx) {
                Ok((out, _)) => out,
                Err(_) => {
                    self.respawn_shard(shard)?;
                    let (tx, rx) = bounded(1);
                    self.send(shard, WorkerMsg::Snapshot(tx))?;
                    self.workers[shard].recv_reply(&rx).map(|(out, _)| out)?
                }
            };
            merged.absorb(out);
        }
        if self.router.late_couplings > 0 {
            merged.warnings.push(format!(
                "{} coupling(s) arrived after shard pinning; results for the affected \
                 entity pairs are best-effort",
                self.router.late_couplings
            ));
        }
        Ok((merged, self.master.clone()))
    }

    /// Current counters (ingest-side live; engine-side as of last tick).
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Number of late couplings observed by the router.
    pub fn late_couplings(&self) -> u64 {
        self.router.late_couplings
    }

    /// Items buffered awaiting the next tick.
    pub fn buffered(&self) -> usize {
        self.router.buffered()
    }

    /// The session's dead-letter ledger: every refused record,
    /// reason-coded.
    pub fn dead_letters(&self) -> &DeadLetterLedger {
        &self.ledger
    }

    /// Drops the ledger's retained records, keeping the exact counts
    /// (the `deadletter` wire command's `clear` option).
    pub fn clear_dead_letter_records(&mut self) {
        self.ledger.clear_records();
    }

    /// The reorder buffer's watermark, when one is configured.
    pub fn watermark(&self) -> Option<Timepoint> {
        self.reorder.as_ref().map(ReorderBuffer::watermark)
    }

    /// How far the release frontier trails the newest admitted event.
    pub fn watermark_lag(&self) -> Option<Timepoint> {
        self.reorder.as_ref().map(ReorderBuffer::lag)
    }

    /// Events admitted but not yet released by the reorder buffer.
    pub fn reorder_buffered(&self) -> usize {
        self.reorder.as_ref().map_or(0, ReorderBuffer::len)
    }

    /// Approximate bytes resident in the reorder buffer.
    pub fn reorder_buffered_bytes(&self) -> usize {
        self.reorder.as_ref().map_or(0, ReorderBuffer::approx_bytes)
    }

    /// The reorder buffer's persistable image (contents + frontier),
    /// when one is configured.
    pub fn reorder_snapshot(&self) -> Option<ReorderSnapshot> {
        self.reorder.as_ref().map(ReorderBuffer::snapshot)
    }

    /// Total queued items across shard channels (approximate).
    pub fn queue_depth(&self) -> usize {
        self.workers.iter().map(ShardWorker::queue_len).sum()
    }

    /// Per-shard queued item counts (approximate).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.workers.iter().map(ShardWorker::queue_len).collect()
    }

    /// Per-shard queue-depth high-water marks since open.
    pub fn queue_high_water(&self) -> &[u64] {
        &self.stats.queue_high_water
    }

    /// The label of the session's window evaluator
    /// (`"interpreter"` / `"plan"`).
    pub fn evaluator(&self) -> &'static str {
        self.config.eval.as_str()
    }

    /// The merged per-rule profile across shard engines as of the last
    /// tick; `None` when the session was opened with profiling off.
    pub fn profile(&self) -> Option<&ProfileAggregate> {
        self.config.profile.then_some(&self.profile_agg)
    }

    /// Retained flight-recorder dumps (slow ticks, worker respawns),
    /// oldest first.
    pub fn flight_dumps(&self) -> &[String] {
        self.flight.dumps()
    }

    /// Drains every worker and returns final aggregate stats. Buffered
    /// (never-ticked) items are flushed first so nothing is dropped.
    /// Close is deliberately tolerant of dead workers — a quarantined
    /// session must still be closable — so shard failures degrade the
    /// final stats instead of failing the close.
    pub fn close(mut self) -> Result<SessionStats, String> {
        if self.quarantined.is_none() {
            // Release the reorder buffer first so admitted events reach
            // the engines (queued, like any close-time flush — no extra
            // evaluation is forced). Routing failures degrade to lost
            // items, consistent with close's tolerance of dead workers.
            if let Some(mut buf) = self.reorder.take() {
                for (term, t) in buf.flush() {
                    if self.route_event(term, t).is_err() {
                        rtec_obs::warn(
                            "session.close_flush_lost",
                            &[("session", self.name.as_str().into()), ("t", t.into())],
                        );
                    }
                }
            }
            for (shard, item) in self.router.flush() {
                let msg = match item {
                    PendingItem::Event(ev, t) => WorkerMsg::Event(ev, t),
                    PendingItem::Intervals(fvp, list) => WorkerMsg::Intervals(fvp, list),
                };
                match self.workers[shard].send(msg) {
                    Ok(true) => {
                        self.stats.backpressure_waits += 1;
                        crate::obs::metrics().backpressure_waits.inc();
                    }
                    Ok(false) => {}
                    Err(_) => rtec_obs::warn(
                        "session.close_flush_lost",
                        &[
                            ("session", self.name.as_str().into()),
                            ("shard", shard.into()),
                        ],
                    ),
                }
            }
        }
        let mut total = EngineStats::default();
        for (shard, worker) in self.workers.into_iter().enumerate() {
            match worker.drain() {
                Ok(stats) => {
                    total.windows = total.windows.max(stats.windows);
                    total.events_processed += stats.events_processed;
                    total.events_dropped += stats.events_dropped;
                }
                Err(err) => rtec_obs::warn(
                    "session.close_shard_dead",
                    &[
                        ("session", self.name.as_str().into()),
                        ("shard", shard.into()),
                        ("error", err.as_str().into()),
                    ],
                ),
            }
        }
        self.stats.engine = total;
        crate::obs::metrics().sessions_closed.inc();
        rtec_obs::info(
            "session.close",
            &[
                ("session", self.name.as_str().into()),
                ("events_ingested", self.stats.events_ingested.into()),
                ("windows", self.stats.engine.windows.into()),
                (
                    "events_processed",
                    self.stats.engine.events_processed.into(),
                ),
            ],
        );
        Ok(self.stats)
    }
}

/// Deterministic respawn-backoff jitter in milliseconds: an FNV-1a hash
/// of the session name mixed with the shard and restart count, pushed
/// through the SplitMix64 finalizer and reduced to `0..=3·restarts`
/// (capped at 15 ms). A pure function of its inputs — no RNG state —
/// so concurrent respawns across sessions and shards fan out instead
/// of thundering in lockstep, while seeded chaos schedules stay
/// byte-for-byte reproducible.
fn respawn_jitter_ms(session: &str, shard: usize, restarts: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= restarts.rotate_left(32);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h % (3 * restarts.min(5) + 1)
}

fn worker_options(config: &SessionConfig) -> WorkerOptions {
    WorkerOptions {
        eval: config.eval,
        profile: config.profile,
    }
}

fn engine_config_for(config: &SessionConfig) -> Result<EngineConfig, String> {
    let base = match config.window {
        Some(w) if w > 0 => EngineConfig::windowed(w),
        Some(w) => return Err(format!("window must be positive, got {w}")),
        None => EngineConfig::default(),
    };
    let base = match (config.slide, config.window) {
        (None, _) => base,
        (Some(_), None) => return Err("slide requires window".to_string()),
        (Some(s), Some(w)) if s > 0 && s <= w => EngineConfig::sliding(w, s),
        (Some(s), Some(w)) => {
            return Err(format!(
                "slide must satisfy 0 < slide <= window, got {s} (window {w})"
            ))
        }
    };
    if config.incremental && config.slide.is_none() {
        return Err("incremental requires slide".to_string());
    }
    Ok(base.with_incremental(config.incremental))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESC: &str = "
        initiatedAt(busy(V)=true, T) :- happensAt(start(V), T).
        terminatedAt(busy(V)=true, T) :- happensAt(stop(V), T).
        holdsFor(pair(V1, V2)=true, I) :-
            holdsFor(near(V1, V2)=true, Ip),
            holdsFor(busy(V1)=true, I1),
            holdsFor(busy(V2)=true, I2),
            intersect_all([Ip, I1, I2], I).
    ";

    fn rendered(out: &RecognitionOutput, sym: &SymbolTable) -> Vec<String> {
        let mut rows: Vec<String> = out
            .iter()
            .map(|(f, l)| format!("{}={}", f.display(sym), l))
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn respawn_jitter_is_deterministic_and_bounded() {
        for restarts in 0..10u64 {
            for shard in 0..4usize {
                let a = respawn_jitter_ms("sess", shard, restarts);
                let b = respawn_jitter_ms("sess", shard, restarts);
                assert_eq!(a, b, "same inputs must give the same jitter");
                assert!(a <= 3 * restarts.min(5), "jitter {a} out of bounds");
            }
        }
        // Distinct shards decorrelate: not every shard gets the same
        // delay at the same restart count.
        let delays: Vec<u64> = (0..8).map(|s| respawn_jitter_ms("sess", s, 5)).collect();
        assert!(
            delays.iter().any(|d| *d != delays[0]),
            "jitter failed to spread across shards: {delays:?}"
        );
    }

    #[test]
    fn session_matches_batch_engine() {
        for shards in [1, 2, 4] {
            let mut s = Session::open(
                "t",
                DESC,
                SessionConfig {
                    shards,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            s.ingest_intervals("near(v0, v1)", "true", &[(0, 200)])
                .unwrap();
            for i in 0..6 {
                s.ingest_event(&format!("start(v{i})"), 10 + i).unwrap();
                s.ingest_event(&format!("stop(v{i})"), 100 + i).unwrap();
            }
            s.tick(300).unwrap();
            let (out, sym) = s.query().unwrap();

            // Reference: one batch engine over the same inputs.
            let desc = EventDescription::parse(DESC).unwrap();
            let compiled = desc.compile().unwrap();
            let mut stream = rtec::stream::InputStream::new();
            let f = rtec::parser::parse_term("near(v0, v1)", &mut stream.symbols).unwrap();
            let v = rtec::parser::parse_term("true", &mut stream.symbols).unwrap();
            stream.push_intervals(
                GroundFvp::new(f, v).unwrap(),
                IntervalList::from_pairs(&[(0, 200)]),
            );
            for i in 0..6 {
                stream
                    .push_event_src(&format!("start(v{i})"), 10 + i)
                    .unwrap();
                stream
                    .push_event_src(&format!("stop(v{i})"), 100 + i)
                    .unwrap();
            }
            let mut engine = rtec::Engine::new(&compiled, EngineConfig::default());
            stream.load_into(&mut engine);
            engine.run_to(300);
            let esym = engine.symbols().clone();
            let eout = engine.into_output();

            assert_eq!(
                rendered(&out, &sym),
                rendered(&eout, &esym),
                "shards={shards}"
            );
            assert!(s.stats().engine.windows >= 1);
            let final_stats = s.close().unwrap();
            assert_eq!(final_stats.events_ingested, 12);
        }
    }

    #[test]
    fn open_rejects_bad_input() {
        assert!(Session::open("x", "not valid rtec ):", SessionConfig::default()).is_err());
        assert!(Session::open(
            "x",
            DESC,
            SessionConfig {
                shards: 0,
                ..SessionConfig::default()
            }
        )
        .is_err());
        assert!(Session::open(
            "x",
            DESC,
            SessionConfig {
                window: Some(0),
                ..SessionConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn session_survives_a_reopen_round_trip() {
        let config = SessionConfig {
            window: Some(50),
            shards: 2,
            ..SessionConfig::default()
        };
        let mut s = Session::open("t", DESC, config).unwrap();
        s.ingest_intervals("near(v0, v1)", "true", &[(0, 200)])
            .unwrap();
        for i in 0..4 {
            s.ingest_event(&format!("start(v{i})"), 10 + i).unwrap();
        }
        s.tick(60).unwrap();

        // Capture the persistable parts and rebuild.
        let names: Vec<String> = s
            .master_symbols()
            .iter()
            .map(|(_, name)| name.to_string())
            .collect();
        let router = s.router_snapshot();
        let cps: Vec<EngineCheckpoint> = s
            .shard_checkpoints()
            .expect("checkpoints exist after a tick")
            .into_iter()
            .cloned()
            .collect();
        let stats = s.stats().clone();

        let mut t = Session::reopen("t", DESC, config, &names, &router, cps, stats).unwrap();

        // Drive both sessions identically; outputs must match exactly.
        for i in 0..4 {
            s.ingest_event(&format!("stop(v{i})"), 100 + i).unwrap();
            t.ingest_event(&format!("stop(v{i})"), 100 + i).unwrap();
        }
        s.tick(300).unwrap();
        t.tick(300).unwrap();
        let (so, ssym) = s.query().unwrap();
        let (to, tsym) = t.query().unwrap();
        assert_eq!(rendered(&so, &ssym), rendered(&to, &tsym));
        s.close().unwrap();
        t.close().unwrap();
    }
}
