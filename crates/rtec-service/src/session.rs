//! A recognition session: one compiled event description, a master
//! symbol table, a [`Router`] and a pool of entity-sharded engine
//! workers.
//!
//! The lifecycle mirrors how an RTEC deployment is operated:
//!
//! 1. **open** — compile the description, spawn `shards` workers;
//! 2. **ingest** — events / input intervals are parsed against the
//!    master table, routed by entity component, and pushed through each
//!    shard's bounded queue (blocking, counted, when full);
//! 3. **tick** — pin still-unpinned components, flush the buffer, and
//!    drive every shard's `run_to(to)`; per-tick wall time feeds the
//!    latency histogram;
//! 4. **query** — snapshot every shard and merge with
//!    [`RecognitionOutput::absorb`];
//! 5. **close** — drain the workers (all queued items are processed, no
//!    extra evaluation is forced) and report final stats.

use crate::router::{PendingItem, Route, Router};
use crate::worker::{ShardWorker, WorkerMsg};
use crossbeam::channel::bounded;
use rtec::description::{CompiledDescription, EventDescription};
use rtec::engine::{EngineConfig, EngineStats, RecognitionOutput};
use rtec::interval::IntervalList;
use rtec::parallel::{FirstArgPartitioner, Partitioner};
use rtec::term::GroundFvp;
use rtec::{SymbolTable, Timepoint};
use rtec_obs::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Session parameters.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Recognition window size; `None` evaluates each tick as one chunk
    /// covering everything since the previous tick.
    pub window: Option<Timepoint>,
    /// Number of engine shards (threads).
    pub shards: usize,
    /// Bounded per-shard queue capacity.
    pub queue_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            window: None,
            shards: 2,
            queue_capacity: 1024,
        }
    }
}

/// Counters of a session (monotonic over its lifetime).
#[derive(Clone, Debug, Default)]
pub struct SessionStats {
    /// Events accepted by `ingest_event`.
    pub events_ingested: u64,
    /// Input-interval entries accepted.
    pub intervals_ingested: u64,
    /// Ingest operations that blocked on a full shard queue.
    pub backpressure_waits: u64,
    /// Ticks served.
    pub ticks: u64,
    /// Horizon of the last tick (-1 before the first).
    pub processed_to: Timepoint,
    /// Tick wall-clock latency distribution.
    pub tick_latency: Histogram,
    /// Per-shard queue-depth high-water marks since open.
    pub queue_high_water: Vec<u64>,
    /// Merged per-shard engine counters as of the last tick/drain:
    /// event counts are summed; `windows` is the max across shards
    /// (every shard evaluates the same window sequence).
    pub engine: EngineStats,
}

/// A live recognition session.
pub struct Session {
    name: String,
    desc: Arc<CompiledDescription>,
    /// Master symbol table: description symbols plus every constant seen
    /// on the stream, append-only. All routed terms are interned here.
    master: SymbolTable,
    workers: Vec<ShardWorker>,
    router: Router,
    partitioner: FirstArgPartitioner,
    stats: SessionStats,
    config: SessionConfig,
}

impl Session {
    /// Compiles `description_src` and spawns the shard workers.
    pub fn open(
        name: impl Into<String>,
        description_src: &str,
        config: SessionConfig,
    ) -> Result<Session, String> {
        let desc =
            EventDescription::parse(description_src).map_err(|e| format!("description: {e}"))?;
        let compiled = Arc::new(desc.compile().map_err(|e| format!("description: {e}"))?);
        let engine_config = match config.window {
            Some(w) if w > 0 => EngineConfig::windowed(w),
            Some(w) => return Err(format!("window must be positive, got {w}")),
            None => EngineConfig::default(),
        };
        if config.shards == 0 {
            return Err("shards must be >= 1".into());
        }
        let workers = (0..config.shards)
            .map(|_| {
                ShardWorker::spawn(Arc::clone(&compiled), engine_config, config.queue_capacity)
            })
            .collect();
        let name = name.into();
        crate::obs::metrics().sessions_opened.inc();
        rtec_obs::info(
            "session.open",
            &[
                ("session", name.as_str().into()),
                ("shards", config.shards.into()),
                ("window", config.window.unwrap_or(-1).into()),
            ],
        );
        Ok(Session {
            name,
            master: compiled.symbols.clone(),
            desc: compiled,
            workers,
            router: Router::new(config.shards),
            partitioner: FirstArgPartitioner,
            stats: SessionStats {
                processed_to: -1,
                queue_high_water: vec![0; config.shards],
                ..SessionStats::default()
            },
            config,
        })
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The session's configuration.
    pub fn config(&self) -> SessionConfig {
        self.config
    }

    /// The compiled description (for tests and tooling).
    pub fn description(&self) -> &CompiledDescription {
        &self.desc
    }

    /// Parses and ingests one event (`term_src` like
    /// `entersArea(v1, brest_port)`) at time `t`.
    pub fn ingest_event(&mut self, term_src: &str, t: Timepoint) -> Result<(), String> {
        let term = rtec::parser::parse_term(term_src, &mut self.master)
            .map_err(|e| format!("event: {e}"))?;
        let entities = self.partitioner.event_entities(&term);
        match self.router.route(&entities) {
            Route::Shard(s) => self.send(s, WorkerMsg::Event(term, t))?,
            Route::Broadcast => {
                for s in 0..self.workers.len() {
                    self.send(s, WorkerMsg::Event(term.clone(), t))?;
                }
            }
            Route::Buffered => self
                .router
                .buffer(PendingItem::Event(term, t), &entities[0]),
        }
        self.stats.events_ingested += 1;
        crate::obs::metrics().events_ingested.inc();
        Ok(())
    }

    /// Parses and ingests input-fluent intervals, e.g.
    /// `proximity(v0, v1)` / `true` over `[(0, 200)]`.
    pub fn ingest_intervals(
        &mut self,
        fluent_src: &str,
        value_src: &str,
        pairs: &[(Timepoint, Timepoint)],
    ) -> Result<(), String> {
        let fluent = rtec::parser::parse_term(fluent_src, &mut self.master)
            .map_err(|e| format!("fluent: {e}"))?;
        let value = rtec::parser::parse_term(value_src, &mut self.master)
            .map_err(|e| format!("value: {e}"))?;
        let fvp = GroundFvp::new(fluent, value)
            .ok_or_else(|| format!("not a ground fluent-value pair: {fluent_src}={value_src}"))?;
        let list = IntervalList::from_pairs(pairs);
        let entities = self.partitioner.fvp_entities(&fvp);
        match self.router.route(&entities) {
            Route::Shard(s) => self.send(s, WorkerMsg::Intervals(fvp, list))?,
            Route::Broadcast => {
                for s in 0..self.workers.len() {
                    self.send(s, WorkerMsg::Intervals(fvp.clone(), list.clone()))?;
                }
            }
            Route::Buffered => self
                .router
                .buffer(PendingItem::Intervals(fvp, list), &entities[0].clone()),
        }
        self.stats.intervals_ingested += 1;
        crate::obs::metrics().intervals_ingested.inc();
        Ok(())
    }

    fn send(&mut self, shard: usize, msg: WorkerMsg) -> Result<(), String> {
        let blocked = self.workers[shard].send(msg)?;
        if blocked {
            self.stats.backpressure_waits += 1;
            crate::obs::metrics().backpressure_waits.inc();
        }
        let depth = self.workers[shard].queue_len() as u64;
        if depth > self.stats.queue_high_water[shard] {
            self.stats.queue_high_water[shard] = depth;
        }
        Ok(())
    }

    /// Pins pending components, flushes the buffer, and evaluates every
    /// shard up to `to`. Returns the aggregated engine counters.
    pub fn tick(&mut self, to: Timepoint) -> Result<EngineStats, String> {
        let started = Instant::now();
        for (shard, item) in self.router.flush() {
            let msg = match item {
                PendingItem::Event(ev, t) => WorkerMsg::Event(ev, t),
                PendingItem::Intervals(fvp, list) => WorkerMsg::Intervals(fvp, list),
            };
            self.send(shard, msg)?;
        }
        let mut replies = Vec::with_capacity(self.workers.len());
        for shard in 0..self.workers.len() {
            let (tx, rx) = bounded(1);
            self.send(shard, WorkerMsg::RunTo(to, tx))?;
            replies.push(rx);
        }
        let mut total = EngineStats::default();
        for rx in replies {
            let stats = rx.recv().map_err(|_| "shard worker exited".to_string())?;
            // Every shard evaluates the same window sequence, so the
            // logical window count is the max, not the sum.
            total.windows = total.windows.max(stats.windows);
            total.events_processed += stats.events_processed;
            total.events_dropped += stats.events_dropped;
        }
        self.stats.engine = total;
        self.stats.ticks += 1;
        self.stats.processed_to = self.stats.processed_to.max(to);
        let elapsed = started.elapsed();
        self.stats.tick_latency.observe_duration(elapsed);
        let metrics = crate::obs::metrics();
        metrics.ticks.inc();
        metrics.tick_duration_us.observe_duration(elapsed);
        Ok(total)
    }

    /// Snapshots and merges every shard's output. The returned symbol
    /// table renders the merged output's terms.
    pub fn query(&mut self) -> Result<(RecognitionOutput, SymbolTable), String> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for shard in 0..self.workers.len() {
            let (tx, rx) = bounded(1);
            self.send(shard, WorkerMsg::Snapshot(tx))?;
            replies.push(rx);
        }
        let mut merged = RecognitionOutput::default();
        for rx in replies {
            let (out, _) = rx.recv().map_err(|_| "shard worker exited".to_string())?;
            merged.absorb(out);
        }
        if self.router.late_couplings > 0 {
            merged.warnings.push(format!(
                "{} coupling(s) arrived after shard pinning; results for the affected \
                 entity pairs are best-effort",
                self.router.late_couplings
            ));
        }
        Ok((merged, self.master.clone()))
    }

    /// Current counters (ingest-side live; engine-side as of last tick).
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Number of late couplings observed by the router.
    pub fn late_couplings(&self) -> u64 {
        self.router.late_couplings
    }

    /// Items buffered awaiting the next tick.
    pub fn buffered(&self) -> usize {
        self.router.buffered()
    }

    /// Total queued items across shard channels (approximate).
    pub fn queue_depth(&self) -> usize {
        self.workers.iter().map(ShardWorker::queue_len).sum()
    }

    /// Per-shard queued item counts (approximate).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.workers.iter().map(ShardWorker::queue_len).collect()
    }

    /// Per-shard queue-depth high-water marks since open.
    pub fn queue_high_water(&self) -> &[u64] {
        &self.stats.queue_high_water
    }

    /// Drains every worker and returns final aggregate stats. Buffered
    /// (never-ticked) items are flushed first so nothing is dropped.
    pub fn close(mut self) -> Result<SessionStats, String> {
        for (shard, item) in self.router.flush() {
            let msg = match item {
                PendingItem::Event(ev, t) => WorkerMsg::Event(ev, t),
                PendingItem::Intervals(fvp, list) => WorkerMsg::Intervals(fvp, list),
            };
            let blocked = self.workers[shard].send(msg)?;
            if blocked {
                self.stats.backpressure_waits += 1;
                crate::obs::metrics().backpressure_waits.inc();
            }
        }
        let mut total = EngineStats::default();
        for worker in self.workers {
            let stats = worker.drain()?;
            total.windows = total.windows.max(stats.windows);
            total.events_processed += stats.events_processed;
            total.events_dropped += stats.events_dropped;
        }
        self.stats.engine = total;
        crate::obs::metrics().sessions_closed.inc();
        rtec_obs::info(
            "session.close",
            &[
                ("session", self.name.as_str().into()),
                ("events_ingested", self.stats.events_ingested.into()),
                ("windows", self.stats.engine.windows.into()),
                (
                    "events_processed",
                    self.stats.engine.events_processed.into(),
                ),
            ],
        );
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESC: &str = "
        initiatedAt(busy(V)=true, T) :- happensAt(start(V), T).
        terminatedAt(busy(V)=true, T) :- happensAt(stop(V), T).
        holdsFor(pair(V1, V2)=true, I) :-
            holdsFor(near(V1, V2)=true, Ip),
            holdsFor(busy(V1)=true, I1),
            holdsFor(busy(V2)=true, I2),
            intersect_all([Ip, I1, I2], I).
    ";

    fn rendered(out: &RecognitionOutput, sym: &SymbolTable) -> Vec<String> {
        let mut rows: Vec<String> = out
            .iter()
            .map(|(f, l)| format!("{}={}", f.display(sym), l))
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn session_matches_batch_engine() {
        for shards in [1, 2, 4] {
            let mut s = Session::open(
                "t",
                DESC,
                SessionConfig {
                    shards,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            s.ingest_intervals("near(v0, v1)", "true", &[(0, 200)])
                .unwrap();
            for i in 0..6 {
                s.ingest_event(&format!("start(v{i})"), 10 + i).unwrap();
                s.ingest_event(&format!("stop(v{i})"), 100 + i).unwrap();
            }
            s.tick(300).unwrap();
            let (out, sym) = s.query().unwrap();

            // Reference: one batch engine over the same inputs.
            let desc = EventDescription::parse(DESC).unwrap();
            let compiled = desc.compile().unwrap();
            let mut stream = rtec::stream::InputStream::new();
            let f = rtec::parser::parse_term("near(v0, v1)", &mut stream.symbols).unwrap();
            let v = rtec::parser::parse_term("true", &mut stream.symbols).unwrap();
            stream.push_intervals(
                GroundFvp::new(f, v).unwrap(),
                IntervalList::from_pairs(&[(0, 200)]),
            );
            for i in 0..6 {
                stream
                    .push_event_src(&format!("start(v{i})"), 10 + i)
                    .unwrap();
                stream
                    .push_event_src(&format!("stop(v{i})"), 100 + i)
                    .unwrap();
            }
            let mut engine = rtec::Engine::new(&compiled, EngineConfig::default());
            stream.load_into(&mut engine);
            engine.run_to(300);
            let esym = engine.symbols().clone();
            let eout = engine.into_output();

            assert_eq!(
                rendered(&out, &sym),
                rendered(&eout, &esym),
                "shards={shards}"
            );
            assert!(s.stats().engine.windows >= 1);
            let final_stats = s.close().unwrap();
            assert_eq!(final_stats.events_ingested, 12);
        }
    }

    #[test]
    fn open_rejects_bad_input() {
        assert!(Session::open("x", "not valid rtec ):", SessionConfig::default()).is_err());
        assert!(Session::open(
            "x",
            DESC,
            SessionConfig {
                shards: 0,
                ..SessionConfig::default()
            }
        )
        .is_err());
        assert!(Session::open(
            "x",
            DESC,
            SessionConfig {
                window: Some(0),
                ..SessionConfig::default()
            }
        )
        .is_err());
    }
}
