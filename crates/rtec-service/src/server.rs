//! Transport layer: serves the NDJSON protocol over TCP or stdio.
//!
//! The TCP server is a plain `std::net::TcpListener` with a small fixed
//! pool of handler threads fed by an unbounded crossbeam channel — one
//! connection is handled by one thread at a time, so up to `threads`
//! connections are served concurrently and the rest queue. A `shutdown`
//! command drains every session, flips the registry flag, and a
//! self-connection pokes the accept loop awake so it can exit.
//!
//! Framing is byte-level and hardened: lines are read raw (invalid
//! UTF-8 gets a structured `bad_frame` error instead of killing the
//! connection) and capped at [`MAX_FRAME`] bytes — an oversized line is
//! skipped and answered with an error frame, so a malicious or broken
//! client cannot make the server buffer unbounded input.

use crate::protocol::{codes, error_frame};
use crate::registry::Registry;
use crossbeam::channel::{unbounded, Receiver};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// Maximum accepted request-line length in bytes (1 MiB). Longer lines
/// are discarded and answered with a `bad_frame` error.
pub const MAX_FRAME: usize = 1 << 20;

/// One raw request line, as read by [`read_frame`].
enum Frame {
    /// End of input.
    Eof,
    /// A complete line (without the trailing newline guarantee — the
    /// final line of the stream may lack one).
    Line(Vec<u8>),
    /// A line longer than [`MAX_FRAME`]; its bytes were discarded.
    Oversized,
}

/// Reads one newline-terminated frame without assuming UTF-8, enforcing
/// the [`MAX_FRAME`] cap. An oversized line is consumed to its end so
/// the connection can continue with the next frame.
fn read_frame(reader: &mut impl BufRead) -> Result<Frame, String> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_FRAME as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(|e| e.to_string())?;
    if n == 0 {
        return Ok(Frame::Eof);
    }
    if buf.len() > MAX_FRAME && !buf.ends_with(b"\n") {
        // Skip the remainder of the oversized line.
        loop {
            let mut rest = Vec::new();
            let m = reader
                .by_ref()
                .take(MAX_FRAME as u64)
                .read_until(b'\n', &mut rest)
                .map_err(|e| e.to_string())?;
            if m == 0 || rest.ends_with(b"\n") {
                break;
            }
        }
        return Ok(Frame::Oversized);
    }
    Ok(Frame::Line(buf))
}

/// Turns a raw frame into the response line to write, or `None` when the
/// frame needs no reply (blank line). Counts rejected raw frames.
fn respond_to_frame(registry: &Registry, frame: &Frame) -> Option<String> {
    match frame {
        Frame::Eof => None,
        Frame::Oversized => {
            crate::obs::metrics().frames_rejected.inc();
            Some(error_frame(
                codes::BAD_FRAME,
                "malformed request: frame exceeds the 1 MiB limit",
            ))
        }
        Frame::Line(bytes) => match std::str::from_utf8(bytes) {
            Ok(text) => {
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    None
                } else {
                    Some(registry.dispatch(trimmed))
                }
            }
            Err(_) => {
                crate::obs::metrics().frames_rejected.inc();
                Some(error_frame(
                    codes::BAD_FRAME,
                    "malformed request: line is not valid UTF-8",
                ))
            }
        },
    }
}

/// TCP server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Handler threads (concurrent connections).
    pub threads: usize,
    /// Optional Prometheus scrape endpoint (`GET /metrics` over plain
    /// HTTP/1.1), e.g. `127.0.0.1:9187`. `None` disables it.
    pub metrics_addr: Option<String>,
    /// Directory for durable session checkpoints (written after every
    /// tick; `restore` rebuilds sessions from it). `None` disables
    /// persistence.
    pub checkpoint_dir: Option<String>,
    /// Default crashed-worker restart budget per session before
    /// quarantine. `None` keeps the [`crate::SessionConfig`] default.
    pub max_worker_restarts: Option<usize>,
    /// Directory for per-session write-ahead journals (appended before
    /// every ack; replayed on `restore` past the newest checkpoint).
    /// `None` disables journaling.
    pub journal_dir: Option<String>,
    /// Journal fsync policy (`always` / `interval:<ms>` / `never`).
    pub journal_fsync: crate::journal::FsyncPolicy,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: 4,
            metrics_addr: None,
            checkpoint_dir: None,
            max_worker_restarts: None,
            journal_dir: None,
            journal_fsync: crate::journal::FsyncPolicy::default(),
        }
    }
}

/// A bound, not-yet-running TCP server. Binding is split from serving so
/// callers (tests, the CLI) can learn the actual port before blocking.
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    registry: Arc<Registry>,
    threads: usize,
}

impl Server {
    /// Binds the listen socket (and the metrics socket, if configured).
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => {
                Some(TcpListener::bind(addr).map_err(|e| format!("bind metrics {addr}: {e}"))?)
            }
            None => None,
        };
        Ok(Server {
            listener,
            metrics_listener,
            registry: Arc::new(
                Registry::with_options(
                    config.checkpoint_dir.clone().map(Into::into),
                    config.max_worker_restarts,
                )
                .with_journal(
                    config.journal_dir.clone().map(Into::into),
                    config.journal_fsync,
                ),
            ),
            threads: config.threads.max(1),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// The bound metrics address, if a metrics endpoint is configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The shared registry (for in-process inspection in tests).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Accepts and serves connections until a `shutdown` command. Blocks.
    pub fn serve(self) -> Result<(), String> {
        let local = self.local_addr()?;
        rtec_obs::info(
            "service.listening",
            &[
                ("addr", local.to_string().into()),
                ("threads", self.threads.into()),
            ],
        );
        let metrics_local = self.metrics_addr();
        let metrics_handle = self.metrics_listener.map(|listener| {
            let registry = Arc::clone(&self.registry);
            if let Some(addr) = metrics_local {
                rtec_obs::info(
                    "service.metrics_listening",
                    &[("addr", addr.to_string().into())],
                );
            }
            std::thread::spawn(move || serve_metrics(&listener, &registry))
        });
        let (tx, rx) = unbounded::<TcpStream>();
        let mut handlers = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let rx: Receiver<TcpStream> = rx.clone();
            let registry = Arc::clone(&self.registry);
            handlers.push(std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    // A failed connection must not take the worker down.
                    let _ = handle_connection(stream, &registry, local);
                }
            }));
        }
        for stream in self.listener.incoming() {
            if self.registry.is_shutting_down() {
                break;
            }
            match stream {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for handler in handlers {
            let _ = handler.join();
        }
        // Poke the metrics accept loop awake so it observes the shutdown
        // flag (same trick handle_connection plays on the main listener).
        if let Some(addr) = metrics_local {
            let _ = TcpStream::connect(addr);
        }
        if let Some(handle) = metrics_handle {
            let _ = handle.join();
        }
        rtec_obs::info("service.stopped", &[]);
        Ok(())
    }
}

/// Serves `GET /metrics` (Prometheus text), `GET /healthz` (process
/// liveness) and `GET /readyz` (traffic readiness) over minimal
/// HTTP/1.1, one request per connection, until the registry starts
/// shutting down. Unknown paths fall back to the metrics body for
/// compatibility with pre-route scrapers.
fn serve_metrics(listener: &TcpListener, registry: &Registry) {
    for stream in listener.incoming() {
        if registry.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = serve_one_scrape(stream, registry);
    }
}

fn serve_one_scrape(stream: TcpStream, registry: &Registry) -> Result<(), String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    // Capture the request line's path, then drain the headers (up to the
    // blank line).
    let mut path = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 || line.trim().is_empty() {
            break;
        }
        if path.is_empty() {
            // "GET /readyz HTTP/1.1" — the middle token is the path.
            path = line
                .split_whitespace()
                .nth(1)
                .unwrap_or_default()
                .to_string();
        }
    }
    let (status, content_type, body) = match path.as_str() {
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/readyz" => match registry.readiness() {
            Ok(()) => ("200 OK", "text/plain", "ready\n".to_string()),
            Err(reason) => (
                "503 Service Unavailable",
                "text/plain",
                format!("{reason}\n"),
            ),
        },
        _ => (
            "200 OK",
            rtec_obs::expo::CONTENT_TYPE,
            registry.render_metrics(),
        ),
    };
    let mut writer = BufWriter::new(stream);
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .and_then(|()| writer.flush())
    .map_err(|e| e.to_string())
}

/// Serves one connection: reads request lines, writes response lines.
/// Returns when the peer closes or after relaying a `shutdown`.
fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    local: SocketAddr,
) -> Result<(), String> {
    let peer_read = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(peer_read);
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = read_frame(&mut reader)?;
        if matches!(frame, Frame::Eof) {
            return Ok(());
        }
        let Some(response) = respond_to_frame(registry, &frame) else {
            continue;
        };
        writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| e.to_string())?;
        if registry.is_shutting_down() {
            // Self-connect once so a blocked accept() wakes up and
            // observes the shutdown flag. Best-effort: if it fails, the
            // next real connection unblocks the loop instead.
            let _ = TcpStream::connect(local);
            return Ok(());
        }
    }
}

/// Sends `shutdown` to a running server at `addr`. Used by the CLI
/// client and by tests.
pub fn request_shutdown(addr: &str) -> Result<String, String> {
    roundtrip(addr, "{\"cmd\":\"shutdown\"}")
}

/// One-shot request/response against a server at `addr`.
pub fn roundtrip(addr: &str, request_line: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    writer
        .write_all(request_line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    if line.is_empty() {
        return Err("server closed the connection".into());
    }
    Ok(line.trim_end().to_string())
}

/// Serves the protocol over arbitrary reader/writer pairs (used for
/// stdio mode: `rtec-cli serve --stdio`). Returns after `shutdown` or
/// end of input.
pub fn serve_stdio(
    registry: &Registry,
    input: impl Read,
    mut output: impl Write,
) -> Result<(), String> {
    let mut reader = BufReader::new(input);
    loop {
        let frame = read_frame(&mut reader)?;
        if matches!(frame, Frame::Eof) {
            break;
        }
        let Some(response) = respond_to_frame(registry, &frame) else {
            continue;
        };
        writeln!(output, "{response}").map_err(|e| e.to_string())?;
        output.flush().map_err(|e| e.to_string())?;
        if registry.is_shutting_down() {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                        terminatedAt(on(X)=true, T) :- happensAt(down(X), T).";

    #[test]
    fn stdio_round_trip() {
        let registry = Registry::new();
        let open = format!(
            "{{\"cmd\":\"open\",\"session\":\"s\",\"description\":{}}}",
            serde_json::to_string(&Value::from(DESC)).unwrap()
        );
        let script = format!(
            "{open}\n{}\n{}\n{}\n{}\n",
            r#"{"cmd":"event","session":"s","t":5,"event":"up(a)"}"#,
            r#"{"cmd":"tick","session":"s","to":10}"#,
            r#"{"cmd":"query","session":"s"}"#,
            r#"{"cmd":"shutdown"}"#,
        );
        let mut out = Vec::new();
        serve_stdio(&registry, script.as_bytes(), &mut out).unwrap();
        let lines: Vec<Value> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|v| v["ok"] == true), "{lines:?}");
        assert_eq!(lines[3]["rows"][0]["fvp"], "on(a)=true");
        assert_eq!(lines[3]["rows"][0]["intervals"], "[[6, 11)]");
        assert!(registry.is_shutting_down());
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let metrics_addr = server.metrics_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.serve());

        let open = format!(
            "{{\"cmd\":\"open\",\"session\":\"s\",\"description\":{}}}",
            serde_json::to_string(&Value::from(DESC)).unwrap()
        );
        let v: Value = serde_json::from_str(&roundtrip(&addr, &open).unwrap()).unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        let v: Value = serde_json::from_str(
            &roundtrip(
                &addr,
                r#"{"cmd":"event","session":"s","t":5,"event":"up(a)"}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        let v: Value = serde_json::from_str(
            &roundtrip(&addr, r#"{"cmd":"tick","session":"s","to":10}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(v["events_processed"], 1i64);

        // The HTTP metrics endpoint returns valid Prometheus text.
        let body = http_get(&metrics_addr);
        rtec_obs::expo::validate(&body).expect("valid exposition over HTTP");
        assert!(body.contains("rtec_service_sessions_open 1"), "{body}");
        assert!(body.contains("rtec_engine_windows_total"), "{body}");

        let v: Value = serde_json::from_str(&request_shutdown(&addr).unwrap()).unwrap();
        assert_eq!(v["closed_sessions"], 1i64);
        handle.join().unwrap().unwrap();
    }

    fn http_get(addr: &str) -> String {
        let (headers, body) = http_request(addr, "/metrics");
        assert!(headers.starts_with("HTTP/1.1 200 OK"), "{headers}");
        assert!(headers.contains("text/plain; version=0.0.4"), "{headers}");
        body
    }

    fn http_request(addr: &str, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (headers, body) = response
            .split_once("\r\n\r\n")
            .expect("HTTP header/body split");
        (headers.to_string(), body.to_string())
    }

    #[test]
    fn health_and_readiness_routes() {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let metrics_addr = server.metrics_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.serve());

        let (headers, body) = http_request(&metrics_addr, "/healthz");
        assert!(headers.starts_with("HTTP/1.1 200 OK"), "{headers}");
        assert_eq!(body, "ok\n");

        let (headers, body) = http_request(&metrics_addr, "/readyz");
        assert!(headers.starts_with("HTTP/1.1 200 OK"), "{headers}");
        assert_eq!(body, "ready\n");

        // A healthy open session keeps readiness green.
        let open = format!(
            "{{\"cmd\":\"open\",\"session\":\"q\",\"description\":{}}}",
            serde_json::to_string(&Value::from(DESC)).unwrap()
        );
        let v: Value = serde_json::from_str(&roundtrip(&addr, &open).unwrap()).unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        let (headers, _) = http_request(&metrics_addr, "/readyz");
        assert!(headers.starts_with("HTTP/1.1 200 OK"), "{headers}");

        // Unknown paths still serve metrics (scraper compatibility).
        let (headers, body) = http_request(&metrics_addr, "/");
        assert!(headers.starts_with("HTTP/1.1 200 OK"), "{headers}");
        assert!(body.contains("rtec_service_sessions_open"), "{body}");

        let _ = request_shutdown(&addr);
        handle.join().unwrap().unwrap();
    }
}
