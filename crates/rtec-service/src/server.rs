//! Transport layer: serves the NDJSON protocol over TCP or stdio.
//!
//! The TCP server is a plain `std::net::TcpListener` with a small fixed
//! pool of handler threads fed by an unbounded crossbeam channel — one
//! connection is handled by one thread at a time, so up to `threads`
//! connections are served concurrently and the rest queue. A `shutdown`
//! command drains every session, flips the registry flag, and a
//! self-connection pokes the accept loop awake so it can exit.

use crate::registry::Registry;
use crossbeam::channel::{unbounded, Receiver};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// TCP server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Handler threads (concurrent connections).
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            threads: 4,
        }
    }
}

/// A bound, not-yet-running TCP server. Binding is split from serving so
/// callers (tests, the CLI) can learn the actual port before blocking.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    threads: usize,
}

impl Server {
    /// Binds the listen socket.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        Ok(Server {
            listener,
            registry: Arc::new(Registry::new()),
            threads: config.threads.max(1),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// The shared registry (for in-process inspection in tests).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Accepts and serves connections until a `shutdown` command. Blocks.
    pub fn serve(self) -> Result<(), String> {
        let local = self.local_addr()?;
        let (tx, rx) = unbounded::<TcpStream>();
        let mut handlers = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let rx: Receiver<TcpStream> = rx.clone();
            let registry = Arc::clone(&self.registry);
            handlers.push(std::thread::spawn(move || {
                while let Ok(stream) = rx.recv() {
                    // A failed connection must not take the worker down.
                    let _ = handle_connection(stream, &registry, local);
                }
            }));
        }
        for stream in self.listener.incoming() {
            if self.registry.is_shutting_down() {
                break;
            }
            match stream {
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(())
    }
}

/// Serves one connection: reads request lines, writes response lines.
/// Returns when the peer closes or after relaying a `shutdown`.
fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    local: SocketAddr,
) -> Result<(), String> {
    let peer_read = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(peer_read);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if n == 0 {
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = registry.dispatch(trimmed);
        writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| e.to_string())?;
        if registry.is_shutting_down() {
            // Self-connect once so a blocked accept() wakes up and
            // observes the shutdown flag. Best-effort: if it fails, the
            // next real connection unblocks the loop instead.
            let _ = TcpStream::connect(local);
            return Ok(());
        }
    }
}

/// Sends `shutdown` to a running server at `addr`. Used by the CLI
/// client and by tests.
pub fn request_shutdown(addr: &str) -> Result<String, String> {
    roundtrip(addr, "{\"cmd\":\"shutdown\"}")
}

/// One-shot request/response against a server at `addr`.
pub fn roundtrip(addr: &str, request_line: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    writer
        .write_all(request_line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    if line.is_empty() {
        return Err("server closed the connection".into());
    }
    Ok(line.trim_end().to_string())
}

/// Serves the protocol over arbitrary reader/writer pairs (used for
/// stdio mode: `rtec-cli serve --stdio`). Returns after `shutdown` or
/// end of input.
pub fn serve_stdio(
    registry: &Registry,
    input: impl Read,
    mut output: impl Write,
) -> Result<(), String> {
    let reader = BufReader::new(input);
    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = registry.dispatch(trimmed);
        writeln!(output, "{response}").map_err(|e| e.to_string())?;
        output.flush().map_err(|e| e.to_string())?;
        if registry.is_shutting_down() {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                        terminatedAt(on(X)=true, T) :- happensAt(down(X), T).";

    #[test]
    fn stdio_round_trip() {
        let registry = Registry::new();
        let open = format!(
            "{{\"cmd\":\"open\",\"session\":\"s\",\"description\":{}}}",
            serde_json::to_string(&Value::from(DESC)).unwrap()
        );
        let script = format!(
            "{open}\n{}\n{}\n{}\n{}\n",
            r#"{"cmd":"event","session":"s","t":5,"event":"up(a)"}"#,
            r#"{"cmd":"tick","session":"s","to":10}"#,
            r#"{"cmd":"query","session":"s"}"#,
            r#"{"cmd":"shutdown"}"#,
        );
        let mut out = Vec::new();
        serve_stdio(&registry, script.as_bytes(), &mut out).unwrap();
        let lines: Vec<Value> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|v| v["ok"] == true), "{lines:?}");
        assert_eq!(lines[3]["rows"][0]["fvp"], "on(a)=true");
        assert_eq!(lines[3]["rows"][0]["intervals"], "[[6, 11)]");
        assert!(registry.is_shutting_down());
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.serve());

        let open = format!(
            "{{\"cmd\":\"open\",\"session\":\"s\",\"description\":{}}}",
            serde_json::to_string(&Value::from(DESC)).unwrap()
        );
        let v: Value = serde_json::from_str(&roundtrip(&addr, &open).unwrap()).unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        let v: Value = serde_json::from_str(
            &roundtrip(
                &addr,
                r#"{"cmd":"event","session":"s","t":5,"event":"up(a)"}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        let v: Value = serde_json::from_str(
            &roundtrip(&addr, r#"{"cmd":"tick","session":"s","to":10}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(v["events_processed"], 1i64);

        let v: Value = serde_json::from_str(&request_shutdown(&addr).unwrap()).unwrap();
        assert_eq!(v["closed_sessions"], 1i64);
        handle.join().unwrap().unwrap();
    }
}
