//! rtec-service: a multi-session streaming recognition server.
//!
//! Hosts many concurrent recognition sessions in one long-running
//! process. Each [`session::Session`] owns a compiled event description,
//! a master symbol table, and a pool of entity-sharded engine workers
//! (the same partitioning scheme as
//! [`rtec::parallel::recognize_partitioned`], made incremental by
//! [`router::Router`]). Events flow through bounded queues with explicit
//! backpressure accounting; query-time *ticks* drive incremental
//! `run_to` evaluation per shard; per-shard outputs merge with
//! [`rtec::engine::RecognitionOutput::absorb`].
//!
//! The wire protocol is NDJSON (one JSON object per line) served over
//! TCP ([`server::Server`]) or stdio ([`server::serve_stdio`]); see
//! `docs/SERVICE.md` for the full command reference. [`client`] holds a
//! replay client that streams an event file into a running server and
//! renders output byte-compatible with a batch `rtec-cli run`.

#![forbid(unsafe_code)]

pub mod client;
pub mod fault;
pub mod flight;
pub mod journal;
pub mod obs;
pub mod persist;
pub mod protocol;
pub mod registry;
pub mod router;
pub mod server;
pub mod session;
pub mod worker;

pub use client::{parse_stream_file, stream_file, Client, StreamFile, StreamOptions, StreamReport};
pub use fault::{FaultPlan, IoFaultKind, WorkerPanic};
pub use flight::{FlightRecorder, TickTrace};
pub use journal::{FsyncPolicy, Journal};
pub use registry::Registry;
pub use server::{request_shutdown, serve_stdio, Server, ServerConfig, MAX_FRAME};
pub use session::{Ingest, Session, SessionConfig, SessionStats, TickReport};
