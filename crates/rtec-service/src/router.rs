//! Entity-to-shard routing for a streaming session.
//!
//! Reproduces the partitioning scheme of
//! [`rtec::parallel::recognize_partitioned`] incrementally: entities are
//! grouped into interaction components with a union-find over coupling
//! inputs (multi-entity events, input-fluent instances such as
//! `proximity(v1, v2)`), and components are pinned to shards round-robin
//! in entity-discovery order.
//!
//! Pinning is deferred: items whose component is not pinned yet are
//! buffered, and every buffered component is pinned at the next *flush*
//! (a tick or a drain). When **all couplings arrive before the first
//! tick** — the contract of the batch partitioner, and the natural shape
//! of a stream whose proximity intervals are declared up front — the
//! resulting assignment is identical to the batch one, so the merged
//! output is identical to a single-engine run.
//!
//! A coupling that arrives *after* the components it joins were pinned
//! to different shards cannot be honoured without re-sharding; it is
//! counted in [`Router::late_couplings`] and routed best-effort to the
//! first entity's shard.

use rtec::interval::IntervalList;
use rtec::term::GroundFvp;
use rtec::{Term, Timepoint};
use std::collections::HashMap;

/// Where an input item should go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Deliver to one shard.
    Shard(usize),
    /// Deliver to every shard (entity-less items; the merge is
    /// idempotent for them).
    Broadcast,
    /// Held back until the next flush pins the item's component.
    Buffered,
}

/// A buffered input item (kept in arrival order).
pub enum PendingItem {
    /// An event at a time-point.
    Event(Term, Timepoint),
    /// An input-fluent interval list.
    Intervals(GroundFvp, IntervalList),
}

/// Serializable image of a [`Router`]'s sharding decisions, taken at a
/// tick boundary (the buffer is empty then — `flush` ran). Restoring it
/// into a fresh router reproduces the exact entity→shard assignment, so
/// a session rebuilt from a checkpoint routes future items identically.
#[derive(Clone, Debug)]
pub struct RouterSnapshot {
    /// Shard count the assignment was made for.
    pub n_shards: usize,
    /// Entities in id (discovery) order.
    pub entities: Vec<Term>,
    /// Union-find parent array, indexed by entity id.
    pub parent: Vec<usize>,
    /// `(component root, shard)` pins, sorted by root.
    pub shard_of_root: Vec<(usize, usize)>,
    /// Round-robin pin counter.
    pub pinned: usize,
    /// Late couplings observed so far.
    pub late_couplings: u64,
}

/// Incremental entity partitioner. Terms handed in must be interned in
/// the session's master symbol table.
pub struct Router {
    n_shards: usize,
    entity_ids: HashMap<Term, usize>,
    parent: Vec<usize>,
    /// Component root -> pinned shard.
    shard_of_root: HashMap<usize, usize>,
    /// Number of components pinned so far (round-robin counter).
    pinned: usize,
    buffer: Vec<(PendingItem, Option<usize>)>,
    /// Couplings that arrived after their components were pinned apart.
    pub late_couplings: u64,
}

impl Router {
    /// A router distributing components over `n_shards` shards.
    pub fn new(n_shards: usize) -> Router {
        assert!(n_shards >= 1, "at least one shard required");
        Router {
            n_shards,
            entity_ids: HashMap::new(),
            parent: Vec::new(),
            shard_of_root: HashMap::new(),
            pinned: 0,
            buffer: Vec::new(),
            late_couplings: 0,
        }
    }

    fn id_of(&mut self, entity: &Term) -> usize {
        if let Some(&id) = self.entity_ids.get(entity) {
            return id;
        }
        let id = self.parent.len();
        self.entity_ids.insert(entity.clone(), id);
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions two entities' components, propagating an existing pin. A
    /// union of components pinned to different shards is counted as a
    /// late coupling (the pins stay as they are).
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let pa = self.shard_of_root.get(&ra).copied();
        let pb = self.shard_of_root.get(&rb).copied();
        self.parent[ra] = rb;
        match (pa, pb) {
            (Some(sa), Some(sb)) if sa != sb => self.late_couplings += 1,
            (Some(sa), None) => {
                self.shard_of_root.insert(rb, sa);
            }
            _ => {}
        }
    }

    /// Registers an item's entities (interning new ones, unioning
    /// couplings) and decides its route. `entities` comes from a
    /// [`rtec::parallel::Partitioner`].
    pub fn route(&mut self, entities: &[Term]) -> Route {
        if entities.is_empty() {
            return Route::Broadcast;
        }
        let ids: Vec<usize> = entities.iter().map(|e| self.id_of(e)).collect();
        for w in ids.windows(2) {
            self.union(w[0], w[1]);
        }
        let root = self.find(ids[0]);
        match self.shard_of_root.get(&root) {
            Some(&s) => Route::Shard(s),
            None => Route::Buffered,
        }
    }

    /// Stores an item whose route was [`Route::Buffered`].
    pub fn buffer(&mut self, item: PendingItem, first_entity: &Term) {
        let id = self.id_of(first_entity);
        self.buffer.push((item, Some(id)));
    }

    /// Number of items waiting for a flush.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Pins every unpinned component (round-robin in entity-discovery
    /// order, like the batch partitioner) and drains the buffer as
    /// `(shard, item)` pairs in arrival order.
    pub fn flush(&mut self) -> Vec<(usize, PendingItem)> {
        for e in 0..self.parent.len() {
            let root = self.find(e);
            if !self.shard_of_root.contains_key(&root) {
                let shard = self.pinned % self.n_shards;
                self.shard_of_root.insert(root, shard);
                self.pinned += 1;
            }
        }
        let buffer = std::mem::take(&mut self.buffer);
        buffer
            .into_iter()
            .map(|(item, ent)| {
                let shard = match ent {
                    Some(e) => {
                        let root = self.find(e);
                        self.shard_of_root[&root]
                    }
                    None => 0,
                };
                (shard, item)
            })
            .collect()
    }

    /// Captures the sharding state. Buffered items are deliberately not
    /// part of the snapshot — callers snapshot at tick boundaries, right
    /// after [`Router::flush`].
    pub fn snapshot(&self) -> RouterSnapshot {
        let mut entities: Vec<(usize, Term)> = self
            .entity_ids
            .iter()
            .map(|(term, &id)| (id, term.clone()))
            .collect();
        entities.sort_by_key(|(id, _)| *id);
        let mut shard_of_root: Vec<(usize, usize)> = self
            .shard_of_root
            .iter()
            .map(|(&root, &shard)| (root, shard))
            .collect();
        shard_of_root.sort_unstable();
        RouterSnapshot {
            n_shards: self.n_shards,
            entities: entities.into_iter().map(|(_, term)| term).collect(),
            parent: self.parent.clone(),
            shard_of_root,
            pinned: self.pinned,
            late_couplings: self.late_couplings,
        }
    }

    /// Rebuilds a router from a snapshot. Fails if the snapshot is
    /// internally inconsistent (mismatched lengths, out-of-range ids).
    pub fn restore(snap: &RouterSnapshot) -> Result<Router, String> {
        if snap.n_shards == 0 {
            return Err("router snapshot: zero shards".into());
        }
        let n = snap.entities.len();
        if snap.parent.len() != n {
            return Err("router snapshot: parent/entity length mismatch".into());
        }
        if snap.parent.iter().any(|&p| p >= n)
            || snap
                .shard_of_root
                .iter()
                .any(|&(root, shard)| root >= n || shard >= snap.n_shards)
        {
            return Err("router snapshot: id out of range".into());
        }
        let entity_ids = snap
            .entities
            .iter()
            .enumerate()
            .map(|(id, term)| (term.clone(), id))
            .collect();
        Ok(Router {
            n_shards: snap.n_shards,
            entity_ids,
            parent: snap.parent.clone(),
            shard_of_root: snap.shard_of_root.iter().copied().collect(),
            pinned: snap.pinned,
            buffer: Vec::new(),
            late_couplings: snap.late_couplings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::SymbolTable;

    fn atom(sym: &mut SymbolTable, name: &str) -> Term {
        Term::Atom(sym.intern(name))
    }

    #[test]
    fn pre_flush_coupling_keeps_entities_together() {
        let mut sym = SymbolTable::new();
        let (a, b, c) = (
            atom(&mut sym, "a"),
            atom(&mut sym, "b"),
            atom(&mut sym, "c"),
        );
        let mut r = Router::new(2);
        assert_eq!(r.route(std::slice::from_ref(&a)), Route::Buffered);
        assert_eq!(r.route(&[a.clone(), b.clone()]), Route::Buffered);
        assert_eq!(r.route(std::slice::from_ref(&c)), Route::Buffered);
        let _ = r.flush();
        let sa = r.route(std::slice::from_ref(&a));
        let sb = r.route(std::slice::from_ref(&b));
        let sc = r.route(std::slice::from_ref(&c));
        assert_eq!(sa, sb, "coupled entities must share a shard");
        assert_ne!(sa, sc, "two components round-robin across two shards");
        assert_eq!(r.late_couplings, 0);
    }

    #[test]
    fn post_pin_cross_shard_coupling_is_counted() {
        let mut sym = SymbolTable::new();
        let (a, b) = (atom(&mut sym, "a"), atom(&mut sym, "b"));
        let mut r = Router::new(2);
        let _ = r.route(std::slice::from_ref(&a));
        let _ = r.route(std::slice::from_ref(&b));
        let _ = r.flush(); // pins a and b to different shards
        let _ = r.route(&[a, b]);
        assert_eq!(r.late_couplings, 1);
    }

    #[test]
    fn entity_less_items_broadcast() {
        let mut r = Router::new(3);
        assert_eq!(r.route(&[]), Route::Broadcast);
    }

    #[test]
    fn snapshot_restore_preserves_the_assignment() {
        let mut sym = SymbolTable::new();
        let names = ["a", "b", "c", "d", "e"];
        let terms: Vec<Term> = names.iter().map(|n| atom(&mut sym, n)).collect();
        let mut r = Router::new(3);
        for t in &terms {
            let _ = r.route(std::slice::from_ref(t));
        }
        let _ = r.route(&[terms[0].clone(), terms[3].clone()]);
        let _ = r.flush();

        let snap = r.snapshot();
        let mut restored = Router::restore(&snap).unwrap();
        for t in &terms {
            assert_eq!(
                r.route(std::slice::from_ref(t)),
                restored.route(std::slice::from_ref(t)),
                "entity {t:?}"
            );
        }
        // A new entity discovered after restore pins identically too.
        let f = atom(&mut sym, "f");
        let _ = r.route(std::slice::from_ref(&f));
        let _ = restored.route(std::slice::from_ref(&f));
        let _ = r.flush();
        let _ = restored.flush();
        assert_eq!(
            r.route(std::slice::from_ref(&f)),
            restored.route(std::slice::from_ref(&f))
        );
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let mut sym = SymbolTable::new();
        let a = atom(&mut sym, "a");
        let mut r = Router::new(2);
        let _ = r.route(std::slice::from_ref(&a));
        let _ = r.flush();
        let good = r.snapshot();

        let mut bad = good.clone();
        bad.parent = vec![5];
        assert!(Router::restore(&bad).is_err());
        let mut bad = good.clone();
        bad.n_shards = 0;
        assert!(Router::restore(&bad).is_err());
        let mut bad = good;
        bad.shard_of_root = vec![(0, 9)];
        assert!(Router::restore(&bad).is_err());
    }
}
