//! Entity-to-shard routing for a streaming session.
//!
//! Reproduces the partitioning scheme of
//! [`rtec::parallel::recognize_partitioned`] incrementally: entities are
//! grouped into interaction components with a union-find over coupling
//! inputs (multi-entity events, input-fluent instances such as
//! `proximity(v1, v2)`), and components are pinned to shards round-robin
//! in entity-discovery order.
//!
//! Pinning is deferred: items whose component is not pinned yet are
//! buffered, and every buffered component is pinned at the next *flush*
//! (a tick or a drain). When **all couplings arrive before the first
//! tick** — the contract of the batch partitioner, and the natural shape
//! of a stream whose proximity intervals are declared up front — the
//! resulting assignment is identical to the batch one, so the merged
//! output is identical to a single-engine run.
//!
//! A coupling that arrives *after* the components it joins were pinned
//! to different shards cannot be honoured without re-sharding; it is
//! counted in [`Router::late_couplings`] and routed best-effort to the
//! first entity's shard.

use rtec::interval::IntervalList;
use rtec::term::GroundFvp;
use rtec::{Term, Timepoint};
use std::collections::HashMap;

/// Where an input item should go.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Deliver to one shard.
    Shard(usize),
    /// Deliver to every shard (entity-less items; the merge is
    /// idempotent for them).
    Broadcast,
    /// Held back until the next flush pins the item's component.
    Buffered,
}

/// A buffered input item (kept in arrival order).
pub enum PendingItem {
    /// An event at a time-point.
    Event(Term, Timepoint),
    /// An input-fluent interval list.
    Intervals(GroundFvp, IntervalList),
}

/// Incremental entity partitioner. Terms handed in must be interned in
/// the session's master symbol table.
pub struct Router {
    n_shards: usize,
    entity_ids: HashMap<Term, usize>,
    parent: Vec<usize>,
    /// Component root -> pinned shard.
    shard_of_root: HashMap<usize, usize>,
    /// Number of components pinned so far (round-robin counter).
    pinned: usize,
    buffer: Vec<(PendingItem, Option<usize>)>,
    /// Couplings that arrived after their components were pinned apart.
    pub late_couplings: u64,
}

impl Router {
    /// A router distributing components over `n_shards` shards.
    pub fn new(n_shards: usize) -> Router {
        assert!(n_shards >= 1, "at least one shard required");
        Router {
            n_shards,
            entity_ids: HashMap::new(),
            parent: Vec::new(),
            shard_of_root: HashMap::new(),
            pinned: 0,
            buffer: Vec::new(),
            late_couplings: 0,
        }
    }

    fn id_of(&mut self, entity: &Term) -> usize {
        if let Some(&id) = self.entity_ids.get(entity) {
            return id;
        }
        let id = self.parent.len();
        self.entity_ids.insert(entity.clone(), id);
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions two entities' components, propagating an existing pin. A
    /// union of components pinned to different shards is counted as a
    /// late coupling (the pins stay as they are).
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let pa = self.shard_of_root.get(&ra).copied();
        let pb = self.shard_of_root.get(&rb).copied();
        self.parent[ra] = rb;
        match (pa, pb) {
            (Some(sa), Some(sb)) if sa != sb => self.late_couplings += 1,
            (Some(sa), None) => {
                self.shard_of_root.insert(rb, sa);
            }
            _ => {}
        }
    }

    /// Registers an item's entities (interning new ones, unioning
    /// couplings) and decides its route. `entities` comes from a
    /// [`rtec::parallel::Partitioner`].
    pub fn route(&mut self, entities: &[Term]) -> Route {
        if entities.is_empty() {
            return Route::Broadcast;
        }
        let ids: Vec<usize> = entities.iter().map(|e| self.id_of(e)).collect();
        for w in ids.windows(2) {
            self.union(w[0], w[1]);
        }
        let root = self.find(ids[0]);
        match self.shard_of_root.get(&root) {
            Some(&s) => Route::Shard(s),
            None => Route::Buffered,
        }
    }

    /// Stores an item whose route was [`Route::Buffered`].
    pub fn buffer(&mut self, item: PendingItem, first_entity: &Term) {
        let id = self.id_of(first_entity);
        self.buffer.push((item, Some(id)));
    }

    /// Number of items waiting for a flush.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Pins every unpinned component (round-robin in entity-discovery
    /// order, like the batch partitioner) and drains the buffer as
    /// `(shard, item)` pairs in arrival order.
    pub fn flush(&mut self) -> Vec<(usize, PendingItem)> {
        for e in 0..self.parent.len() {
            let root = self.find(e);
            if !self.shard_of_root.contains_key(&root) {
                let shard = self.pinned % self.n_shards;
                self.shard_of_root.insert(root, shard);
                self.pinned += 1;
            }
        }
        let buffer = std::mem::take(&mut self.buffer);
        buffer
            .into_iter()
            .map(|(item, ent)| {
                let shard = match ent {
                    Some(e) => {
                        let root = self.find(e);
                        self.shard_of_root[&root]
                    }
                    None => 0,
                };
                (shard, item)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::SymbolTable;

    fn atom(sym: &mut SymbolTable, name: &str) -> Term {
        Term::Atom(sym.intern(name))
    }

    #[test]
    fn pre_flush_coupling_keeps_entities_together() {
        let mut sym = SymbolTable::new();
        let (a, b, c) = (
            atom(&mut sym, "a"),
            atom(&mut sym, "b"),
            atom(&mut sym, "c"),
        );
        let mut r = Router::new(2);
        assert_eq!(r.route(std::slice::from_ref(&a)), Route::Buffered);
        assert_eq!(r.route(&[a.clone(), b.clone()]), Route::Buffered);
        assert_eq!(r.route(std::slice::from_ref(&c)), Route::Buffered);
        let _ = r.flush();
        let sa = r.route(std::slice::from_ref(&a));
        let sb = r.route(std::slice::from_ref(&b));
        let sc = r.route(std::slice::from_ref(&c));
        assert_eq!(sa, sb, "coupled entities must share a shard");
        assert_ne!(sa, sc, "two components round-robin across two shards");
        assert_eq!(r.late_couplings, 0);
    }

    #[test]
    fn post_pin_cross_shard_coupling_is_counted() {
        let mut sym = SymbolTable::new();
        let (a, b) = (atom(&mut sym, "a"), atom(&mut sym, "b"));
        let mut r = Router::new(2);
        let _ = r.route(std::slice::from_ref(&a));
        let _ = r.route(std::slice::from_ref(&b));
        let _ = r.flush(); // pins a and b to different shards
        let _ = r.route(&[a, b]);
        assert_eq!(r.late_couplings, 1);
    }

    #[test]
    fn entity_less_items_broadcast() {
        let mut r = Router::new(3);
        assert_eq!(r.route(&[]), Route::Broadcast);
    }
}
