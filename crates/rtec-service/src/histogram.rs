//! Power-of-two latency histogram for per-tick (window-evaluation)
//! wall-clock times.

use serde_json::Value;
use std::time::Duration;

/// Number of buckets: bucket `i` counts latencies in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 is `< 1µs`); the last bucket
/// is open-ended.
const BUCKETS: usize = 24;

/// A log2-bucketed histogram of microsecond latencies.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total_us: u64,
    max_us: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket] += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count()).unwrap_or(0)
    }

    /// Largest observed latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The upper bound (µs) of bucket `i`, as a label.
    fn label(i: usize) -> String {
        if i + 1 == BUCKETS {
            format!(">={}us", 1u64 << (BUCKETS - 2))
        } else {
            format!("<{}us", 1u64 << i)
        }
    }

    /// JSON shape: `{count, mean_us, max_us, buckets: [[label, n], ...]}`
    /// with empty buckets omitted.
    pub fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                Value::Array(vec![
                    Value::from(Self::label(i)),
                    Value::from(i64::try_from(n).unwrap_or(i64::MAX)),
                ])
            })
            .collect();
        let mut map = std::collections::BTreeMap::new();
        map.insert(
            "count".to_string(),
            Value::from(i64::try_from(self.count()).unwrap_or(i64::MAX)),
        );
        map.insert(
            "mean_us".to_string(),
            Value::from(i64::try_from(self.mean_us()).unwrap_or(i64::MAX)),
        );
        map.insert(
            "max_us".to_string(),
            Value::from(i64::try_from(self.max_us).unwrap_or(i64::MAX)),
        );
        map.insert("buckets".to_string(), Value::Array(buckets));
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_log_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(0));
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(2));
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_us(), 2000);
        assert!(h.mean_us() >= 500);
        let v = h.to_value();
        assert_eq!(v["count"], 4i64);
        assert!(!v["buckets"].as_array().unwrap().is_empty());
    }
}
