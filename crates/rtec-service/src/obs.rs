//! Service telemetry: process-global metric handles and exposition
//! helpers.
//!
//! Monotonic service counters (events in, ticks, backpressure stalls)
//! live in the [`rtec_obs::global`] registry and are recorded through
//! `Arc` handles resolved once. Per-session *state* (queue depth,
//! high-water marks, buffered items, open-session count) is sampled at
//! scrape time by [`crate::Registry::render_metrics`] instead, so a
//! closed session leaves no stale series behind.
//!
//! Series (all prefixed `rtec_service_`):
//!
//! | name | kind | labels |
//! |------|------|--------|
//! | `rtec_service_sessions_opened_total` | counter | — |
//! | `rtec_service_sessions_closed_total` | counter | — |
//! | `rtec_service_events_ingested_total` | counter | — |
//! | `rtec_service_intervals_ingested_total` | counter | — |
//! | `rtec_service_backpressure_waits_total` | counter | — |
//! | `rtec_service_ticks_total` | counter | — |
//! | `rtec_service_tick_duration_us` | histogram | `eval=interpreter\|plan\|optimized` |
//! | `rtec_recognition_latency_us` | histogram | `stage=admission\|release` |
//! | `rtec_service_query_rows_total` | counter | — |
//! | `rtec_service_faults_injected_total` | counter | — |
//! | `rtec_service_worker_restarts_total` | counter | — |
//! | `rtec_service_frames_rejected_total` | counter | — |
//! | `rtec_service_deadletter_total` | counter | `reason=late\|duplicate\|past_horizon\|malformed\|shed` |
//! | `rtec_service_shed_total` | counter | — |
//! | `rtec_service_journal_appends_total` | counter | — |
//! | `rtec_service_journal_bytes_total` | counter | — |
//! | `rtec_service_journal_rotations_total` | counter | — |
//! | `rtec_service_journal_truncations_total` | counter | — |
//! | `rtec_service_journal_replayed_total` | counter | — |
//! | `rtec_service_restores_total` | counter | — |
//! | `rtec_service_sessions_open` | gauge (sampled) | — |
//! | `rtec_service_queue_depth` | gauge (sampled) | `session`, `shard` |
//! | `rtec_service_queue_high_water` | gauge (sampled) | `session`, `shard` |
//! | `rtec_service_buffered` | gauge (sampled) | `session` |
//! | `rtec_service_watermark_lag` | gauge (sampled) | `session` |
//! | `rtec_service_reorder_buffered` | gauge (sampled) | `session` |
//! | `rtec_profile_rule_self_us` | gauge (sampled) | `session`, `rule`, `kind` |
//! | `rtec_profile_rule_calls` | gauge (sampled) | `session`, `rule`, `kind` |
//! | `rtec_profile_rule_interval_ops` | gauge (sampled) | `session`, `rule`, `kind` |
//!
//! The three `rtec_profile_rule_*` families are **bounded**: top-N rules
//! by self-time per session plus one `rule="other"` rollup (see
//! [`rtec_obs::profile::bounded_samples`]), so scrape cardinality stays
//! capped however many rules a description defines.

use rtec::engine::EvalMode;
use rtec::reorder::DeadLetterReason;
use rtec_obs::{Counter, Histogram};
use serde_json::Value;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

/// Handles to every monotonic service metric series.
pub struct ServiceMetrics {
    /// Sessions opened over the process lifetime.
    pub sessions_opened: Arc<Counter>,
    /// Sessions closed (including shutdown drains).
    pub sessions_closed: Arc<Counter>,
    /// Events accepted by `event`/`batch` commands.
    pub events_ingested: Arc<Counter>,
    /// Input-interval declarations accepted.
    pub intervals_ingested: Arc<Counter>,
    /// Ingest operations that blocked on a full shard queue.
    pub backpressure_waits: Arc<Counter>,
    /// Ticks served across all sessions.
    pub ticks: Arc<Counter>,
    /// Tick wall-clock latency (microseconds), sessions on the AST
    /// interpreter.
    pub tick_duration_interpreter: Arc<Histogram>,
    /// Tick wall-clock latency (microseconds), sessions on the compiled
    /// plan.
    pub tick_duration_plan: Arc<Histogram>,
    /// Tick wall-clock latency (microseconds), sessions on the
    /// analysis-optimized plan.
    pub tick_duration_optimized: Arc<Histogram>,
    /// End-to-end recognition latency from service admission to the
    /// tick that evaluated the event's timepoint.
    pub recognition_latency_admission: Arc<Histogram>,
    /// End-to-end recognition latency from reorder-buffer release (or
    /// direct routing) to the evaluating tick.
    pub recognition_latency_release: Arc<Histogram>,
    /// Recognition rows returned by `query` commands.
    pub query_rows: Arc<Counter>,
    /// Faults injected by the testkit fault harness (0 in production).
    pub faults_injected: Arc<Counter>,
    /// Crashed shard workers respawned from checkpoint.
    pub worker_restarts: Arc<Counter>,
    /// Request frames answered with an error frame (malformed JSON,
    /// bad fields, oversized or non-UTF-8 lines, unknown commands…).
    pub frames_rejected: Arc<Counter>,
    /// Records refused as `late` dead letters.
    pub deadletter_late: Arc<Counter>,
    /// Records refused as `duplicate` dead letters.
    pub deadletter_duplicate: Arc<Counter>,
    /// Records refused as `past_horizon` dead letters.
    pub deadletter_past_horizon: Arc<Counter>,
    /// Records refused as `malformed` dead letters.
    pub deadletter_malformed: Arc<Counter>,
    /// Records refused as `shed` dead letters.
    pub deadletter_shed: Arc<Counter>,
    /// Ingest operations refused by admission control (also counted in
    /// `rtec_service_deadletter_total{reason="shed"}`).
    pub shed: Arc<Counter>,
    /// Write-ahead journal commits (one per acked event or batch).
    pub journal_appends: Arc<Counter>,
    /// Bytes appended to write-ahead journals.
    pub journal_bytes: Arc<Counter>,
    /// Journal segment rotations at checkpoint boundaries.
    pub journal_rotations: Arc<Counter>,
    /// Torn or corrupt journal tails truncated during recovery.
    pub journal_truncations: Arc<Counter>,
    /// Journal records replayed through the ingest path by restores.
    pub journal_replayed: Arc<Counter>,
    /// Sessions restored from checkpoint (+ journal tail) by the
    /// `restore` command.
    pub restores: Arc<Counter>,
}

impl ServiceMetrics {
    fn new() -> ServiceMetrics {
        let r = rtec_obs::global();
        ServiceMetrics {
            sessions_opened: r.counter(
                "rtec_service_sessions_opened_total",
                "Recognition sessions opened.",
                &[],
            ),
            sessions_closed: r.counter(
                "rtec_service_sessions_closed_total",
                "Recognition sessions closed.",
                &[],
            ),
            events_ingested: r.counter(
                "rtec_service_events_ingested_total",
                "Events accepted by event/batch commands.",
                &[],
            ),
            intervals_ingested: r.counter(
                "rtec_service_intervals_ingested_total",
                "Input-interval declarations accepted.",
                &[],
            ),
            backpressure_waits: r.counter(
                "rtec_service_backpressure_waits_total",
                "Ingest operations that blocked on a full shard queue.",
                &[],
            ),
            ticks: r.counter("rtec_service_ticks_total", "Ticks served.", &[]),
            tick_duration_interpreter: r.histogram(
                "rtec_service_tick_duration_us",
                "Tick wall-clock latency (microseconds).",
                &[("eval", "interpreter")],
            ),
            tick_duration_plan: r.histogram(
                "rtec_service_tick_duration_us",
                "Tick wall-clock latency (microseconds).",
                &[("eval", "plan")],
            ),
            tick_duration_optimized: r.histogram(
                "rtec_service_tick_duration_us",
                "Tick wall-clock latency (microseconds).",
                &[("eval", "optimized")],
            ),
            recognition_latency_admission: r.histogram(
                "rtec_recognition_latency_us",
                "Recognition latency from event arrival to the evaluating tick \
                 (microseconds), by pipeline stage.",
                &[("stage", "admission")],
            ),
            recognition_latency_release: r.histogram(
                "rtec_recognition_latency_us",
                "Recognition latency from event arrival to the evaluating tick \
                 (microseconds), by pipeline stage.",
                &[("stage", "release")],
            ),
            query_rows: r.counter(
                "rtec_service_query_rows_total",
                "Recognition rows returned by query commands.",
                &[],
            ),
            faults_injected: r.counter(
                "rtec_service_faults_injected_total",
                "Faults injected by the testkit fault harness.",
                &[],
            ),
            worker_restarts: r.counter(
                "rtec_service_worker_restarts_total",
                "Crashed shard workers respawned from checkpoint.",
                &[],
            ),
            frames_rejected: r.counter(
                "rtec_service_frames_rejected_total",
                "Request frames answered with an error frame.",
                &[],
            ),
            deadletter_late: r.counter(
                "rtec_service_deadletter_total",
                "Records refused to the dead-letter ledger, by reason.",
                &[("reason", "late")],
            ),
            deadletter_duplicate: r.counter(
                "rtec_service_deadletter_total",
                "Records refused to the dead-letter ledger, by reason.",
                &[("reason", "duplicate")],
            ),
            deadletter_past_horizon: r.counter(
                "rtec_service_deadletter_total",
                "Records refused to the dead-letter ledger, by reason.",
                &[("reason", "past_horizon")],
            ),
            deadletter_malformed: r.counter(
                "rtec_service_deadletter_total",
                "Records refused to the dead-letter ledger, by reason.",
                &[("reason", "malformed")],
            ),
            deadletter_shed: r.counter(
                "rtec_service_deadletter_total",
                "Records refused to the dead-letter ledger, by reason.",
                &[("reason", "shed")],
            ),
            shed: r.counter(
                "rtec_service_shed_total",
                "Ingest operations refused by admission control.",
                &[],
            ),
            journal_appends: r.counter(
                "rtec_service_journal_appends_total",
                "Write-ahead journal commits.",
                &[],
            ),
            journal_bytes: r.counter(
                "rtec_service_journal_bytes_total",
                "Bytes appended to write-ahead journals.",
                &[],
            ),
            journal_rotations: r.counter(
                "rtec_service_journal_rotations_total",
                "Journal segment rotations at checkpoint boundaries.",
                &[],
            ),
            journal_truncations: r.counter(
                "rtec_service_journal_truncations_total",
                "Torn or corrupt journal tails truncated during recovery.",
                &[],
            ),
            journal_replayed: r.counter(
                "rtec_service_journal_replayed_total",
                "Journal records replayed through the ingest path by restores.",
                &[],
            ),
            restores: r.counter(
                "rtec_service_restores_total",
                "Sessions restored from checkpoint and journal tail.",
                &[],
            ),
        }
    }

    /// The `rtec_service_tick_duration_us` handle for one evaluator.
    pub fn tick_duration(&self, eval: EvalMode) -> &Arc<Histogram> {
        match eval {
            EvalMode::Interpreter => &self.tick_duration_interpreter,
            EvalMode::Plan => &self.tick_duration_plan,
            EvalMode::Optimized => &self.tick_duration_optimized,
        }
    }

    /// The `rtec_service_deadletter_total` handle for one reason.
    pub fn deadletter(&self, reason: DeadLetterReason) -> &Arc<Counter> {
        match reason {
            DeadLetterReason::Late => &self.deadletter_late,
            DeadLetterReason::Duplicate => &self.deadletter_duplicate,
            DeadLetterReason::PastHorizon => &self.deadletter_past_horizon,
            DeadLetterReason::Malformed => &self.deadletter_malformed,
            DeadLetterReason::Shed => &self.deadletter_shed,
        }
    }
}

/// The process-global service metric handles (created on first use).
pub fn metrics() -> &'static ServiceMetrics {
    static METRICS: OnceLock<ServiceMetrics> = OnceLock::new();
    METRICS.get_or_init(ServiceMetrics::new)
}

/// Renders a histogram into the legacy `stats`-frame JSON shape:
/// `{count, mean_us, max_us, buckets: [[label, n], ...]}` with empty
/// buckets omitted (the shape `LatencyHistogram::to_value` produced
/// before the histogram moved to `rtec-obs`).
pub fn histogram_value(h: &Histogram) -> Value {
    let snapshot = h.snapshot();
    let buckets: Vec<Value> = snapshot
        .nonzero_buckets("us")
        .into_iter()
        .map(|(label, n)| {
            Value::Array(vec![
                Value::from(label),
                Value::from(i64::try_from(n).unwrap_or(i64::MAX)),
            ])
        })
        .collect();
    let mut map = std::collections::BTreeMap::new();
    map.insert(
        "count".to_string(),
        Value::from(i64::try_from(snapshot.count()).unwrap_or(i64::MAX)),
    );
    map.insert(
        "mean_us".to_string(),
        Value::from(i64::try_from(snapshot.mean()).unwrap_or(i64::MAX)),
    );
    map.insert(
        "max_us".to_string(),
        Value::from(i64::try_from(snapshot.max).unwrap_or(i64::MAX)),
    );
    map.insert("buckets".to_string(), Value::Array(buckets));
    Value::Object(map)
}

/// Appends one scrape-time gauge family to `out`: a `# HELP`/`# TYPE`
/// header plus one sample per `(rendered_labels, value)` pair.
pub(crate) fn render_gauge_family(
    out: &mut String,
    name: &str,
    help: &str,
    samples: &[(String, i64)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (labels, value) in samples {
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {value}");
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {value}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_value_keeps_the_legacy_shape() {
        let h = Histogram::new();
        for us in [0u64, 1, 3, 2000] {
            h.observe(us);
        }
        let v = histogram_value(&h);
        assert_eq!(v["count"], 4i64);
        assert_eq!(v["max_us"], 2000i64);
        assert!(v["mean_us"].as_i64().unwrap() >= 500);
        let buckets = v["buckets"].as_array().unwrap();
        assert_eq!(buckets[0][0], "<1us");
        assert_eq!(buckets[0][1], 1i64);
        assert!(buckets.iter().any(|b| b[0] == "<2048us"));
    }

    #[test]
    fn gauge_families_render_valid_exposition() {
        let mut out = String::new();
        render_gauge_family(
            &mut out,
            "rtec_service_sessions_open",
            "Open sessions.",
            &[(String::new(), 2)],
        );
        render_gauge_family(
            &mut out,
            "rtec_service_queue_depth",
            "Queued items.",
            &[
                ("session=\"s\",shard=\"0\"".to_string(), 5),
                ("session=\"s\",shard=\"1\"".to_string(), 0),
            ],
        );
        rtec_obs::expo::validate(&out).expect("valid exposition");
        assert!(out.contains("rtec_service_queue_depth{session=\"s\",shard=\"0\"} 5"));
    }
}
