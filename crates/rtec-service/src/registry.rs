//! The session registry and command dispatcher.
//!
//! A [`Registry`] is shared by every connection (TCP handlers, the stdio
//! loop, in-process tests); each session sits behind its own mutex so
//! concurrent sessions never serialise on one another — only concurrent
//! commands addressing the *same* session do.
//!
//! Dispatch is hardened: a panic inside any handler is caught and
//! answered with an `internal_panic` error frame (the process and every
//! other session keep running), every error frame carries a
//! machine-readable code, and rejected frames are counted globally
//! (`rtec_service_frames_rejected_total`) and per session. When a
//! checkpoint directory is configured, each successful tick persists the
//! session atomically and the `restore` command rebuilds a session from
//! its last on-disk checkpoint.

use crate::journal::{self, FsyncPolicy, Journal, JournalRecord};
use crate::persist::{self, SessionCheckpoint};
use crate::protocol::{
    codes, command, counter, int_field, opt_bool_field, opt_int_field, opt_str_field,
    parse_request, str_field, OkFrame, ServiceError,
};
use crate::session::{Ingest, Session, SessionConfig};
use parking_lot::Mutex;
use rtec::reorder::DeadLetterReason;
use serde_json::Value;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared state of a running service.
#[derive(Default)]
pub struct Registry {
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    shutdown: AtomicBool,
    /// Where to persist session checkpoints; `None` disables persistence.
    checkpoint_dir: Option<PathBuf>,
    /// Default restart budget for new sessions (None = SessionConfig
    /// default).
    max_worker_restarts: Option<usize>,
    /// Where to keep per-session write-ahead journals; `None` disables
    /// journaling.
    journal_dir: Option<PathBuf>,
    /// When journal appends reach the disk.
    journal_fsync: FsyncPolicy,
    /// Open journal handles, one per journaled session. Appends lock
    /// the per-session journal (never the whole map) while the caller
    /// holds that session's lock, so apply order equals journal order.
    journals: Mutex<HashMap<String, Arc<Mutex<Journal>>>>,
    /// Restores currently replaying a journal tail; `/readyz` reports
    /// not-ready until this drains back to zero.
    restores_in_flight: AtomicUsize,
}

impl Registry {
    /// An empty registry (no persistence, default restart budget).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry with persistence and supervision options: sessions
    /// checkpoint to `checkpoint_dir` after every tick, and new sessions
    /// default to `max_worker_restarts` respawns before quarantine.
    pub fn with_options(
        checkpoint_dir: Option<PathBuf>,
        max_worker_restarts: Option<usize>,
    ) -> Registry {
        Registry {
            checkpoint_dir,
            max_worker_restarts,
            ..Registry::default()
        }
    }

    /// Enables the per-session write-ahead journal: every ingest is
    /// appended under `dir` before its acknowledgement, and `restore`
    /// replays the journal tail beyond the newest checkpoint.
    pub fn with_journal(mut self, dir: Option<PathBuf>, fsync: FsyncPolicy) -> Registry {
        self.journal_dir = dir;
        self.journal_fsync = fsync;
        self
    }

    /// Whether `shutdown` has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Readiness for traffic: `Err` (with the reason) while shutting
    /// down, while a restore is still replaying its journal tail, or
    /// while any session sits quarantined. Sessions busy on another
    /// connection are making progress and count as ready.
    pub fn readiness(&self) -> Result<(), String> {
        if self.is_shutting_down() {
            return Err("shutting down".to_string());
        }
        if self.restores_in_flight.load(Ordering::SeqCst) > 0 {
            return Err("recovery replay in progress".to_string());
        }
        for (name, slot) in self.sessions.lock().iter() {
            if let Some(session) = slot.try_lock() {
                if let Some(reason) = session.quarantined() {
                    return Err(format!("session \"{name}\" quarantined: {reason}"));
                }
            }
        }
        Ok(())
    }

    /// The open journal handle for `name`, when journaling is enabled
    /// and the session was opened or restored under it.
    fn journal_of(&self, name: &str) -> Option<Arc<Mutex<Journal>>> {
        self.journal_dir.as_ref()?;
        self.journals.lock().get(name).cloned()
    }

    /// Handles one request line; returns the response line. Sets the
    /// shutdown flag (draining all sessions) on `shutdown`. Never
    /// panics: handler panics become `internal_panic` error frames.
    pub fn dispatch(&self, line: &str) -> String {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| self.try_dispatch(line)));
        let err = match outcome {
            Ok(Ok(response)) => return response,
            Ok(Err(err)) => err,
            Err(_) => {
                rtec_obs::error("service.dispatch_panicked", &[]);
                ServiceError::new(
                    codes::INTERNAL_PANIC,
                    "internal error: request handler panicked",
                )
            }
        };
        crate::obs::metrics().frames_rejected.inc();
        self.note_session_rejection(line);
        err.frame()
    }

    /// Charges a rejected frame to the session it addressed, when that
    /// session exists and is not busy on another connection.
    fn note_session_rejection(&self, line: &str) {
        let Ok(req) = serde_json::from_str::<Value>(line) else {
            return;
        };
        let Some(name) = req.get("session").and_then(Value::as_str) else {
            return;
        };
        let Some(slot) = self.sessions.lock().get(name).cloned() else {
            return;
        };
        if let Some(mut session) = slot.try_lock() {
            session.note_frame_rejected();
        };
    }

    fn try_dispatch(&self, line: &str) -> Result<String, ServiceError> {
        let req = parse_request(line)?;
        match command(&req)? {
            "open" => self.cmd_open(&req),
            "event" => self.cmd_event(&req),
            "batch" => self.cmd_batch(&req),
            "tick" => self.cmd_tick(&req),
            "query" => self.cmd_query(&req),
            "stats" => self.cmd_stats(&req),
            "profile" => self.cmd_profile(&req),
            "deadletter" => self.cmd_deadletter(&req),
            "metrics" => self.cmd_metrics(),
            "restore" => self.cmd_restore(&req),
            "close" => self.cmd_close(&req),
            "shutdown" => self.cmd_shutdown(),
            other => Err(ServiceError::new(
                codes::UNKNOWN_COMMAND,
                format!("unknown command \"{other}\""),
            )),
        }
    }

    fn session(&self, req: &Value) -> Result<Arc<Mutex<Session>>, String> {
        let name = str_field(req, "session")?;
        self.sessions
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| format!("no such session \"{name}\""))
    }

    fn cmd_open(&self, req: &Value) -> Result<String, ServiceError> {
        let name = str_field(req, "session")?;
        let description = str_field(req, "description")?;
        let config = self.parse_open_config(req)?;
        let mut sessions = self.sessions.lock();
        if sessions.contains_key(name) {
            return Err(format!("session \"{name}\" already exists").into());
        }
        // Semantic gate: descriptions that parse but are semantically
        // broken (undefined fluents under declarations, dependency
        // cycles, unsafe variables, …) are rejected up front with the
        // analyzer's findings attached. Syntax and per-clause validation
        // errors are left to `Session::open` so their wire behaviour
        // (plain `bad_request`) is unchanged.
        let lint = rtec_lint::analyze_source(description);
        if lint.has_semantic_errors() {
            let summary: Vec<&str> = lint.semantic_errors().map(|d| d.code).collect();
            return Err(ServiceError::new(
                codes::INVALID_DESCRIPTION,
                format!(
                    "description failed semantic analysis ({} error(s): {})",
                    summary.len(),
                    summary.join(", ")
                ),
            )
            .with_details(lint.to_json()));
        }
        let session = Session::open(name, description, config)?;
        // A fresh session starts a fresh journal whose first record is
        // the open request itself, so a crash before the first
        // checkpoint can still rebuild the session from the journal
        // alone. Journal failure fails the open: the caller asked for
        // durability it would not get.
        if let Some(dir) = &self.journal_dir {
            let result = Journal::create(dir, name, self.journal_fsync).and_then(|mut j| {
                j.append_open(req);
                j.commit()?;
                Ok(j)
            });
            match result {
                Ok(j) => {
                    self.journals
                        .lock()
                        .insert(name.to_string(), Arc::new(Mutex::new(j)));
                }
                Err(err) => {
                    let _ = session.close();
                    return Err(err.into());
                }
            }
        }
        sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
        Ok(OkFrame::new()
            .field("session", name)
            .field("shards", config.shards as i64)
            .render())
    }

    /// Parses the session options of an `open` request — shared by
    /// `open` and by journal-only recovery, which re-parses the
    /// journaled open request verbatim.
    fn parse_open_config(&self, req: &Value) -> Result<SessionConfig, ServiceError> {
        let mut config = SessionConfig {
            window: opt_int_field(req, "window")?,
            slide: opt_int_field(req, "slide")?,
            incremental: opt_bool_field(req, "incremental")?,
            ..SessionConfig::default()
        };
        if config.slide.is_some() && config.window.is_none() {
            return Err("slide requires window".into());
        }
        if config.incremental && config.slide.is_none() {
            return Err("incremental requires slide".into());
        }
        if let Some(max) = self.max_worker_restarts {
            config.max_worker_restarts = max;
        }
        if let Some(shards) = opt_int_field(req, "shards")? {
            config.shards = usize::try_from(shards).map_err(|_| "invalid \"shards\"")?;
        }
        if let Some(queue) = opt_int_field(req, "queue")? {
            let queue = usize::try_from(queue).map_err(|_| "invalid \"queue\"")?;
            if queue == 0 {
                return Err("queue must be >= 1".into());
            }
            config.queue_capacity = queue;
        }
        if let Some(max) = opt_int_field(req, "max_worker_restarts")? {
            config.max_worker_restarts =
                usize::try_from(max).map_err(|_| "invalid \"max_worker_restarts\"")?;
        }
        if let Some(slack) = opt_int_field(req, "reorder_slack")? {
            if slack < 0 {
                return Err("reorder_slack must be >= 0".into());
            }
            config.reorder_slack = Some(slack);
        }
        config.dedup = opt_bool_field(req, "dedup")?;
        if config.dedup && config.reorder_slack.is_none() {
            return Err("dedup requires reorder_slack".into());
        }
        if let Some(budget) = opt_int_field(req, "max_events_per_tick")? {
            let budget = u64::try_from(budget).map_err(|_| "max_events_per_tick must be >= 0")?;
            config.max_events_per_tick = Some(budget);
        }
        if let Some(budget) = opt_int_field(req, "max_buffered_bytes")? {
            let budget = u64::try_from(budget).map_err(|_| "max_buffered_bytes must be >= 0")?;
            config.max_buffered_bytes = Some(budget);
        }
        if let Some(deadline) = opt_int_field(req, "tick_deadline_ms")? {
            let deadline = u64::try_from(deadline).map_err(|_| "tick_deadline_ms must be >= 0")?;
            config.tick_deadline_ms = Some(deadline);
        }
        if let Some(eval) = opt_str_field(req, "eval")? {
            config.eval = rtec::engine::EvalMode::parse(eval).ok_or_else(|| {
                format!("unknown eval mode \"{eval}\" (interpreter|plan|optimized)")
            })?;
        }
        // Profiling defaults on; `"profile": false` opts a session out.
        if let Some(v) = req.get("profile") {
            config.profile = v.as_bool().ok_or("field \"profile\" must be a boolean")?;
        }
        if let Some(threshold) = opt_int_field(req, "slow_tick_ms")? {
            let threshold = u64::try_from(threshold).map_err(|_| "slow_tick_ms must be >= 0")?;
            config.slow_tick_ms = Some(threshold);
        }
        if config.slow_tick_ms.is_some() && !config.profile {
            return Err("slow_tick_ms requires profile".into());
        }
        Ok(config)
    }

    /// Rebuilds a session from durable state: the newest valid
    /// checkpoint, plus — when journaling is on — the journal tail
    /// beyond it, replayed through the ordinary ingest path. A session
    /// that died before its first checkpoint rebuilds from the
    /// journal's open record alone.
    fn cmd_restore(&self, req: &Value) -> Result<String, ServiceError> {
        let name = str_field(req, "session")?;
        if self.checkpoint_dir.is_none() && self.journal_dir.is_none() {
            return Err(ServiceError::new(
                codes::BAD_REQUEST,
                "no checkpoint directory configured (serve --checkpoint-dir)",
            ));
        }
        let mut sessions = self.sessions.lock();
        if sessions.contains_key(name) {
            return Err(format!("session \"{name}\" already exists").into());
        }
        // `/readyz` reports not-ready while the replay runs.
        self.restores_in_flight.fetch_add(1, Ordering::SeqCst);
        struct InFlight<'a>(&'a AtomicUsize);
        impl Drop for InFlight<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _in_flight = InFlight(&self.restores_in_flight);

        let checkpoint = self
            .checkpoint_dir
            .as_ref()
            .map(|dir| persist::load(dir, name));
        let scan = match &self.journal_dir {
            Some(dir) => Some(journal::scan(dir, name)?),
            None => None,
        };
        let (mut session, start_seq) = match checkpoint {
            Some(Ok(cp)) => (cp.restore()?, cp.journal_seq),
            other => {
                // No (valid) checkpoint: fall back to the journal's
                // open record, else surface the checkpoint error.
                let checkpoint_err = match other {
                    Some(Err(e)) => e,
                    _ => format!("no checkpoint for session \"{name}\""),
                };
                let open_req = scan.as_ref().and_then(|s| {
                    s.records.iter().find_map(|r| match r {
                        JournalRecord::Open { request, .. } => Some(request.clone()),
                        _ => None,
                    })
                });
                let Some(open_req) = open_req else {
                    return Err(checkpoint_err.into());
                };
                let description = str_field(&open_req, "description")?.to_string();
                let config = self.parse_open_config(&open_req)?;
                (Session::open(name, &description, config)?, 0)
            }
        };
        // Replay the tail in file order, skipping records the
        // checkpoint already covers and non-increasing sequence numbers
        // (a duplicated tail appends the same frames twice; the second
        // copy is covered by the first). Individual replay refusals are
        // deterministic re-runs of the original refusals — they rebuild
        // the dead-letter ledger rather than signal failure.
        let mut replayed = 0u64;
        let mut last_seq = start_seq;
        if let Some(scan) = &scan {
            for record in &scan.records {
                if record.seq() <= last_seq {
                    continue;
                }
                last_seq = record.seq();
                let result = match record {
                    JournalRecord::Open { .. } => continue,
                    JournalRecord::Event { t, event, .. } => {
                        session.ingest_event(event, *t).map(|_| ())
                    }
                    JournalRecord::Intervals {
                        fluent,
                        value,
                        pairs,
                        ..
                    } => session.ingest_intervals(fluent, value, pairs).map(|_| ()),
                };
                replayed += 1;
                if let Err(err) = result {
                    rtec_obs::warn(
                        "service.journal_replay_error",
                        &[("session", name.into()), ("error", err.as_str().into())],
                    );
                }
            }
            crate::obs::metrics().journal_replayed.add(replayed);
        }
        // Reopen the journal for appends, continuing past the highest
        // sequence physically in the file (not just the highest
        // replayed) so later appends never reuse a number.
        if let Some(dir) = &self.journal_dir {
            let file_max = scan
                .as_ref()
                .and_then(|s| s.records.iter().map(JournalRecord::seq).max())
                .unwrap_or(0);
            let j = Journal::reopen(dir, name, self.journal_fsync, file_max.max(last_seq))?;
            self.journals
                .lock()
                .insert(name.to_string(), Arc::new(Mutex::new(j)));
        }
        crate::obs::metrics().restores.inc();
        let shards = session.config().shards;
        let processed_to = session.stats().processed_to;
        sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
        Ok(OkFrame::new()
            .field("session", name)
            .field("shards", shards as i64)
            .field("processed_to", processed_to)
            .field("replayed", counter(replayed as usize))
            .render())
    }

    fn cmd_event(&self, req: &Value) -> Result<String, ServiceError> {
        let session = self.session(req)?;
        let t = int_field(req, "t")?;
        let event = str_field(req, "event")?;
        let journal = self.journal_of(str_field(req, "session")?);
        let mut guard = session.lock();
        let outcome = guard.ingest_event(event, t);
        // Journal under the session lock (journal order = apply order),
        // commit before the ack: a journal failure surfaces instead of
        // the acknowledgement, so every acked event is recoverable.
        // Errored ingests are journaled too — their dead-letter entries
        // (malformed, shed) must survive a replay.
        if let Some(journal) = &journal {
            let mut j = journal.lock();
            j.append_event(t, event);
            j.commit()?;
        }
        drop(guard);
        match outcome? {
            Ingest::Accepted => Ok(OkFrame::new().render()),
            // Refusal is an ok-frame: the request was well-formed and
            // fully handled — the record went to the dead-letter ledger.
            Ingest::Refused(reason) => Ok(OkFrame::new()
                .field("accepted", false)
                .field("reason", reason.as_str())
                .render()),
        }
    }

    fn cmd_batch(&self, req: &Value) -> Result<String, ServiceError> {
        let session = self.session(req)?;
        let journal = self.journal_of(str_field(req, "session")?);
        let mut session = session.lock();
        let mut n_events = 0i64;
        let mut n_refused = 0i64;
        let mut n_intervals = 0i64;
        // Each applied entry is staged in the journal right away (so an
        // error partway through a batch never leaves applied entries
        // unjournaled), but the whole batch commits with one write
        // before the single batch ack.
        if let Some(events) = req.get("events") {
            let events = events
                .as_array()
                .ok_or("field \"events\" must be an array")?;
            for entry in events {
                let t = int_field(entry, "t")?;
                let event = str_field(entry, "event")?;
                let outcome = session.ingest_event(event, t);
                if let Some(journal) = &journal {
                    journal.lock().append_event(t, event);
                }
                match outcome? {
                    Ingest::Accepted => n_events += 1,
                    Ingest::Refused(_) => n_refused += 1,
                }
            }
        }
        if let Some(intervals) = req.get("intervals") {
            let intervals = intervals
                .as_array()
                .ok_or("field \"intervals\" must be an array")?;
            for entry in intervals {
                let fluent = str_field(entry, "fluent")?;
                let value = str_field(entry, "value")?;
                let pairs = parse_interval_pairs(entry.get("intervals"))?;
                let outcome = session.ingest_intervals(fluent, value, &pairs);
                if let Some(journal) = &journal {
                    journal.lock().append_intervals(fluent, value, &pairs);
                }
                outcome?;
                n_intervals += 1;
            }
        }
        if let Some(journal) = &journal {
            journal.lock().commit()?;
        }
        let mut frame = OkFrame::new()
            .field("events", n_events)
            .field("intervals", n_intervals);
        if n_refused > 0 {
            frame = frame.field("refused", n_refused);
        }
        Ok(frame.render())
    }

    fn cmd_tick(&self, req: &Value) -> Result<String, ServiceError> {
        let session = self.session(req)?;
        let to = int_field(req, "to")?;
        let journal = self.journal_of(str_field(req, "session")?);
        let mut guard = session.lock();
        let report = guard.tick(to)?;
        let stats = report.engine;
        // Capture under the session lock (consistent image), write after
        // releasing it (no I/O while holding the session). The journal
        // sequence read under the same lock tells recovery exactly
        // which journaled records the image already covers.
        let mut image = self
            .checkpoint_dir
            .as_ref()
            .and_then(|_| SessionCheckpoint::capture(&guard));
        if let (Some(image), Some(journal)) = (image.as_mut(), &journal) {
            image.journal_seq = journal.lock().seq();
        }
        let name = guard.name().to_string();
        drop(guard);
        let mut checkpointed = None;
        if let Some(dir) = &self.checkpoint_dir {
            checkpointed = Some(false);
            if let Some(image) = image {
                match persist::save(dir, &image) {
                    Ok(_) => {
                        checkpointed = Some(true);
                        // Rotate the journal only after the checkpoint
                        // rename: a crash in between leaves covered
                        // frames that recovery skips by sequence.
                        if let Some(journal) = &journal {
                            if let Err(err) = journal.lock().rotate(image.journal_seq) {
                                rtec_obs::warn(
                                    "service.journal_rotate_failed",
                                    &[
                                        ("session", name.as_str().into()),
                                        ("error", err.as_str().into()),
                                    ],
                                );
                            }
                        }
                    }
                    Err(err) => rtec_obs::warn(
                        "service.checkpoint_failed",
                        &[
                            ("session", name.as_str().into()),
                            ("error", err.as_str().into()),
                        ],
                    ),
                }
            }
        }
        let mut frame = OkFrame::new()
            .field("processed_to", to)
            .field("windows", counter(stats.windows))
            .field("events_processed", counter(stats.events_processed))
            .field("events_dropped", counter(stats.events_dropped))
            .field("degraded", report.degraded)
            .field("shed", counter(report.shed));
        if let Some(written) = checkpointed {
            frame = frame.field("checkpointed", written);
        }
        Ok(frame.render())
    }

    /// Handles the `deadletter` command: exact per-reason refusal
    /// counts plus (up to `limit`, default 100) recent records, oldest
    /// first. `"clear": true` drops the retained records afterwards
    /// (counts are monotonic and survive).
    fn cmd_deadletter(&self, req: &Value) -> Result<String, ServiceError> {
        let session = self.session(req)?;
        let limit = match opt_int_field(req, "limit")? {
            None => 100usize,
            Some(n) => usize::try_from(n).map_err(|_| "limit must be >= 0")?,
        };
        let clear = opt_bool_field(req, "clear")?;
        let mut session = session.lock();
        let ledger = session.dead_letters();
        let mut counts = std::collections::BTreeMap::new();
        for reason in DeadLetterReason::ALL {
            counts.insert(reason.as_str().to_string(), counter(ledger.count(reason)));
        }
        let records: Vec<Value> = ledger
            .recent(limit)
            .into_iter()
            .map(|dl| {
                let mut map = std::collections::BTreeMap::new();
                map.insert("reason".to_string(), Value::from(dl.reason.as_str()));
                map.insert(
                    "t".to_string(),
                    match dl.t {
                        Some(t) => Value::from(t),
                        None => Value::Null,
                    },
                );
                map.insert("detail".to_string(), Value::from(dl.detail.as_str()));
                Value::Object(map)
            })
            .collect();
        let frame = OkFrame::new()
            .field("counts", Value::Object(counts.into_iter().collect()))
            .field("total", counter(ledger.total()))
            .field("records", Value::Array(records))
            .field("records_dropped", counter(ledger.records_dropped()));
        if clear {
            session.clear_dead_letter_records();
        }
        Ok(frame.render())
    }

    fn cmd_query(&self, req: &Value) -> Result<String, ServiceError> {
        let session = self.session(req)?;
        let (out, symbols) = session.lock().query()?;
        let mut rows: Vec<(String, String)> = out
            .iter()
            .map(|(fvp, list)| (fvp.display(&symbols), list.to_string()))
            .collect();
        rows.sort();
        let rows: Vec<Value> = rows
            .into_iter()
            .map(|(fvp, intervals)| {
                let mut map = std::collections::BTreeMap::new();
                map.insert("fvp".to_string(), Value::from(fvp));
                map.insert("intervals".to_string(), Value::from(intervals));
                Value::Object(map)
            })
            .collect();
        let warnings: Vec<Value> = out
            .warnings
            .iter()
            .map(|w| Value::from(w.as_str()))
            .collect();
        crate::obs::metrics().query_rows.add(rows.len() as u64);
        Ok(OkFrame::new()
            .field("rows", Value::Array(rows))
            .field("warnings", Value::Array(warnings))
            .render())
    }

    fn cmd_stats(&self, req: &Value) -> Result<String, ServiceError> {
        let session = self.session(req)?;
        let session = session.lock();
        let stats = session.stats();
        let queue_high_water: Vec<Value> = session
            .queue_high_water()
            .iter()
            .map(|&hw| counter(hw))
            .collect();
        let ledger = session.dead_letters();
        let mut deadletter = std::collections::BTreeMap::new();
        for reason in DeadLetterReason::ALL {
            deadletter.insert(reason.as_str().to_string(), counter(ledger.count(reason)));
        }
        Ok(OkFrame::new()
            .field("evaluator", session.evaluator())
            .field("events_ingested", counter(stats.events_ingested))
            .field("intervals_ingested", counter(stats.intervals_ingested))
            .field("backpressure_waits", counter(stats.backpressure_waits))
            .field("late_couplings", counter(session.late_couplings()))
            .field("buffered", session.buffered() as i64)
            .field("queue_depth", session.queue_depth() as i64)
            .field("queue_high_water", Value::Array(queue_high_water))
            .field("ticks", counter(stats.ticks))
            .field("processed_to", stats.processed_to)
            .field("windows", counter(stats.engine.windows))
            .field("events_processed", counter(stats.engine.events_processed))
            .field("events_dropped", counter(stats.engine.events_dropped))
            .field("forget_drops", counter(stats.engine.events_dropped))
            .field("worker_restarts", counter(stats.worker_restarts))
            .field("frames_rejected", counter(stats.frames_rejected))
            .field("shed", counter(stats.shed))
            .field(
                "deadletter",
                Value::Object(deadletter.into_iter().collect()),
            )
            .field(
                "watermark",
                match session.watermark() {
                    Some(w) => Value::from(w),
                    None => Value::Null,
                },
            )
            .field(
                "watermark_lag",
                match session.watermark_lag() {
                    Some(lag) => Value::from(lag),
                    None => Value::Null,
                },
            )
            .field("reorder_buffered", session.reorder_buffered() as i64)
            .field(
                "quarantined",
                match session.quarantined() {
                    Some(reason) => Value::from(reason),
                    None => Value::Null,
                },
            )
            .field(
                "tick_latency",
                crate::obs::histogram_value(&stats.tick_latency),
            )
            .render())
    }

    /// Handles the `profile` command: the session's merged per-rule
    /// evaluation profile as of its last tick, sorted by self-time
    /// descending. `"top": N` truncates the rule list; `"dumps": true`
    /// attaches the retained flight-recorder dumps (parsed JSON).
    fn cmd_profile(&self, req: &Value) -> Result<String, ServiceError> {
        let session = self.session(req)?;
        let session = session.lock();
        let mut frame = OkFrame::new().field("evaluator", session.evaluator());
        let Some(profile) = session.profile() else {
            return Ok(frame.field("enabled", false).render());
        };
        let top = match opt_int_field(req, "top")? {
            None => usize::MAX,
            Some(n) => usize::try_from(n).map_err(|_| "top must be >= 0")?,
        };
        let total = profile.total();
        let rules: Vec<Value> = profile
            .sorted()
            .into_iter()
            .take(top)
            .map(|e| {
                let mut map = std::collections::BTreeMap::new();
                map.insert("rule".to_string(), Value::from(e.name));
                map.insert("kind".to_string(), Value::from(e.kind.as_str()));
                map.insert("calls".to_string(), counter(e.cost.calls));
                map.insert("self_us".to_string(), counter(e.cost.self_us()));
                map.insert("interval_ops".to_string(), counter(e.cost.interval_ops));
                Value::Object(map.into_iter().collect())
            })
            .collect();
        frame = frame
            .field("enabled", true)
            .field("windows", counter(profile.windows))
            .field("rules", Value::Array(rules))
            .field("total_self_us", counter(total.self_us()))
            .field("total_interval_ops", counter(total.interval_ops));
        if opt_bool_field(req, "dumps")? {
            let dumps: Vec<Value> = session
                .flight_dumps()
                .iter()
                .map(|d| serde_json::from_str(d).unwrap_or_else(|_| Value::from(d.as_str())))
                .collect();
            frame = frame.field("flight_dumps", Value::Array(dumps));
        }
        Ok(frame.render())
    }

    /// Handles the `metrics` command: the full Prometheus exposition as
    /// a JSON-carried string.
    fn cmd_metrics(&self) -> Result<String, ServiceError> {
        Ok(OkFrame::new()
            .field("content_type", rtec_obs::expo::CONTENT_TYPE)
            .field("body", self.render_metrics())
            .render())
    }

    /// Renders the process-global metric registry plus scrape-time
    /// per-session gauges (open-session count, per-shard queue depth and
    /// high-water marks, buffered items) as Prometheus text. Sessions
    /// busy on another connection are skipped for that scrape rather
    /// than blocked on.
    pub fn render_metrics(&self) -> String {
        let mut text = rtec_obs::global().render_prometheus();
        let sessions_open;
        let mut depth: Vec<(String, i64)> = Vec::new();
        let mut high_water: Vec<(String, i64)> = Vec::new();
        let mut buffered: Vec<(String, i64)> = Vec::new();
        let mut watermark_lag: Vec<(String, i64)> = Vec::new();
        let mut reorder_buffered: Vec<(String, i64)> = Vec::new();
        let mut profiles: Vec<(String, rtec_obs::profile::ProfileAggregate)> = Vec::new();
        {
            let sessions = self.sessions.lock();
            sessions_open = sessions.len() as i64;
            for (name, slot) in sessions.iter() {
                let Some(session) = slot.try_lock() else {
                    continue;
                };
                for (shard, d) in session.queue_depths().into_iter().enumerate() {
                    let labels = rtec_obs::registry::render_labels(&[
                        ("session", name),
                        ("shard", &shard.to_string()),
                    ]);
                    depth.push((labels, d as i64));
                }
                for (shard, &hw) in session.queue_high_water().iter().enumerate() {
                    let labels = rtec_obs::registry::render_labels(&[
                        ("session", name),
                        ("shard", &shard.to_string()),
                    ]);
                    high_water.push((labels, i64::try_from(hw).unwrap_or(i64::MAX)));
                }
                let labels = rtec_obs::registry::render_labels(&[("session", name)]);
                buffered.push((labels.clone(), session.buffered() as i64));
                if let Some(lag) = session.watermark_lag() {
                    watermark_lag.push((labels.clone(), lag));
                    reorder_buffered.push((labels, session.reorder_buffered() as i64));
                }
                if let Some(profile) = session.profile() {
                    if !profile.is_empty() {
                        profiles.push((name.clone(), profile.clone()));
                    }
                }
            }
        }
        crate::obs::render_gauge_family(
            &mut text,
            "rtec_service_sessions_open",
            "Currently open recognition sessions.",
            &[(String::new(), sessions_open)],
        );
        crate::obs::render_gauge_family(
            &mut text,
            "rtec_service_queue_depth",
            "Items queued per shard (sampled at scrape).",
            &depth,
        );
        crate::obs::render_gauge_family(
            &mut text,
            "rtec_service_queue_high_water",
            "Per-shard queue-depth high-water mark since session open.",
            &high_water,
        );
        crate::obs::render_gauge_family(
            &mut text,
            "rtec_service_buffered",
            "Items buffered in the router awaiting the next tick.",
            &buffered,
        );
        crate::obs::render_gauge_family(
            &mut text,
            "rtec_service_watermark_lag",
            "Timepoints between the newest seen event and the reorder watermark.",
            &watermark_lag,
        );
        crate::obs::render_gauge_family(
            &mut text,
            "rtec_service_reorder_buffered",
            "Events held in the reorder buffer awaiting the watermark.",
            &reorder_buffered,
        );
        let profile_refs: Vec<(&str, &rtec_obs::profile::ProfileAggregate)> = profiles
            .iter()
            .map(|(name, agg)| (name.as_str(), agg))
            .collect();
        rtec_obs::profile::render_prometheus(
            &mut text,
            &profile_refs,
            rtec_obs::profile::DEFAULT_TOP_N,
        );
        text
    }

    fn cmd_close(&self, req: &Value) -> Result<String, ServiceError> {
        let name = str_field(req, "session")?;
        // `keep_durable` releases the session without deleting its
        // checkpoint and journal — the migration half of a handoff: a
        // `restore` elsewhere rebuilds the exact state from them.
        let keep_durable = opt_bool_field(req, "keep_durable")?;
        let session = self
            .sessions
            .lock()
            .remove(name)
            .ok_or_else(|| format!("no such session \"{name}\""))?;
        let session = Arc::into_inner(session)
            .ok_or("session is busy on another connection; retry close")?
            .into_inner();
        if let Some(journal) = self.journals.lock().remove(name) {
            // Flush any staged frames so a handoff target sees every
            // applied record; moot when the journal is deleted below.
            if keep_durable {
                if let Err(err) = journal.lock().commit() {
                    rtec_obs::warn(
                        "service.journal_flush_failed",
                        &[("session", name.into()), ("error", err.as_str().into())],
                    );
                }
            }
        }
        let stats = session.close()?;
        if !keep_durable {
            if let Some(dir) = &self.checkpoint_dir {
                persist::remove(dir, name);
            }
            if let Some(dir) = &self.journal_dir {
                journal::remove(dir, name);
            }
        }
        Ok(OkFrame::new()
            .field("session", name)
            .field("events_ingested", counter(stats.events_ingested))
            .field("windows", counter(stats.engine.windows))
            .field("events_processed", counter(stats.engine.events_processed))
            .render())
    }

    fn cmd_shutdown(&self) -> Result<String, ServiceError> {
        // Journal handles are dropped but the files stay: shutdown is a
        // graceful drain, and the durable state remains restorable.
        self.journals.lock().clear();
        let sessions: Vec<(String, Arc<Mutex<Session>>)> = self.sessions.lock().drain().collect();
        let closed = sessions.len() as i64;
        for (name, session) in sessions {
            let Some(session) = Arc::into_inner(session) else {
                return Err(format!("session \"{name}\" is busy; retry shutdown").into());
            };
            session.into_inner().close()?;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        rtec_obs::info("service.shutdown", &[("closed_sessions", closed.into())]);
        Ok(OkFrame::new().field("closed_sessions", closed).render())
    }
}

/// Parses `[[start, end], ...]` interval pairs.
fn parse_interval_pairs(value: Option<&Value>) -> Result<Vec<(i64, i64)>, String> {
    let list = value
        .and_then(Value::as_array)
        .ok_or("field \"intervals\" must be an array of [start, end] pairs")?;
    list.iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("each interval must be a [start, end] pair")?;
            let start = pair[0].as_i64().ok_or("interval bounds must be integers")?;
            let end = pair[1].as_i64().ok_or("interval bounds must be integers")?;
            Ok((start, end))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                        terminatedAt(on(X)=true, T) :- happensAt(down(X), T).";

    fn open_line(session: &str) -> String {
        let mut map = std::collections::BTreeMap::new();
        map.insert("cmd".to_string(), Value::from("open"));
        map.insert("session".to_string(), Value::from(session));
        map.insert("description".to_string(), Value::from(DESC));
        map.insert("shards".to_string(), Value::from(2i64));
        serde_json::to_string(&Value::Object(map)).unwrap()
    }

    #[test]
    fn full_session_lifecycle_over_dispatch() {
        let reg = Registry::new();
        let v: Value = serde_json::from_str(&reg.dispatch(&open_line("s1"))).unwrap();
        assert_eq!(v["ok"], true, "{v:?}");

        let v: Value = serde_json::from_str(
            &reg.dispatch(r#"{"cmd":"event","session":"s1","t":5,"event":"up(a)"}"#),
        )
        .unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        let v: Value = serde_json::from_str(&reg.dispatch(
            r#"{"cmd":"batch","session":"s1","events":[{"t":9,"event":"down(a)"},{"t":3,"event":"up(b)"}]}"#,
        ))
        .unwrap();
        assert_eq!(v["events"], 2i64, "{v:?}");

        let v: Value =
            serde_json::from_str(&reg.dispatch(r#"{"cmd":"tick","session":"s1","to":20}"#))
                .unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        assert_eq!(v["events_processed"], 3i64);

        let v: Value =
            serde_json::from_str(&reg.dispatch(r#"{"cmd":"query","session":"s1"}"#)).unwrap();
        let rows = v["rows"].as_array().unwrap();
        assert_eq!(rows[0]["fvp"], "on(a)=true");
        assert_eq!(rows[0]["intervals"], "[[6, 10)]");
        assert_eq!(rows[1]["fvp"], "on(b)=true");
        assert_eq!(rows[1]["intervals"], "[[4, 21)]");

        let v: Value =
            serde_json::from_str(&reg.dispatch(r#"{"cmd":"stats","session":"s1"}"#)).unwrap();
        assert_eq!(v["events_ingested"], 3i64);
        assert!(v["windows"].as_i64().unwrap() >= 1);
        assert!(v["tick_latency"]["count"].as_i64().unwrap() >= 1);

        let v: Value =
            serde_json::from_str(&reg.dispatch(r#"{"cmd":"close","session":"s1"}"#)).unwrap();
        assert_eq!(v["ok"], true, "{v:?}");
        assert_eq!(reg.session_count(), 0);
    }

    #[test]
    fn errors_are_frames_not_panics() {
        let reg = Registry::new();
        for line in [
            "not json",
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"event","session":"nope","t":1,"event":"up(a)"}"#,
            r#"{"cmd":"tick","session":"nope","to":5}"#,
        ] {
            let v: Value = serde_json::from_str(&reg.dispatch(line)).unwrap();
            assert_eq!(v["ok"], false, "{line}");
            assert!(v["error"].as_str().is_some());
            assert!(v["code"].as_str().is_some(), "{line}");
        }
        // Codes are specific, not a catch-all.
        let v: Value = serde_json::from_str(&reg.dispatch("not json")).unwrap();
        assert_eq!(v["code"], "bad_frame");
        let v: Value = serde_json::from_str(&reg.dispatch(r#"{"cmd":"frobnicate"}"#)).unwrap();
        assert_eq!(v["code"], "unknown_command");
        let v: Value =
            serde_json::from_str(&reg.dispatch(r#"{"cmd":"tick","session":"nope","to":5}"#))
                .unwrap();
        assert_eq!(v["code"], "no_such_session");
        // Double open is an error.
        let _ = reg.dispatch(&open_line("dup"));
        let v: Value = serde_json::from_str(&reg.dispatch(&open_line("dup"))).unwrap();
        assert_eq!(v["ok"], false);
    }

    #[test]
    fn shutdown_closes_everything() {
        let reg = Registry::new();
        let _ = reg.dispatch(&open_line("a"));
        let _ = reg.dispatch(&open_line("b"));
        let v: Value = serde_json::from_str(&reg.dispatch(r#"{"cmd":"shutdown"}"#)).unwrap();
        assert_eq!(v["closed_sessions"], 2i64);
        assert!(reg.is_shutting_down());
    }
}
