//! Shard workers: one OS thread per shard, owning one [`Engine`] for the
//! lifetime of the session.
//!
//! Input items flow through a **bounded** crossbeam channel: when a
//! shard's queue is full the session's ingest path blocks (after
//! counting the stall — see `SessionStats::backpressure_waits`), which
//! is the service's backpressure mechanism. Control messages (`RunTo`,
//! `Snapshot`, `Checkpoint`, `Drain`) travel on the same channel, so a
//! tick naturally observes every event enqueued before it.
//!
//! Event terms are already interned in the session's master symbol
//! table. Worker engines keep their own (description-seeded) tables for
//! internal use, but never re-intern input terms — master symbol ids are
//! append-only and shared, which is what makes per-shard outputs
//! mergeable and renderable against the master table (the same scheme as
//! [`rtec::parallel::recognize_partitioned`]).
//!
//! **Crash containment.** A panic while processing a message (a bug, or
//! an injected fault from [`crate::fault`]) is caught inside the worker
//! thread: the worker logs it, drops its receiver, and exits. The
//! session observes the disconnected channel on its next send/receive
//! and respawns the shard with [`ShardWorker::respawn`], restoring the
//! engine from the session's last [`EngineCheckpoint`] — the panic never
//! crosses into the server process.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use rtec::checkpoint::EngineCheckpoint;
use rtec::description::CompiledDescription;
use rtec::engine::{Engine, EngineConfig, EngineStats, EvalMode, RecognitionOutput};
use rtec::interval::IntervalList;
use rtec::term::GroundFvp;
use rtec::{Term, Timepoint};
use rtec_obs::profile::ProfileAggregate;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Message to a shard worker.
pub enum WorkerMsg {
    /// An input event (master-table term) at a time-point.
    Event(Term, Timepoint),
    /// Input-fluent intervals (master-table terms).
    Intervals(GroundFvp, IntervalList),
    /// Evaluate windows up to the horizon; reply with engine stats.
    RunTo(Timepoint, Sender<EngineStats>),
    /// Reply with a copy of the accumulated output and current stats.
    Snapshot(Sender<(RecognitionOutput, EngineStats)>),
    /// Reply with a checkpoint of the engine's full retained state.
    Checkpoint(Sender<Box<EngineCheckpoint>>),
    /// Reply with the engine's lifetime per-rule profile (empty when
    /// the worker was spawned without profiling).
    Profile(Sender<Box<ProfileAggregate>>),
    /// Process everything queued so far, reply with final stats, stop.
    Drain(Sender<EngineStats>),
}

/// Evaluator and profiling choices a worker's engine is spawned with.
#[derive(Clone, Copy, Debug)]
pub struct WorkerOptions {
    /// Window-evaluation strategy (AST interpreter or compiled plan).
    pub eval: EvalMode,
    /// Whether the engine attributes per-rule evaluation costs.
    pub profile: bool,
}

/// Handle to a shard worker thread.
pub struct ShardWorker {
    sender: Sender<WorkerMsg>,
    handle: Option<JoinHandle<()>>,
}

impl ShardWorker {
    /// Spawns a fresh worker for `shard` over `desc` with a queue of
    /// `capacity` items.
    pub fn spawn(
        desc: Arc<CompiledDescription>,
        config: EngineConfig,
        options: WorkerOptions,
        capacity: usize,
        shard: usize,
    ) -> ShardWorker {
        ShardWorker::spawn_inner(desc, config, options, capacity, shard, None)
    }

    /// Spawns a replacement worker whose engine resumes from
    /// `checkpoint` (taken from the crashed predecessor at the last tick
    /// boundary). If the checkpoint does not match `desc`, the worker
    /// logs the error and exits immediately; the supervisor observes the
    /// disconnected channel.
    pub fn respawn(
        desc: Arc<CompiledDescription>,
        config: EngineConfig,
        options: WorkerOptions,
        capacity: usize,
        shard: usize,
        checkpoint: EngineCheckpoint,
    ) -> ShardWorker {
        ShardWorker::spawn_inner(desc, config, options, capacity, shard, Some(checkpoint))
    }

    fn spawn_inner(
        desc: Arc<CompiledDescription>,
        config: EngineConfig,
        options: WorkerOptions,
        capacity: usize,
        shard: usize,
        checkpoint: Option<EngineCheckpoint>,
    ) -> ShardWorker {
        let (sender, receiver) = bounded(capacity.max(1));
        let handle = std::thread::spawn(move || {
            let mut engine = match checkpoint {
                None => Engine::new(&desc, config),
                Some(cp) => match Engine::restore(&desc, config, &cp) {
                    Ok(engine) => engine,
                    Err(err) => {
                        rtec_obs::error(
                            "worker.restore_failed",
                            &[("shard", shard.into()), ("error", err.as_str().into())],
                        );
                        return;
                    }
                },
            };
            // Engine state is evaluator-agnostic, so the mode can be
            // applied uniformly to fresh and restored engines alike —
            // including restores from a checkpoint written under the
            // other mode.
            match options.eval {
                EvalMode::Interpreter => {}
                EvalMode::Plan => {
                    engine.set_evaluator(Box::new(rtec_plan::Plan::compile(&desc)));
                }
                EvalMode::Optimized => {
                    engine.set_evaluator(Box::new(rtec_analysis::optimized_plan(&desc)));
                }
            }
            // Profiler state is process-local and never checkpointed: a
            // respawned worker restarts attribution from zero while the
            // session keeps the lifetime totals it already merged.
            if options.profile {
                engine.enable_profiler();
            }
            run_worker(&mut engine, shard, &receiver);
        });
        ShardWorker {
            sender,
            handle: Some(handle),
        }
    }

    /// Enqueues a message; returns whether the send had to block on a
    /// full queue (the backpressure signal the session counts). If the
    /// worker is dead the message is handed back so the supervisor can
    /// respawn the shard and retry the same message.
    pub fn send(&self, msg: WorkerMsg) -> Result<bool, WorkerMsg> {
        match self.sender.try_send(msg) {
            Ok(()) => Ok(false),
            Err(TrySendError::Full(msg)) => self.sender.send(msg).map(|()| true).map_err(|e| e.0),
            Err(TrySendError::Disconnected(msg)) => Err(msg),
        }
    }

    /// Current queue depth (approximate).
    pub fn queue_len(&self) -> usize {
        self.sender.len()
    }

    /// Whether the worker thread is still attached to its channel.
    pub fn is_alive(&self) -> bool {
        // A dead worker dropped its receiver; probing with try_send
        // would consume queue slots, so check the handle instead.
        self.handle.as_ref().is_some_and(|h| !h.is_finished())
    }

    /// Receives a reply from this worker. A plain `recv` is not safe
    /// here: if the worker died with the reply-carrying message still
    /// queued, the supervisor's live queue `Sender` keeps that message
    /// (and the reply sender inside it) alive, so the reply channel
    /// never disconnects. Poll with a timeout and give up once the
    /// thread has exited — after one final non-blocking check for a
    /// reply sent just before death.
    pub fn recv_reply<T>(&self, rx: &Receiver<T>) -> Result<T, String> {
        loop {
            match rx.recv_timeout(std::time::Duration::from_millis(10)) {
                Ok(v) => return Ok(v),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err("shard worker exited".to_string());
                }
                Err(RecvTimeoutError::Timeout) => {
                    if !self.is_alive() {
                        return rx.try_recv().map_err(|_| "shard worker exited".to_string());
                    }
                }
            }
        }
    }

    /// Sends `Drain` and joins the thread, returning its final stats.
    pub fn drain(mut self) -> Result<EngineStats, String> {
        let (tx, rx) = bounded(1);
        self.send(WorkerMsg::Drain(tx))
            .map_err(|_| "shard worker exited".to_string())?;
        let stats = self.recv_reply(&rx)?;
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .map_err(|_| "shard worker panicked".to_string())?;
        }
        Ok(stats)
    }
}

fn run_worker(engine: &mut Engine, shard: usize, receiver: &Receiver<WorkerMsg>) {
    while let Ok(msg) = receiver.recv() {
        // Contain panics (bugs or injected faults) to this message: on
        // unwind the worker logs, drops its receiver, and exits; the
        // session sees the disconnect and respawns from checkpoint.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            crate::fault::on_worker_step(shard);
            handle_msg(engine, msg)
        }));
        match outcome {
            Ok(true) => {}
            Ok(false) => return,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                rtec_obs::error(
                    "worker.panicked",
                    &[("shard", shard.into()), ("panic", msg.into())],
                );
                return;
            }
        }
    }
}

/// Handles one message; returns whether the worker should keep running.
fn handle_msg(engine: &mut Engine, msg: WorkerMsg) -> bool {
    match msg {
        WorkerMsg::Event(ev, t) => engine.add_event(ev, t),
        WorkerMsg::Intervals(fvp, list) => engine.add_input_intervals(fvp, list),
        WorkerMsg::RunTo(horizon, reply) => {
            engine.run_to(horizon);
            let _ = reply.send(engine.stats());
        }
        WorkerMsg::Snapshot(reply) => {
            let _ = reply.send((engine.output().clone(), engine.stats()));
        }
        WorkerMsg::Checkpoint(reply) => {
            let _ = reply.send(Box::new(engine.checkpoint()));
        }
        WorkerMsg::Profile(reply) => {
            let _ = reply.send(Box::new(engine.profile().cloned().unwrap_or_default()));
        }
        WorkerMsg::Drain(reply) => {
            // Graceful drain: everything enqueued before the Drain
            // has already been handled (the channel is FIFO); no
            // further evaluation is forced — unticked events are
            // reported, not silently evaluated.
            let _ = reply.send(engine.stats());
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::description::EventDescription;

    fn compiled() -> (Arc<CompiledDescription>, rtec::SymbolTable) {
        let desc = EventDescription::parse(
            "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
             terminatedAt(on(X)=true, T) :- happensAt(down(X), T).",
        )
        .unwrap();
        let master = desc.symbols.clone();
        (Arc::new(desc.compile().unwrap()), master)
    }

    fn interp(profile: bool) -> WorkerOptions {
        WorkerOptions {
            eval: EvalMode::Interpreter,
            profile,
        }
    }

    #[test]
    fn worker_processes_and_drains() {
        let (compiled, mut master) = compiled();
        let w = ShardWorker::spawn(
            Arc::clone(&compiled),
            EngineConfig::default(),
            interp(true),
            4,
            0,
        );

        let up = rtec::parser::parse_term("up(a)", &mut master).unwrap();
        let down = rtec::parser::parse_term("down(a)", &mut master).unwrap();
        w.send(WorkerMsg::Event(up, 5)).ok().unwrap();
        w.send(WorkerMsg::Event(down, 9)).ok().unwrap();
        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::RunTo(20, tx)).ok().unwrap();
        let stats = rx.recv().unwrap();
        assert_eq!(stats.events_processed, 2);

        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::Snapshot(tx)).ok().unwrap();
        let (out, _) = rx.recv().unwrap();
        assert_eq!(out.len(), 1);
        let rendered: Vec<String> = out
            .iter()
            .map(|(f, l)| format!("{}={}", f.display(&master), l))
            .collect();
        assert_eq!(rendered, vec!["on(a)=true=[[6, 10)]".to_string()]);

        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::Profile(tx)).ok().unwrap();
        let profile = rx.recv().unwrap();
        assert_eq!(profile.windows, 1);
        assert_eq!(profile.total().calls, 1, "one simple stratum evaluated");

        let final_stats = w.drain().unwrap();
        assert_eq!(final_stats.windows, 1);
    }

    #[test]
    fn unprofiled_worker_replies_with_an_empty_profile() {
        let (compiled, mut master) = compiled();
        let w = ShardWorker::spawn(
            Arc::clone(&compiled),
            EngineConfig::default(),
            interp(false),
            4,
            0,
        );
        let up = rtec::parser::parse_term("up(a)", &mut master).unwrap();
        w.send(WorkerMsg::Event(up, 5)).ok().unwrap();
        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::RunTo(20, tx)).ok().unwrap();
        rx.recv().unwrap();
        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::Profile(tx)).ok().unwrap();
        let profile = rx.recv().unwrap();
        assert!(profile.is_empty());
        assert_eq!(profile.windows, 0);
        w.drain().unwrap();
    }

    #[test]
    fn respawn_resumes_from_a_checkpoint() {
        let (compiled, mut master) = compiled();
        let config = EngineConfig::windowed(10);
        let w = ShardWorker::spawn(Arc::clone(&compiled), config, interp(false), 4, 0);

        let up = rtec::parser::parse_term("up(a)", &mut master).unwrap();
        let down = rtec::parser::parse_term("down(a)", &mut master).unwrap();
        w.send(WorkerMsg::Event(up, 5)).ok().unwrap();
        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::RunTo(10, tx)).ok().unwrap();
        rx.recv().unwrap();
        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::Checkpoint(tx)).ok().unwrap();
        let cp = rx.recv().unwrap();
        drop(w); // simulate the first worker dying

        let w2 = ShardWorker::respawn(Arc::clone(&compiled), config, interp(false), 4, 0, *cp);
        w2.send(WorkerMsg::Event(down, 14)).ok().unwrap();
        let (tx, rx) = bounded(1);
        w2.send(WorkerMsg::RunTo(20, tx)).ok().unwrap();
        rx.recv().unwrap();
        let (tx, rx) = bounded(1);
        w2.send(WorkerMsg::Snapshot(tx)).ok().unwrap();
        let (out, _) = rx.recv().unwrap();
        let rendered: Vec<String> = out
            .iter()
            .map(|(f, l)| format!("{}={}", f.display(&master), l))
            .collect();
        assert_eq!(rendered, vec!["on(a)=true=[[6, 15)]".to_string()]);
        w2.drain().unwrap();
    }

    #[test]
    fn dead_worker_hands_the_message_back() {
        let (compiled, mut master) = compiled();
        let mut w = ShardWorker::spawn(compiled, EngineConfig::default(), interp(false), 4, 0);
        // Kill the worker via Drain and join so the receiver is dropped.
        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::Drain(tx)).ok().unwrap();
        rx.recv().unwrap();
        w.handle.take().unwrap().join().unwrap();
        assert!(!w.is_alive());

        let up = rtec::parser::parse_term("up(a)", &mut master).unwrap();
        match w.send(WorkerMsg::Event(up, 1)) {
            Err(WorkerMsg::Event(_, 1)) => {}
            _ => panic!("expected the event handed back"),
        }
    }
}
