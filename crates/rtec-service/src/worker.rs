//! Shard workers: one OS thread per shard, owning one [`Engine`] for the
//! lifetime of the session.
//!
//! Input items flow through a **bounded** crossbeam channel: when a
//! shard's queue is full the session's ingest path blocks (after
//! counting the stall — see `SessionStats::backpressure_waits`), which
//! is the service's backpressure mechanism. Control messages (`RunTo`,
//! `Snapshot`, `Drain`) travel on the same channel, so a tick naturally
//! observes every event enqueued before it.
//!
//! Event terms are already interned in the session's master symbol
//! table. Worker engines keep their own (description-seeded) tables for
//! internal use, but never re-intern input terms — master symbol ids are
//! append-only and shared, which is what makes per-shard outputs
//! mergeable and renderable against the master table (the same scheme as
//! [`rtec::parallel::recognize_partitioned`]).

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use rtec::description::CompiledDescription;
use rtec::engine::{Engine, EngineConfig, EngineStats, RecognitionOutput};
use rtec::interval::IntervalList;
use rtec::term::GroundFvp;
use rtec::{Term, Timepoint};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Message to a shard worker.
pub enum WorkerMsg {
    /// An input event (master-table term) at a time-point.
    Event(Term, Timepoint),
    /// Input-fluent intervals (master-table terms).
    Intervals(GroundFvp, IntervalList),
    /// Evaluate windows up to the horizon; reply with engine stats.
    RunTo(Timepoint, Sender<EngineStats>),
    /// Reply with a copy of the accumulated output and current stats.
    Snapshot(Sender<(RecognitionOutput, EngineStats)>),
    /// Process everything queued so far, reply with final stats, stop.
    Drain(Sender<EngineStats>),
}

/// Handle to a shard worker thread.
pub struct ShardWorker {
    sender: Sender<WorkerMsg>,
    handle: Option<JoinHandle<()>>,
}

impl ShardWorker {
    /// Spawns a worker over `desc` with a queue of `capacity` items.
    pub fn spawn(
        desc: Arc<CompiledDescription>,
        config: EngineConfig,
        capacity: usize,
    ) -> ShardWorker {
        let (sender, receiver) = bounded(capacity.max(1));
        let handle = std::thread::spawn(move || run_worker(&desc, config, &receiver));
        ShardWorker {
            sender,
            handle: Some(handle),
        }
    }

    /// Enqueues a message; returns whether the send had to block on a
    /// full queue (the backpressure signal the session counts).
    pub fn send(&self, msg: WorkerMsg) -> Result<bool, String> {
        match self.sender.try_send(msg) {
            Ok(()) => Ok(false),
            Err(TrySendError::Full(msg)) => self
                .sender
                .send(msg)
                .map(|()| true)
                .map_err(|_| "shard worker exited".to_string()),
            Err(TrySendError::Disconnected(_)) => Err("shard worker exited".to_string()),
        }
    }

    /// Current queue depth (approximate).
    pub fn queue_len(&self) -> usize {
        self.sender.len()
    }

    /// Sends `Drain` and joins the thread, returning its final stats.
    pub fn drain(mut self) -> Result<EngineStats, String> {
        let (tx, rx) = bounded(1);
        self.send(WorkerMsg::Drain(tx))?;
        let stats = rx.recv().map_err(|_| "shard worker exited".to_string())?;
        if let Some(handle) = self.handle.take() {
            handle
                .join()
                .map_err(|_| "shard worker panicked".to_string())?;
        }
        Ok(stats)
    }
}

fn run_worker(desc: &CompiledDescription, config: EngineConfig, receiver: &Receiver<WorkerMsg>) {
    let mut engine = Engine::new(desc, config);
    while let Ok(msg) = receiver.recv() {
        match msg {
            WorkerMsg::Event(ev, t) => engine.add_event(ev, t),
            WorkerMsg::Intervals(fvp, list) => engine.add_input_intervals(fvp, list),
            WorkerMsg::RunTo(horizon, reply) => {
                engine.run_to(horizon);
                let _ = reply.send(engine.stats());
            }
            WorkerMsg::Snapshot(reply) => {
                let _ = reply.send((engine.output().clone(), engine.stats()));
            }
            WorkerMsg::Drain(reply) => {
                // Graceful drain: everything enqueued before the Drain
                // has already been handled (the channel is FIFO); no
                // further evaluation is forced — unticked events are
                // reported, not silently evaluated.
                let _ = reply.send(engine.stats());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec::description::EventDescription;

    #[test]
    fn worker_processes_and_drains() {
        let desc = EventDescription::parse(
            "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
             terminatedAt(on(X)=true, T) :- happensAt(down(X), T).",
        )
        .unwrap();
        let mut master = desc.symbols.clone();
        let compiled = Arc::new(desc.compile().unwrap());
        let w = ShardWorker::spawn(Arc::clone(&compiled), EngineConfig::default(), 4);

        let up = rtec::parser::parse_term("up(a)", &mut master).unwrap();
        let down = rtec::parser::parse_term("down(a)", &mut master).unwrap();
        w.send(WorkerMsg::Event(up, 5)).unwrap();
        w.send(WorkerMsg::Event(down, 9)).unwrap();
        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::RunTo(20, tx)).unwrap();
        let stats = rx.recv().unwrap();
        assert_eq!(stats.events_processed, 2);

        let (tx, rx) = bounded(1);
        w.send(WorkerMsg::Snapshot(tx)).unwrap();
        let (out, _) = rx.recv().unwrap();
        assert_eq!(out.len(), 1);
        let rendered: Vec<String> = out
            .iter()
            .map(|(f, l)| format!("{}={}", f.display(&master), l))
            .collect();
        assert_eq!(rendered, vec!["on(a)=true=[[6, 10)]".to_string()]);

        let final_stats = w.drain().unwrap();
        assert_eq!(final_stats.windows, 1);
    }
}
