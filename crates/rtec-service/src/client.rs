//! Replay client: streams an event file into a running server session
//! and renders the recognised output in the same shape as a batch
//! `rtec-cli run`, so the two can be compared byte for byte.
//!
//! The event-file format extends `rtec-cli`'s `TIME TERM` lines with
//! input-interval declarations:
//!
//! ```text
//! % comment
//! interval proximity(v0, v1)=true 0 200
//! 10 entersArea(v1, brest_port).
//! ```
//!
//! Interval lines are sent before any events so entity couplings reach
//! the server ahead of the first tick — the condition under which the
//! sharded session reproduces the batch partitioning exactly.

use rtec::Timepoint;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

/// An input-interval declaration: `(fluent_src, value_src, pairs)`.
pub type IntervalDecl = (String, String, Vec<(Timepoint, Timepoint)>);

/// A parsed stream file.
#[derive(Clone, Debug, Default)]
pub struct StreamFile {
    /// `(t, term_src)` in file order.
    pub events: Vec<(Timepoint, String)>,
    /// Input-fluent interval declarations.
    pub intervals: Vec<IntervalDecl>,
}

impl StreamFile {
    /// Largest event time-point (or interval end) in the file.
    pub fn horizon(&self) -> Timepoint {
        let ev = self.events.iter().map(|&(t, _)| t).max().unwrap_or(0);
        let iv = self
            .intervals
            .iter()
            .flat_map(|(_, _, pairs)| pairs.iter().map(|&(_, e)| e))
            .max()
            .unwrap_or(0);
        ev.max(iv)
    }
}

/// Parses the extended event-file format.
pub fn parse_stream_file(text: &str) -> Result<StreamFile, String> {
    let mut file = StreamFile::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("interval ") {
            file.intervals.push(
                parse_interval_line(rest.trim()).map_err(|e| format!("line {}: {e}", i + 1))?,
            );
            continue;
        }
        let (time_str, term_str) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("line {}: expected 'TIME TERM'", i + 1))?;
        let t: Timepoint = time_str
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad time '{time_str}': {e}", i + 1))?;
        file.events
            .push((t, term_str.trim().trim_end_matches('.').to_string()));
    }
    Ok(file)
}

/// Parses `FLUENT=VALUE S1 E1 [S2 E2 ...]`. The fluent may contain
/// spaces (`proximity(v0, v1)`); bounds are the trailing numeric tokens.
fn parse_interval_line(rest: &str) -> Result<IntervalDecl, String> {
    // Split trailing numeric tokens off the end.
    let mut tokens: Vec<&str> = rest.split_whitespace().collect();
    let mut bounds: Vec<Timepoint> = Vec::new();
    while let Some(last) = tokens.last() {
        match last.parse::<Timepoint>() {
            Ok(n) => {
                bounds.push(n);
                tokens.pop();
            }
            Err(_) => break,
        }
    }
    bounds.reverse();
    if bounds.is_empty() || !bounds.len().is_multiple_of(2) {
        return Err("expected 'interval FLUENT=VALUE START END [START END ...]'".into());
    }
    let head = tokens.join(" ");
    let (fluent, value) = head
        .rsplit_once('=')
        .ok_or("expected FLUENT=VALUE before the interval bounds")?;
    let pairs = bounds.chunks(2).map(|c| (c[0], c[1])).collect();
    Ok((fluent.trim().to_string(), value.trim().to_string(), pairs))
}

/// A persistent NDJSON connection to a server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line, returns the parsed response. Error frames
    /// become `Err` carrying the server's message.
    pub fn request(&mut self, line: &str) -> Result<Value, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| e.to_string())?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        let value: Value = serde_json::from_str(response.trim_end())
            .map_err(|e| format!("malformed response: {e}"))?;
        if value["ok"] == false {
            return Err(value["error"]
                .as_str()
                .unwrap_or("unknown error")
                .to_string());
        }
        Ok(value)
    }

    /// Fetches the server's Prometheus exposition via the `metrics`
    /// protocol command (the NDJSON alternative to the HTTP endpoint).
    pub fn metrics(&mut self) -> Result<String, String> {
        let reply = self.request("{\"cmd\":\"metrics\"}")?;
        reply["body"]
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| "metrics reply missing \"body\"".into())
    }
}

/// Replay options for [`stream_file`].
#[derive(Clone, Debug, PartialEq)]
pub struct StreamOptions {
    /// Session name to open.
    pub session: String,
    /// Recognition window (`None` = single chunk per tick).
    pub window: Option<Timepoint>,
    /// Engine shards for the session.
    pub shards: usize,
    /// Per-shard queue capacity.
    pub queue: Option<usize>,
    /// Events per `batch` request.
    pub batch_size: usize,
    /// Replay pacing in events/second (`None` = as fast as possible).
    pub rate: Option<f64>,
    /// Tick every this many time-points (`None` = one final tick).
    pub tick_every: Option<Timepoint>,
    /// Final evaluation horizon (`None` = file horizon + 1).
    pub horizon: Option<Timepoint>,
    /// Close the session after the final query.
    pub close: bool,
    /// Open the session with a reorder buffer of this slack (timepoints).
    pub reorder_slack: Option<Timepoint>,
    /// Absorb exact duplicates (requires `reorder_slack`).
    pub dedup: bool,
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions {
            session: "stream".to_string(),
            window: None,
            shards: 2,
            queue: None,
            batch_size: 64,
            rate: None,
            tick_every: None,
            horizon: None,
            close: true,
            reorder_slack: None,
            dedup: false,
        }
    }
}

/// Result of a replay.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Events sent.
    pub events: u64,
    /// Interval declarations sent.
    pub intervals: u64,
    /// Ticks issued (including the final one).
    pub ticks: u64,
    /// Sorted `(fvp, intervals)` rows from the final query.
    pub rows: Vec<(String, String)>,
    /// Warnings from the final query.
    pub warnings: Vec<String>,
    /// The final `stats` frame.
    pub stats: Value,
}

impl StreamReport {
    /// Renders the recognised output exactly like `rtec-cli run` does,
    /// so batch and streamed runs can be diffed byte for byte.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (fvp, intervals) in &self.rows {
            let _ = writeln!(out, "holdsFor({fvp}) = {intervals}");
        }
        let events = self.stats["events_processed"].as_i64().unwrap_or(0);
        let windows = self.stats["windows"].as_i64().unwrap_or(0);
        let _ = write!(
            out,
            "\n{} events in {} window(s); {} fluent-value pair(s) recognised",
            events,
            windows,
            self.rows.len()
        );
        for w in &self.warnings {
            let _ = write!(out, "\nwarning: {w}");
        }
        out
    }
}

fn render(value: Value) -> String {
    serde_json::to_string(&value).unwrap_or_else(|_| "{}".into())
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        map.insert(k.to_string(), v);
    }
    Value::Object(map)
}

/// Opens a session, replays `file`, ticks, queries, and (optionally)
/// closes. The connection is `client`'s; several replays with distinct
/// session names may share one server concurrently.
pub fn stream_file(
    client: &mut Client,
    description_src: &str,
    file: &StreamFile,
    opts: &StreamOptions,
) -> Result<StreamReport, String> {
    let mut open = vec![
        ("cmd", Value::from("open")),
        ("session", Value::from(opts.session.as_str())),
        ("description", Value::from(description_src)),
        ("shards", Value::from(opts.shards as i64)),
    ];
    if let Some(w) = opts.window {
        open.push(("window", Value::from(w)));
    }
    if let Some(q) = opts.queue {
        open.push(("queue", Value::from(q as i64)));
    }
    if let Some(slack) = opts.reorder_slack {
        open.push(("reorder_slack", Value::from(slack)));
    }
    if opts.dedup {
        open.push(("dedup", Value::Bool(true)));
    }
    client.request(&render(obj(open)))?;

    let mut report = StreamReport {
        events: 0,
        intervals: 0,
        ticks: 0,
        rows: Vec::new(),
        warnings: Vec::new(),
        stats: Value::Null,
    };

    // Intervals first: couplings must precede the first tick.
    if !file.intervals.is_empty() {
        let entries: Vec<Value> = file
            .intervals
            .iter()
            .map(|(fluent, value, pairs)| {
                let pairs: Vec<Value> = pairs
                    .iter()
                    .map(|&(s, e)| Value::Array(vec![Value::from(s), Value::from(e)]))
                    .collect();
                obj(vec![
                    ("fluent", Value::from(fluent.as_str())),
                    ("value", Value::from(value.as_str())),
                    ("intervals", Value::Array(pairs)),
                ])
            })
            .collect();
        let line = render(obj(vec![
            ("cmd", Value::from("batch")),
            ("session", Value::from(opts.session.as_str())),
            ("intervals", Value::Array(entries)),
        ]));
        client.request(&line)?;
        report.intervals = file.intervals.len() as u64;
    }

    let horizon = opts.horizon.unwrap_or_else(|| file.horizon() + 1);
    let mut next_tick = opts.tick_every.map(|every| every.max(1));
    let mut batch: Vec<Value> = Vec::with_capacity(opts.batch_size.max(1));
    let flush = |client: &mut Client, batch: &mut Vec<Value>| {
        if batch.is_empty() {
            return Ok(());
        }
        let line = render(obj(vec![
            ("cmd", Value::from("batch")),
            ("session", Value::from(opts.session.as_str())),
            ("events", Value::Array(std::mem::take(batch))),
        ]));
        client.request(&line)?;
        Ok::<(), String>(())
    };
    for &(t, ref term) in &file.events {
        if let Some(boundary) = next_tick {
            if t >= boundary {
                flush(client, &mut batch)?;
                client.request(&render(obj(vec![
                    ("cmd", Value::from("tick")),
                    ("session", Value::from(opts.session.as_str())),
                    ("to", Value::from(boundary - 1)),
                ])))?;
                report.ticks += 1;
                let every = opts.tick_every.unwrap_or(1).max(1);
                next_tick = Some(boundary + ((t - boundary) / every + 1) * every);
            }
        }
        batch.push(obj(vec![
            ("t", Value::from(t)),
            ("event", Value::from(term.as_str())),
        ]));
        report.events += 1;
        if batch.len() >= opts.batch_size.max(1) {
            flush(client, &mut batch)?;
            if let Some(rate) = opts.rate {
                if rate > 0.0 {
                    let secs = opts.batch_size as f64 / rate;
                    std::thread::sleep(Duration::from_secs_f64(secs));
                }
            }
        }
    }
    flush(client, &mut batch)?;

    client.request(&render(obj(vec![
        ("cmd", Value::from("tick")),
        ("session", Value::from(opts.session.as_str())),
        ("to", Value::from(horizon)),
    ])))?;
    report.ticks += 1;

    let query = client.request(&render(obj(vec![
        ("cmd", Value::from("query")),
        ("session", Value::from(opts.session.as_str())),
    ])))?;
    if let Some(rows) = query["rows"].as_array() {
        for row in rows {
            report.rows.push((
                row["fvp"].as_str().unwrap_or_default().to_string(),
                row["intervals"].as_str().unwrap_or_default().to_string(),
            ));
        }
    }
    if let Some(warnings) = query["warnings"].as_array() {
        for w in warnings {
            report
                .warnings
                .push(w.as_str().unwrap_or_default().to_string());
        }
    }

    report.stats = client.request(&render(obj(vec![
        ("cmd", Value::from("stats")),
        ("session", Value::from(opts.session.as_str())),
    ])))?;

    if opts.close {
        client.request(&render(obj(vec![
            ("cmd", Value::from("close")),
            ("session", Value::from(opts.session.as_str())),
        ])))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_extended_event_files() {
        let file = parse_stream_file(
            "% comment\n\
             interval proximity(v0, v1)=true 0 200 350 400\n\
             10 entersArea(v1, brest_port).\n\
             25 gap_start(v0)\n",
        )
        .unwrap();
        assert_eq!(file.events.len(), 2);
        assert_eq!(
            file.events[0],
            (10, "entersArea(v1, brest_port)".to_string())
        );
        assert_eq!(file.intervals.len(), 1);
        let (fluent, value, pairs) = &file.intervals[0];
        assert_eq!(fluent, "proximity(v0, v1)");
        assert_eq!(value, "true");
        assert_eq!(pairs, &vec![(0, 200), (350, 400)]);
        assert_eq!(file.horizon(), 400);

        assert!(parse_stream_file("interval nope 1").is_err());
        assert!(parse_stream_file("oops").is_err());
    }
}
