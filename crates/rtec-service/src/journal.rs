//! Per-session write-ahead journal: the durability layer between
//! per-tick checkpoints.
//!
//! A checkpoint alone loses everything admitted since the last tick
//! when the process dies. The journal closes that window: every ingest
//! request is appended here **before** the acknowledgement frame goes
//! out, so an acked event is always either inside the newest checkpoint
//! or in the journal tail beyond it. Cold recovery restores the newest
//! valid checkpoint and replays the tail through the ordinary
//! reorder-buffer/engine ingest path — the replayed session is
//! byte-identical to one that never crashed, because ingest is
//! deterministic given the same record order.
//!
//! ## On-disk format
//!
//! One file per session, `<escaped-name>.journal`, holding a sequence
//! of self-delimiting frames:
//!
//! ```text
//! [len: u32 LE] [crc: u64 LE, FNV-1a over payload] [payload: len bytes]
//! ```
//!
//! Each payload is a small JSON object with a `"k"` kind tag (`"o"`
//! open, `"e"` event, `"v"` intervals) and a monotonically increasing
//! sequence number `"s"`. Checkpoints record the highest sequence they
//! cover ([`crate::persist::SessionCheckpoint::journal_seq`]); recovery
//! replays only records beyond it, skipping non-increasing sequence
//! numbers so a duplicated tail (a retried append that landed twice) is
//! harmless. A frame whose length overruns the file or whose checksum
//! fails marks a torn tail: everything from that offset on is
//! truncated, which is exactly the newest consistent prefix.
//!
//! ## Rotation
//!
//! After each durable checkpoint the journal is rewritten keeping only
//! the open record and frames beyond the checkpointed sequence (the
//! rewrite goes through [`crate::persist::write_durable`]: temp file,
//! `sync_all`, rename, directory sync). Rotating *after* the checkpoint
//! rename means a crash between the two leaves extra covered frames in
//! the file — recovery skips them by sequence number, so the window is
//! benign.
//!
//! ## Fsync policy
//!
//! `always` syncs on every commit (survives power loss per ack),
//! `interval` syncs at most once per configured period (bounded loss on
//! power failure, none on process death — the bytes are in the page
//! cache once `write(2)` returns), `never` leaves syncing to the OS.
//! Process-level failover (`SIGKILL`, the cluster front-end's domain)
//! is safe under all three policies.

use crate::fault;
use crate::persist;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// When journal appends reach the disk, relative to the commit that
/// precedes each acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` on every commit: an acked event survives power loss.
    Always,
    /// `fsync` at most once per this many milliseconds: bounded loss on
    /// power failure, zero loss on process death.
    Interval {
        /// Minimum milliseconds between syncs.
        millis: u64,
    },
    /// Never `fsync` explicitly: the OS flushes on its own schedule.
    /// Still zero-loss under process death.
    Never,
}

impl Default for FsyncPolicy {
    fn default() -> FsyncPolicy {
        FsyncPolicy::Interval { millis: 100 }
    }
}

impl FsyncPolicy {
    /// Parses `always`, `never`, `interval`, or `interval:<millis>`.
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::default()),
            _ => {
                let millis = text.strip_prefix("interval:")?.parse().ok()?;
                Some(FsyncPolicy::Interval { millis })
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval { millis } => write!(f, "interval:{millis}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// One journaled ingest operation.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// The original `open` request, kept verbatim so a session that
    /// died before its first checkpoint can still be rebuilt.
    Open {
        /// Sequence number (always the lowest in the file).
        seq: u64,
        /// The full open request object as received on the wire.
        request: Value,
    },
    /// A single event ingest.
    Event {
        /// Sequence number.
        seq: u64,
        /// Event timestamp.
        t: i64,
        /// Event term source, e.g. `up(a)`.
        event: String,
    },
    /// A fluent-interval ingest (batch `intervals` entries).
    Intervals {
        /// Sequence number.
        seq: u64,
        /// Fluent term source.
        fluent: String,
        /// Fluent value.
        value: String,
        /// Closed-open interval pairs.
        pairs: Vec<(i64, i64)>,
    },
}

impl JournalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            JournalRecord::Open { seq, .. }
            | JournalRecord::Event { seq, .. }
            | JournalRecord::Intervals { seq, .. } => *seq,
        }
    }

    fn to_payload(&self) -> Vec<u8> {
        let mut map = BTreeMap::new();
        match self {
            JournalRecord::Open { seq, request } => {
                map.insert("k".to_string(), Value::from("o"));
                map.insert("s".to_string(), Value::from(*seq as i64));
                map.insert("req".to_string(), request.clone());
            }
            JournalRecord::Event { seq, t, event } => {
                return event_payload(*seq, *t, event).into_bytes();
            }
            JournalRecord::Intervals {
                seq,
                fluent,
                value,
                pairs,
            } => {
                map.insert("k".to_string(), Value::from("v"));
                map.insert("s".to_string(), Value::from(*seq as i64));
                map.insert("f".to_string(), Value::from(fluent.as_str()));
                map.insert("v".to_string(), Value::from(value.as_str()));
                map.insert(
                    "iv".to_string(),
                    Value::Array(
                        pairs
                            .iter()
                            .map(|&(a, b)| Value::Array(vec![Value::from(a), Value::from(b)]))
                            .collect(),
                    ),
                );
            }
        }
        serde_json::to_string(&Value::Object(map))
            .map(String::into_bytes)
            .unwrap_or_default()
    }

    fn from_payload(bytes: &[u8]) -> Result<JournalRecord, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "journal record: not UTF-8")?;
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("journal record: bad JSON: {e}"))?;
        let seq = v
            .get("s")
            .and_then(Value::as_i64)
            .filter(|s| *s >= 0)
            .ok_or("journal record: missing \"s\"")? as u64;
        match v.get("k").and_then(Value::as_str) {
            Some("o") => Ok(JournalRecord::Open {
                seq,
                request: v.get("req").cloned().ok_or("journal open: missing req")?,
            }),
            Some("e") => Ok(JournalRecord::Event {
                seq,
                t: v.get("t")
                    .and_then(Value::as_i64)
                    .ok_or("journal event: missing t")?,
                event: v
                    .get("ev")
                    .and_then(Value::as_str)
                    .ok_or("journal event: missing ev")?
                    .to_string(),
            }),
            Some("v") => {
                let pairs = v
                    .get("iv")
                    .and_then(Value::as_array)
                    .ok_or("journal intervals: missing iv")?
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .as_array()
                            .filter(|p| p.len() == 2)
                            .ok_or("journal intervals: bad pair")?;
                        let a = pair[0].as_i64().ok_or("journal intervals: bad pair")?;
                        let b = pair[1].as_i64().ok_or("journal intervals: bad pair")?;
                        Ok::<(i64, i64), String>((a, b))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(JournalRecord::Intervals {
                    seq,
                    fluent: v
                        .get("f")
                        .and_then(Value::as_str)
                        .ok_or("journal intervals: missing f")?
                        .to_string(),
                    value: v
                        .get("v")
                        .and_then(Value::as_str)
                        .ok_or("journal intervals: missing v")?
                        .to_string(),
                    pairs,
                })
            }
            _ => Err("journal record: unknown kind".to_string()),
        }
    }
}

/// JSON string escaping byte-identical to the serializer's, so the
/// hand-written event payload and the generic one round-trip the same.
/// Ordinary event terms (`up(a)`, `entersArea(v1, p)`) need no escapes
/// at all, so that case is a single copy.
fn escape_into(s: &str, out: &mut String) {
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push('"');
        out.push_str(s);
        out.push('"');
        return;
    }
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The event-record payload, written by hand into `out`: events are
/// the journal's hot path (one per acked ingest), and going through a
/// `Value` tree costs an order of magnitude more than the recognition
/// work the record describes. Key order matches the generic
/// serializer's (alphabetical), so both paths produce identical bytes.
fn event_payload_into(seq: u64, t: i64, event: &str, out: &mut String) {
    out.reserve(48 + event.len());
    out.push_str("{\"ev\":");
    escape_into(event, out);
    out.push_str(",\"k\":\"e\",\"s\":");
    push_u64(out, seq);
    out.push_str(",\"t\":");
    if t < 0 {
        out.push('-');
        push_u64(out, t.unsigned_abs());
    } else {
        push_u64(out, t as u64);
    }
    out.push('}');
}

/// Decimal formatting without the `fmt` machinery (measurable on the
/// per-ack path).
fn push_u64(out: &mut String, mut n: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

fn event_payload(seq: u64, t: i64, event: &str) -> String {
    let mut out = String::new();
    event_payload_into(seq, t, event, &mut out);
    out
}

/// FNV-1a 64-bit, the same hash family as checkpoint checksums but kept
/// as a raw integer for the fixed-width frame header.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Frames too large to be a sane record mark corruption rather than a
/// legitimate payload (the service caps wire frames at 1 MiB anyway).
const MAX_RECORD: usize = 4 << 20;

/// Decodes the valid frame prefix of `bytes`: returns the records and
/// the byte offset where the valid prefix ends (the file length when
/// the tail is clean).
fn decode_frames(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= 12 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().unwrap());
        let start = offset + 12;
        if len > MAX_RECORD || start + len > bytes.len() {
            break;
        }
        let payload = &bytes[start..start + len];
        if fnv1a64(payload) != crc {
            break;
        }
        // A frame that checksums but does not parse is treated the same
        // as a torn one: nothing after it can be trusted.
        match JournalRecord::from_payload(payload) {
            Ok(record) => records.push(record),
            Err(_) => break,
        }
        offset = start + len;
    }
    (records, offset)
}

/// The journal file for `session` under `dir`, named with the same
/// escaping scheme as checkpoints.
pub fn journal_path(dir: &Path, session: &str) -> PathBuf {
    dir.join(format!("{}.journal", persist::escape_name(session)))
}

/// Removes the journal for `session`, if present (called on close).
pub fn remove(dir: &Path, session: &str) {
    let _ = std::fs::remove_file(journal_path(dir, session));
}

/// What a cold read of a journal file found.
#[derive(Debug)]
pub struct JournalScan {
    /// Valid records in file order.
    pub records: Vec<JournalRecord>,
    /// Bytes truncated off a torn or corrupt tail (0 for a clean file).
    pub truncated_bytes: u64,
}

/// Reads and validates the journal for `session`, truncating any torn
/// tail in place so subsequent appends extend the consistent prefix.
/// A missing file reads as empty.
pub fn scan(dir: &Path, session: &str) -> Result<JournalScan, String> {
    let path = journal_path(dir, session);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("journal read {}: {e}", path.display())),
    };
    let (records, valid_len) = decode_frames(&bytes);
    let truncated_bytes = (bytes.len() - valid_len) as u64;
    if truncated_bytes > 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| format!("journal truncate {}: {e}", path.display()))?;
        file.set_len(valid_len as u64)
            .map_err(|e| format!("journal truncate {}: {e}", path.display()))?;
        file.sync_all()
            .map_err(|e| format!("journal truncate sync {}: {e}", path.display()))?;
        crate::obs::metrics().journal_truncations.inc();
        rtec_obs::warn(
            "service.journal_truncated",
            &[
                ("session", session.into()),
                ("bytes", truncated_bytes.into()),
            ],
        );
    }
    Ok(JournalScan {
        records,
        truncated_bytes,
    })
}

/// An open, appendable per-session journal.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    session: String,
    file: File,
    /// Last sequence number assigned (or observed on reopen).
    seq: u64,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Encoded frames staged by `append_*`, flushed by `commit`. A
    /// batch stages many frames and commits once, so the ack still
    /// covers every record with a single `write(2)`.
    pending: Vec<u8>,
    /// Reusable payload buffer for the per-event encode path.
    scratch: String,
}

impl Journal {
    /// Creates a fresh journal for `session`, truncating any previous
    /// file (a re-opened session starts from empty state, so its old
    /// journal is dead).
    pub fn create(dir: &Path, session: &str, policy: FsyncPolicy) -> Result<Journal, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("journal dir {}: {e}", dir.display()))?;
        let path = journal_path(dir, session);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| format!("journal create {}: {e}", path.display()))?;
        persist::fsync_dir(dir)?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            session: session.to_string(),
            file,
            seq: 0,
            policy,
            last_sync: Instant::now(),
            pending: Vec::new(),
            scratch: String::new(),
        })
    }

    /// Reopens an existing journal for appending, continuing its
    /// sequence from the highest valid record (the torn tail, if any,
    /// was truncated by the [`scan`] the caller did first).
    pub fn reopen(
        dir: &Path,
        session: &str,
        policy: FsyncPolicy,
        last_seq: u64,
    ) -> Result<Journal, String> {
        let path = journal_path(dir, session);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("journal open {}: {e}", path.display()))?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            session: session.to_string(),
            file,
            seq: last_seq,
            policy,
            last_sync: Instant::now(),
            pending: Vec::new(),
            scratch: String::new(),
        })
    }

    /// The highest sequence number assigned so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Stages the session's open request as the journal's first record.
    pub fn append_open(&mut self, request: &Value) -> u64 {
        self.append(|seq| JournalRecord::Open {
            seq,
            request: request.clone(),
        })
    }

    /// Stages one event ingest. Encodes straight into the staging
    /// buffer — no record struct, no `Value` tree — because this runs
    /// once per acked ingest.
    pub fn append_event(&mut self, t: i64, event: &str) -> u64 {
        self.seq += 1;
        self.scratch.clear();
        event_payload_into(self.seq, t, event, &mut self.scratch);
        encode_frame(&mut self.pending, self.scratch.as_bytes());
        self.seq
    }

    /// Stages one fluent-interval ingest.
    pub fn append_intervals(&mut self, fluent: &str, value: &str, pairs: &[(i64, i64)]) -> u64 {
        self.append(|seq| JournalRecord::Intervals {
            seq,
            fluent: fluent.to_string(),
            value: value.to_string(),
            pairs: pairs.to_vec(),
        })
    }

    fn append(&mut self, make: impl FnOnce(u64) -> JournalRecord) -> u64 {
        self.seq += 1;
        let record = make(self.seq);
        encode_frame(&mut self.pending, &record.to_payload());
        self.seq
    }

    /// Writes all staged frames to the OS and applies the fsync policy.
    /// Must succeed before the corresponding acknowledgement is sent;
    /// on failure the staged frames remain pending (the next commit
    /// retries them), and the caller surfaces the error instead of the
    /// ack.
    pub fn commit(&mut self) -> Result<(), String> {
        if self.pending.is_empty() {
            return Ok(());
        }
        match fault::on_journal_write() {
            Some(fault::IoFaultKind::Error) => {
                return Err("journal write failed (injected I/O error)".to_string());
            }
            Some(fault::IoFaultKind::Torn { keep_bytes }) => {
                // A torn append: a prefix of the staged frames reaches
                // the file and the commit fails. Recovery truncates the
                // partial frame; the client never saw an ack for it.
                let keep = keep_bytes.min(self.pending.len());
                let _ = self.file.write_all(&self.pending[..keep]);
                self.pending.clear();
                return Err("journal write torn (injected fault)".to_string());
            }
            Some(fault::IoFaultKind::Delayed { millis }) => fault::apply_delay(millis),
            None => {}
        }
        let bytes = self.pending.len() as u64;
        self.file
            .write_all(&self.pending)
            .map_err(|e| format!("journal append {}: {e}", self.path().display()))?;
        self.pending.clear();
        let metrics = crate::obs::metrics();
        metrics.journal_appends.inc();
        metrics.journal_bytes.add(bytes);
        let sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval { millis } => {
                self.last_sync.elapsed() >= std::time::Duration::from_millis(millis)
            }
            FsyncPolicy::Never => false,
        };
        if sync {
            self.file
                .sync_data()
                .map_err(|e| format!("journal sync {}: {e}", self.path().display()))?;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Rotates the journal after a checkpoint covering `upto_seq`:
    /// rewrites the file keeping only the open record and frames beyond
    /// the checkpoint, durably (temp + sync + rename + dir sync), and
    /// reopens it for appending. Called after the checkpoint rename, so
    /// a crash in between merely leaves covered frames for recovery to
    /// skip by sequence number.
    pub fn rotate(&mut self, upto_seq: u64) -> Result<(), String> {
        if let Some(kind) = fault::on_journal_write() {
            match kind {
                fault::IoFaultKind::Error => {
                    return Err("journal rotate failed (injected I/O error)".to_string());
                }
                // A torn rotation is indistinguishable from no rotation:
                // the durable-rename protocol leaves the old file.
                fault::IoFaultKind::Torn { .. } => {
                    return Err("journal rotate torn (injected fault)".to_string());
                }
                fault::IoFaultKind::Delayed { millis } => fault::apply_delay(millis),
            }
        }
        let path = self.path();
        let bytes = std::fs::read(&path).unwrap_or_default();
        let (records, _) = decode_frames(&bytes);
        let mut kept = Vec::new();
        for record in &records {
            let keep = matches!(record, JournalRecord::Open { .. }) || record.seq() > upto_seq;
            if keep {
                encode_frame(&mut kept, &record.to_payload());
            }
        }
        persist::write_durable(&path, &kept)?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("journal reopen {}: {e}", path.display()))?;
        crate::obs::metrics().journal_rotations.inc();
        Ok(())
    }

    fn path(&self) -> PathBuf {
        journal_path(&self.dir, &self.session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtec-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval"),
            Some(FsyncPolicy::Interval { millis: 100 })
        );
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Some(FsyncPolicy::Interval { millis: 250 })
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(
            FsyncPolicy::Interval { millis: 250 }.to_string(),
            "interval:250"
        );
    }

    #[test]
    fn append_scan_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut j = Journal::create(&dir, "s/1", FsyncPolicy::Never).unwrap();
        let req: Value = serde_json::from_str(r#"{"cmd":"open","session":"s/1"}"#).unwrap();
        j.append_open(&req);
        j.append_event(5, "up(a)");
        j.append_intervals("near(a,b)", "true", &[(1, 4), (9, 12)]);
        j.commit().unwrap();

        let scan = scan(&dir, "s/1").unwrap();
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(
            scan.records[0],
            JournalRecord::Open {
                seq: 1,
                request: req
            }
        );
        assert_eq!(
            scan.records[1],
            JournalRecord::Event {
                seq: 2,
                t: 5,
                event: "up(a)".to_string()
            }
        );
        assert_eq!(
            scan.records[2],
            JournalRecord::Intervals {
                seq: 3,
                fluent: "near(a,b)".to_string(),
                value: "true".to_string(),
                pairs: vec![(1, 4), (9, 12)],
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hand_written_event_payload_escapes_and_round_trips() {
        // Malformed ingests are journaled verbatim (dead-letter replay),
        // so the hot-path encoder must survive hostile term sources.
        let nasty = "up(\"a\\b\")\n\t\u{01}end";
        let payload = event_payload(7, -3, nasty);
        let decoded = JournalRecord::from_payload(payload.as_bytes()).unwrap();
        assert_eq!(
            decoded,
            JournalRecord::Event {
                seq: 7,
                t: -3,
                event: nasty.to_string()
            }
        );
    }

    #[test]
    fn torn_tail_is_truncated_to_newest_consistent_prefix() {
        let dir = temp_dir("torn");
        let mut j = Journal::create(&dir, "s", FsyncPolicy::Never).unwrap();
        j.append_event(1, "up(a)");
        j.append_event(2, "up(b)");
        j.commit().unwrap();
        let path = journal_path(&dir, "s");
        let full = std::fs::read(&path).unwrap();

        // Cut mid-frame: the second record is torn off.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let s = scan(&dir, "s").unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.truncated_bytes > 0);
        // The truncation is physical: a second scan is clean.
        let s = scan(&dir, "s").unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.truncated_bytes, 0);

        // Bit-flip in a payload: the checksum rejects it and everything
        // after the flip point goes with it.
        std::fs::write(&path, &full).unwrap();
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let s = scan(&dir, "s").unwrap();
        assert!(s.records.len() < 2);
        assert!(s.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_sequence_and_rotate_keeps_tail() {
        let dir = temp_dir("rotate");
        let mut j = Journal::create(&dir, "s", FsyncPolicy::Never).unwrap();
        let req: Value = serde_json::from_str(r#"{"cmd":"open","session":"s"}"#).unwrap();
        j.append_open(&req);
        for t in 1..=4 {
            j.append_event(t, "up(a)");
        }
        j.commit().unwrap();

        // Checkpoint covered seq 3: rotation keeps open + seqs 4..5.
        j.rotate(3).unwrap();
        let s = scan(&dir, "s").unwrap();
        let seqs: Vec<u64> = s.records.iter().map(JournalRecord::seq).collect();
        assert_eq!(seqs, vec![1, 4, 5]);

        // Reopen continues where the valid records end.
        let last = s.records.last().unwrap().seq();
        let mut j = Journal::reopen(&dir, "s", FsyncPolicy::Never, last).unwrap();
        j.append_event(9, "down(a)");
        j.commit().unwrap();
        let s = scan(&dir, "s").unwrap();
        let seqs: Vec<u64> = s.records.iter().map(JournalRecord::seq).collect();
        assert_eq!(seqs, vec![1, 4, 5, 6]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
