//! NDJSON wire protocol: one JSON object per line, both directions.
//!
//! Requests carry a `cmd` field naming the command (`open`, `event`,
//! `batch`, `tick`, `query`, `stats`, `close`, `shutdown`); every
//! response is either an ok-frame `{"ok": true, ...}` or an error frame
//! `{"ok": false, "error": "..."}`. The full specification lives in
//! `docs/SERVICE.md`.

use rtec::Timepoint;
use serde_json::Value;
use std::collections::BTreeMap;

/// Parses one request line into a JSON object.
pub fn parse_request(line: &str) -> Result<Value, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("malformed request: {e}"))?;
    if value.as_object().is_none() {
        return Err("malformed request: expected a JSON object".into());
    }
    Ok(value)
}

/// The request's `cmd` field.
pub fn command(req: &Value) -> Result<&str, String> {
    str_field(req, "cmd")
}

/// A required string field.
pub fn str_field<'v>(req: &'v Value, name: &str) -> Result<&'v str, String> {
    req.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field \"{name}\""))
}

/// A required integer field.
pub fn int_field(req: &Value, name: &str) -> Result<Timepoint, String> {
    req.get(name)
        .and_then(Value::as_i64)
        .ok_or_else(|| format!("missing or non-integer field \"{name}\""))
}

/// An optional integer field.
pub fn opt_int_field(req: &Value, name: &str) -> Result<Option<Timepoint>, String> {
    match req.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_i64()
            .map(Some)
            .ok_or_else(|| format!("non-integer field \"{name}\"")),
    }
}

/// Builder for ok-frames.
pub struct OkFrame {
    fields: BTreeMap<String, Value>,
}

impl OkFrame {
    /// A bare `{"ok": true}` frame.
    pub fn new() -> OkFrame {
        let mut fields = BTreeMap::new();
        fields.insert("ok".to_string(), Value::Bool(true));
        OkFrame { fields }
    }

    /// Adds a field.
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> OkFrame {
        self.fields.insert(name.to_string(), value.into());
        self
    }

    /// Serialises to one NDJSON line (no trailing newline).
    pub fn render(self) -> String {
        serde_json::to_string(&Value::Object(self.fields)).unwrap_or_else(|_| "{}".into())
    }
}

impl Default for OkFrame {
    fn default() -> OkFrame {
        OkFrame::new()
    }
}

/// An error frame `{"ok": false, "error": msg}`.
pub fn error_frame(msg: &str) -> String {
    let mut fields = BTreeMap::new();
    fields.insert("ok".to_string(), Value::Bool(false));
    fields.insert("error".to_string(), Value::from(msg));
    serde_json::to_string(&Value::Object(fields)).unwrap_or_else(|_| "{}".into())
}

/// Converts an unsigned counter for a JSON field (saturating).
pub fn counter(n: impl TryInto<i64>) -> Value {
    Value::from(n.try_into().unwrap_or(i64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let line = OkFrame::new().field("windows", 3i64).render();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["ok"], true);
        assert_eq!(v["windows"], 3i64);

        let err = error_frame("no such session \"x\"");
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v["ok"], false);
        assert_eq!(v["error"], "no such session \"x\"");
    }

    #[test]
    fn request_fields() {
        let req = parse_request(r#"{"cmd":"tick","session":"s","to":500}"#).unwrap();
        assert_eq!(command(&req).unwrap(), "tick");
        assert_eq!(str_field(&req, "session").unwrap(), "s");
        assert_eq!(int_field(&req, "to").unwrap(), 500);
        assert_eq!(opt_int_field(&req, "window").unwrap(), None);
        assert!(parse_request("[1, 2]").is_err());
        assert!(parse_request("{nope").is_err());
    }
}
