//! NDJSON wire protocol: one JSON object per line, both directions.
//!
//! Requests carry a `cmd` field naming the command (`open`, `event`,
//! `batch`, `tick`, `query`, `stats`, `deadletter`, `close`,
//! `shutdown`); every response is either an ok-frame
//! `{"ok": true, ...}` or an error frame
//! `{"ok": false, "code": "...", "error": "..."}`, where `code` is one
//! of the machine-readable [`codes`] (`bad_frame`, `bad_request`,
//! `unknown_command`, `no_such_session`, `session_exists`,
//! `session_busy`, `quarantined`, `worker_failed`, `internal_panic`,
//! `overloaded`). The full specification lives in `docs/SERVICE.md`.

use rtec::Timepoint;
use serde_json::Value;
use std::collections::BTreeMap;

/// Parses one request line into a JSON object.
pub fn parse_request(line: &str) -> Result<Value, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("malformed request: {e}"))?;
    if value.as_object().is_none() {
        return Err("malformed request: expected a JSON object".into());
    }
    Ok(value)
}

/// The request's `cmd` field.
pub fn command(req: &Value) -> Result<&str, String> {
    str_field(req, "cmd")
}

/// A required string field.
pub fn str_field<'v>(req: &'v Value, name: &str) -> Result<&'v str, String> {
    req.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field \"{name}\""))
}

/// A required integer field.
pub fn int_field(req: &Value, name: &str) -> Result<Timepoint, String> {
    req.get(name)
        .and_then(Value::as_i64)
        .ok_or_else(|| format!("missing or non-integer field \"{name}\""))
}

/// An optional integer field.
pub fn opt_int_field(req: &Value, name: &str) -> Result<Option<Timepoint>, String> {
    match req.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_i64()
            .map(Some)
            .ok_or_else(|| format!("non-integer field \"{name}\"")),
    }
}

/// An optional string field.
pub fn opt_str_field<'v>(req: &'v Value, name: &str) -> Result<Option<&'v str>, String> {
    match req.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("non-string field \"{name}\"")),
    }
}

/// An optional boolean field (absent/null defaults to `false`).
pub fn opt_bool_field(req: &Value, name: &str) -> Result<bool, String> {
    match req.get(name) {
        None | Some(Value::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("non-boolean field \"{name}\"")),
    }
}

/// Builder for ok-frames.
pub struct OkFrame {
    fields: BTreeMap<String, Value>,
}

impl OkFrame {
    /// A bare `{"ok": true}` frame.
    pub fn new() -> OkFrame {
        let mut fields = BTreeMap::new();
        fields.insert("ok".to_string(), Value::Bool(true));
        OkFrame { fields }
    }

    /// Adds a field.
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> OkFrame {
        self.fields.insert(name.to_string(), value.into());
        self
    }

    /// Serialises to one NDJSON line (no trailing newline).
    pub fn render(self) -> String {
        serde_json::to_string(&Value::Object(self.fields)).unwrap_or_else(|_| "{}".into())
    }
}

impl Default for OkFrame {
    fn default() -> OkFrame {
        OkFrame::new()
    }
}

/// Machine-readable error codes carried in every error frame.
pub mod codes {
    /// The line was not a JSON object (malformed JSON, oversized frame,
    /// invalid UTF-8).
    pub const BAD_FRAME: &str = "bad_frame";
    /// The frame parsed but a field was missing, mistyped, out of
    /// range, or a term/description failed to parse.
    pub const BAD_REQUEST: &str = "bad_request";
    /// Unknown `cmd`.
    pub const UNKNOWN_COMMAND: &str = "unknown_command";
    /// The named session does not exist.
    pub const NO_SUCH_SESSION: &str = "no_such_session";
    /// `open` named an existing session.
    pub const SESSION_EXISTS: &str = "session_exists";
    /// The session is held by another connection (close/shutdown race).
    pub const SESSION_BUSY: &str = "session_busy";
    /// The session exhausted its worker-restart budget and accepts
    /// nothing but `close`.
    pub const QUARANTINED: &str = "quarantined";
    /// A shard worker died and could not be restored.
    pub const WORKER_FAILED: &str = "worker_failed";
    /// The request handler itself panicked (caught; the server lives).
    pub const INTERNAL_PANIC: &str = "internal_panic";
    /// `open` carried a description that parses but fails semantic
    /// analysis (rtec-lint); the error frame carries a `diagnostics`
    /// array (see docs/LINTS.md).
    pub const INVALID_DESCRIPTION: &str = "invalid_description";
    /// Admission control shed the request: a per-session event-rate or
    /// buffered-bytes budget is exhausted (see docs/INGEST.md). The
    /// shed record is accounted in the session's dead-letter ledger;
    /// a `tick` replenishes the budgets.
    pub const OVERLOADED: &str = "overloaded";
}

/// A dispatch error: a machine-readable code plus a human message.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Optional structured payload rendered as a `diagnostics` field of
    /// the error frame (used by [`codes::INVALID_DESCRIPTION`]).
    pub details: Option<Value>,
}

impl ServiceError {
    /// An error with an explicit code.
    pub fn new(code: &'static str, message: impl Into<String>) -> ServiceError {
        ServiceError {
            code,
            message: message.into(),
            details: None,
        }
    }

    /// Attaches a structured `diagnostics` payload to the error frame.
    pub fn with_details(mut self, details: Value) -> ServiceError {
        self.details = Some(details);
        self
    }

    /// Renders the error frame for this error.
    pub fn frame(&self) -> String {
        let mut fields = BTreeMap::new();
        fields.insert("ok".to_string(), Value::Bool(false));
        fields.insert("code".to_string(), Value::from(self.code));
        fields.insert("error".to_string(), Value::from(self.message.as_str()));
        if let Some(details) = &self.details {
            fields.insert("diagnostics".to_string(), details.clone());
        }
        serde_json::to_string(&Value::Object(fields)).unwrap_or_else(|_| "{}".into())
    }
}

/// Classifies a bare session/engine error message into a code. Session
/// plumbing reports `String` errors; the stable phrases below are the
/// contract between the session layer and the wire protocol.
pub fn classify(message: &str) -> &'static str {
    if message.starts_with("malformed request") {
        codes::BAD_FRAME
    } else if message.starts_with("overloaded") {
        codes::OVERLOADED
    } else if message.contains("quarantined") {
        codes::QUARANTINED
    } else if message.contains("no such session") {
        codes::NO_SUCH_SESSION
    } else if message.contains("already exists") {
        codes::SESSION_EXISTS
    } else if message.contains("busy") {
        codes::SESSION_BUSY
    } else if message.contains("shard worker") {
        codes::WORKER_FAILED
    } else if message.starts_with("unknown command") {
        codes::UNKNOWN_COMMAND
    } else {
        codes::BAD_REQUEST
    }
}

impl From<String> for ServiceError {
    fn from(message: String) -> ServiceError {
        ServiceError {
            code: classify(&message),
            message,
            details: None,
        }
    }
}

impl From<&str> for ServiceError {
    fn from(message: &str) -> ServiceError {
        ServiceError::from(message.to_string())
    }
}

/// An error frame `{"ok": false, "code": code, "error": msg}`.
pub fn error_frame(code: &str, msg: &str) -> String {
    let mut fields = BTreeMap::new();
    fields.insert("ok".to_string(), Value::Bool(false));
    fields.insert("code".to_string(), Value::from(code));
    fields.insert("error".to_string(), Value::from(msg));
    serde_json::to_string(&Value::Object(fields)).unwrap_or_else(|_| "{}".into())
}

/// Converts an unsigned counter for a JSON field (saturating).
pub fn counter(n: impl TryInto<i64>) -> Value {
    Value::from(n.try_into().unwrap_or(i64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let line = OkFrame::new().field("windows", 3i64).render();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["ok"], true);
        assert_eq!(v["windows"], 3i64);

        let err = error_frame(codes::NO_SUCH_SESSION, "no such session \"x\"");
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v["ok"], false);
        assert_eq!(v["code"], "no_such_session");
        assert_eq!(v["error"], "no such session \"x\"");
    }

    #[test]
    fn messages_classify_to_stable_codes() {
        for (msg, code) in [
            ("malformed request: bad JSON", codes::BAD_FRAME),
            ("no such session \"x\"", codes::NO_SUCH_SESSION),
            ("session \"x\" already exists", codes::SESSION_EXISTS),
            (
                "session quarantined: restarts exhausted",
                codes::QUARANTINED,
            ),
            ("shard worker exited", codes::WORKER_FAILED),
            (
                "session is busy on another connection; retry close",
                codes::SESSION_BUSY,
            ),
            ("unknown command \"frobnicate\"", codes::UNKNOWN_COMMAND),
            (
                "overloaded: per-tick event budget (100) exhausted; tick to admit more",
                codes::OVERLOADED,
            ),
            (
                "missing or non-string field \"session\"",
                codes::BAD_REQUEST,
            ),
        ] {
            assert_eq!(classify(msg), code, "{msg}");
            assert_eq!(ServiceError::from(msg.to_string()).code, code);
        }
    }

    #[test]
    fn request_fields() {
        let req = parse_request(r#"{"cmd":"tick","session":"s","to":500}"#).unwrap();
        assert_eq!(command(&req).unwrap(), "tick");
        assert_eq!(str_field(&req, "session").unwrap(), "s");
        assert_eq!(int_field(&req, "to").unwrap(), 500);
        assert_eq!(opt_int_field(&req, "window").unwrap(), None);
        assert!(parse_request("[1, 2]").is_err());
        assert!(parse_request("{nope").is_err());
    }
}
