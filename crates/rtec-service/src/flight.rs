//! Slow-tick flight recorder: a fixed-size ring of recent per-tick
//! traces, promoted to structured JSON dumps when something goes wrong.
//!
//! Every profiled tick records a [`TickTrace`] — the per-rule cost
//! delta attributed to that tick, queue depths, reorder-buffer state
//! and shed counts — into a bounded ring. The ring costs a few KB per
//! session and is pure telemetry: it never feeds back into
//! recognition, is not checkpointed, and dies with the session.
//!
//! Two conditions promote traces to retained JSON dumps:
//!
//! * a tick slower than [`crate::session::SessionConfig::slow_tick_ms`]
//!   promotes *that tick's* trace (what was the session doing when it
//!   was slow?);
//! * a shard-worker respawn dumps the *whole ring* (what led up to the
//!   crash?).
//!
//! Dumps are JSON documents, logged through [`rtec_obs`] at warn level
//! and retained (bounded) on the session for the `profile` wire
//! command and post-mortem tests.

use rtec_obs::profile::ProfileEntry;
use serde_json::Value;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Traces retained in the ring.
pub const RING_CAPACITY: usize = 32;

/// Promoted dumps retained per session (oldest evicted first).
pub const DUMP_CAPACITY: usize = 8;

/// Everything the recorder knows about one completed tick.
#[derive(Clone, Debug, Default)]
pub struct TickTrace {
    /// 1-based tick ordinal within the session.
    pub tick: u64,
    /// The tick's horizon (`to`).
    pub to: rtec::Timepoint,
    /// Wall-clock time of the tick, microseconds.
    pub elapsed_us: u64,
    /// Per-rule cost delta attributed to this tick (merged across
    /// shards), sorted by self-time descending.
    pub rules: Vec<ProfileEntry>,
    /// Per-shard queue depths sampled right after the tick.
    pub queue_depths: Vec<usize>,
    /// Events held in the reorder buffer after the tick.
    pub reorder_buffered: usize,
    /// Reorder watermark lag after the tick (absent without a buffer).
    pub watermark_lag: Option<rtec::Timepoint>,
    /// Ingest operations shed since the previous tick.
    pub shed: u64,
    /// Whether the tick overran its deadline.
    pub degraded: bool,
}

impl TickTrace {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("tick".to_string(), u64_value(self.tick));
        map.insert("to".to_string(), Value::from(self.to));
        map.insert("elapsed_us".to_string(), u64_value(self.elapsed_us));
        map.insert(
            "rules".to_string(),
            Value::Array(
                self.rules
                    .iter()
                    .map(|e| {
                        let mut rule = BTreeMap::new();
                        rule.insert("rule".to_string(), Value::from(e.name.as_str()));
                        rule.insert("kind".to_string(), Value::from(e.kind.as_str()));
                        rule.insert("calls".to_string(), u64_value(e.cost.calls));
                        rule.insert("self_us".to_string(), u64_value(e.cost.self_us()));
                        rule.insert("interval_ops".to_string(), u64_value(e.cost.interval_ops));
                        Value::Object(rule.into_iter().collect())
                    })
                    .collect(),
            ),
        );
        map.insert(
            "queue_depths".to_string(),
            Value::Array(
                self.queue_depths
                    .iter()
                    .map(|&d| u64_value(d as u64))
                    .collect(),
            ),
        );
        map.insert(
            "reorder_buffered".to_string(),
            u64_value(self.reorder_buffered as u64),
        );
        map.insert(
            "watermark_lag".to_string(),
            match self.watermark_lag {
                Some(lag) => Value::from(lag),
                None => Value::Null,
            },
        );
        map.insert("shed".to_string(), u64_value(self.shed));
        map.insert("degraded".to_string(), Value::Bool(self.degraded));
        Value::Object(map.into_iter().collect())
    }
}

/// The bounded trace ring plus its promoted dumps.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    ring: VecDeque<TickTrace>,
    dumps: Vec<String>,
    dumps_evicted: u64,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// Records one tick's trace, evicting the oldest past capacity.
    pub fn record(&mut self, trace: TickTrace) {
        if self.ring.len() == RING_CAPACITY {
            self.ring.pop_front();
        }
        self.ring.push_back(trace);
    }

    /// Traces currently held (oldest first).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Promotes the most recent trace (the offending slow tick) to a
    /// retained JSON dump and returns it.
    pub fn dump_last(&mut self, session: &str, reason: &str) -> Option<String> {
        let trace = self.ring.back()?.to_value();
        Some(self.retain_dump(session, reason, Value::Array(vec![trace])))
    }

    /// Promotes the whole ring (the lead-up to a crash) to a retained
    /// JSON dump and returns it. Dumps an empty ring too — "nothing was
    /// recorded" is itself evidence.
    pub fn dump_ring(&mut self, session: &str, reason: &str) -> String {
        let traces = Value::Array(self.ring.iter().map(TickTrace::to_value).collect());
        self.retain_dump(session, reason, traces)
    }

    fn retain_dump(&mut self, session: &str, reason: &str, traces: Value) -> String {
        let mut doc = BTreeMap::new();
        doc.insert("session".to_string(), Value::from(session));
        doc.insert("reason".to_string(), Value::from(reason));
        doc.insert("traces".to_string(), traces);
        let dump = serde_json::to_string(&Value::Object(doc.into_iter().collect()))
            .unwrap_or_else(|_| "{}".into());
        if self.dumps.len() == DUMP_CAPACITY {
            self.dumps.remove(0);
            self.dumps_evicted += 1;
        }
        self.dumps.push(dump.clone());
        dump
    }

    /// Retained dumps, oldest first.
    pub fn dumps(&self) -> &[String] {
        &self.dumps
    }

    /// Dumps evicted from the bounded retention list.
    pub fn dumps_evicted(&self) -> u64 {
        self.dumps_evicted
    }
}

fn u64_value(n: u64) -> Value {
    Value::from(i64::try_from(n).unwrap_or(i64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtec_obs::profile::{RuleCost, RuleKind};

    fn trace(tick: u64, elapsed_us: u64) -> TickTrace {
        TickTrace {
            tick,
            to: tick as rtec::Timepoint * 10,
            elapsed_us,
            rules: vec![ProfileEntry {
                name: "f/1".to_string(),
                kind: RuleKind::Simple,
                cost: RuleCost {
                    calls: 1,
                    self_ns: elapsed_us * 1_000,
                    interval_ops: 2,
                },
            }],
            queue_depths: vec![0, 3],
            reorder_buffered: 1,
            watermark_lag: Some(5),
            shed: 0,
            degraded: false,
        }
    }

    #[test]
    fn ring_is_bounded_and_fifo() {
        let mut fr = FlightRecorder::new();
        for i in 0..(RING_CAPACITY as u64 + 5) {
            fr.record(trace(i + 1, 100));
        }
        assert_eq!(fr.len(), RING_CAPACITY);
        let dump = fr.dump_ring("s", "test");
        let v: Value = serde_json::from_str(&dump).unwrap();
        let traces = v["traces"].as_array().unwrap();
        assert_eq!(traces.len(), RING_CAPACITY);
        // Oldest retained trace is #6 (the first five were evicted).
        assert_eq!(traces[0]["tick"], 6);
        assert_eq!(traces.last().unwrap()["tick"], RING_CAPACITY as u64 + 5);
    }

    #[test]
    fn dump_last_promotes_the_offending_tick() {
        let mut fr = FlightRecorder::new();
        assert!(fr.dump_last("s", "slow_tick").is_none(), "empty ring");
        fr.record(trace(1, 50));
        fr.record(trace(2, 9_000));
        let dump = fr.dump_last("s", "slow_tick").unwrap();
        let v: Value = serde_json::from_str(&dump).unwrap();
        assert_eq!(v["reason"], "slow_tick");
        assert_eq!(v["session"], "s");
        let traces = v["traces"].as_array().unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0]["tick"], 2);
        assert_eq!(traces[0]["elapsed_us"], 9_000);
        assert_eq!(traces[0]["rules"][0]["rule"], "f/1");
        assert_eq!(traces[0]["rules"][0]["kind"], "simple");
        assert_eq!(traces[0]["queue_depths"][1], 3);
        assert_eq!(fr.dumps().len(), 1);
    }

    #[test]
    fn dump_retention_is_bounded() {
        let mut fr = FlightRecorder::new();
        fr.record(trace(1, 10));
        for _ in 0..(DUMP_CAPACITY + 3) {
            fr.dump_ring("s", "respawn");
        }
        assert_eq!(fr.dumps().len(), DUMP_CAPACITY);
        assert_eq!(fr.dumps_evicted(), 3);
    }
}
