//! Seeded chaos sweep: [`FaultPlan::random`] derives a schedule of
//! worker panics, queue rejections, and checkpoint I/O faults from a
//! single `u64` seed; the same scripted workload is then driven through
//! a `Registry` under that plan. Whatever the plan does, the service
//! must either converge to the fault-free output (clients retry
//! rejected frames once) or quarantine the session with structured
//! errors — it must never panic and never return a malformed reply.
//!
//! The CI `chaos` job sweeps fixed seeds via `RTEC_CHAOS_SEED`, plus
//! one random seed whose value is logged so failures reproduce.

#![cfg(feature = "testkit")]

use rtec_service::fault::with_plan;
use rtec_service::{FaultPlan, Registry};
use serde_json::Value;
use std::path::PathBuf;

const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                    terminatedAt(on(X)=true, T) :- happensAt(down(X), T).";

const TICK_EVERY: i64 = 50;
const TICKS: i64 = 6;

/// One tick's worth of events: alternating `up`/`down` over three
/// entities, deterministic in `t`.
fn events_for_tick(k: i64) -> Vec<(i64, String)> {
    (k * TICK_EVERY..(k + 1) * TICK_EVERY)
        .map(|t| {
            let entity = ["a", "b", "c"][(t % 3) as usize];
            let ev = if t % 10 < 5 { "up" } else { "down" };
            (t, format!("{ev}({entity})"))
        })
        .collect()
}

/// What a workload run observed: the sorted query rows after each
/// completed tick, which ticks were checkpointed to disk, and any
/// structured errors the client saw (after one retry each).
#[derive(Debug, Default)]
struct Outcome {
    tick_rows: Vec<Vec<(String, String)>>,
    checkpointed: Vec<bool>,
    errors: Vec<String>,
    quarantined: bool,
}

fn parse_reply(raw: &str) -> Value {
    let v: Value =
        serde_json::from_str(raw).unwrap_or_else(|e| panic!("malformed reply {raw:?}: {e}"));
    assert!(v.get("ok").is_some(), "reply without ok: {raw:?}");
    if v["ok"] == false {
        assert!(
            v["code"].as_str().is_some_and(|c| !c.is_empty()),
            "error reply without code: {raw:?}"
        );
    }
    v
}

/// Dispatches `line`, retrying once on a structured error (the client
/// model for transient faults: one retry, then give up).
fn dispatch_retry(registry: &Registry, line: &str, outcome: &mut Outcome) -> Option<Value> {
    for attempt in 0..2 {
        let v = parse_reply(&registry.dispatch(line));
        if v["ok"] == true {
            return Some(v);
        }
        if v["code"] == "quarantined" || v["error"].as_str().unwrap_or("").contains("quarantined") {
            outcome.quarantined = true;
            outcome.errors.push(format!("{:?}", v["error"]));
            return None;
        }
        if attempt == 1 {
            outcome.errors.push(format!("{:?}", v["error"]));
        }
    }
    None
}

fn query_rows(registry: &Registry, session: &str) -> Option<Vec<(String, String)>> {
    let v = parse_reply(
        &registry.dispatch(&format!("{{\"cmd\":\"query\",\"session\":\"{session}\"}}")),
    );
    if v["ok"] != true {
        return None;
    }
    let mut rows: Vec<(String, String)> = v["rows"]
        .as_array()?
        .iter()
        .map(|r| {
            (
                r["fvp"].as_str().unwrap_or_default().to_string(),
                r["intervals"].as_str().unwrap_or_default().to_string(),
            )
        })
        .collect();
    rows.sort();
    Some(rows)
}

/// Drives the scripted workload through `registry`: per tick, feed the
/// events (retried once on rejection), tick, and query.
fn run_workload(registry: &Registry, session: &str) -> Outcome {
    let mut outcome = Outcome::default();
    let open = format!(
        "{{\"cmd\":\"open\",\"session\":\"{session}\",\"description\":{},\"shards\":2,\"window\":{TICK_EVERY}}}",
        serde_json::to_string(&Value::from(DESC)).unwrap()
    );
    if dispatch_retry(registry, &open, &mut outcome).is_none() {
        return outcome;
    }
    for k in 0..TICKS {
        for (t, ev) in events_for_tick(k) {
            let line = format!(
                "{{\"cmd\":\"event\",\"session\":\"{session}\",\"t\":{t},\"event\":\"{ev}\"}}"
            );
            dispatch_retry(registry, &line, &mut outcome);
            if outcome.quarantined {
                return outcome;
            }
        }
        let tick = format!(
            "{{\"cmd\":\"tick\",\"session\":\"{session}\",\"to\":{}}}",
            (k + 1) * TICK_EVERY
        );
        match dispatch_retry(registry, &tick, &mut outcome) {
            Some(v) => outcome
                .checkpointed
                .push(v["checkpointed"].as_bool().unwrap_or(false)),
            None => return outcome,
        }
        match query_rows(registry, session) {
            Some(rows) => outcome.tick_rows.push(rows),
            None => return outcome,
        }
    }
    outcome
}

fn chaos_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("rtec-chaos-{}-{seed}", std::process::id()))
}

fn run_seed(seed: u64, reference: &Outcome) {
    let dir = chaos_dir(seed);
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan::random(seed, 2, 150);
    eprintln!("chaos seed {seed}: plan {plan:?}");

    let registry = Registry::with_options(Some(dir.clone()), None);
    let (outcome, injected) = with_plan(plan, || run_workload(&registry, "chaos"));
    eprintln!(
        "chaos seed {seed}: injected {injected} fault(s), {} error(s), quarantined={}",
        outcome.errors.len(),
        outcome.quarantined
    );

    if outcome.quarantined {
        // Quarantine must be reported in stats and be terminal.
        let v = parse_reply(&registry.dispatch("{\"cmd\":\"stats\",\"session\":\"chaos\"}"));
        assert_ne!(v["quarantined"], Value::Null, "seed {seed}: {v:?}");
    } else {
        // Convergence: with every rejected frame retried once, the
        // faulted run's per-tick outputs are byte-identical to the
        // fault-free reference.
        assert!(
            outcome.errors.is_empty(),
            "seed {seed}: unrecovered errors: {:?}",
            outcome.errors
        );
        assert_eq!(
            outcome.tick_rows, reference.tick_rows,
            "seed {seed}: outputs diverged from the fault-free run"
        );
        // Crash-equivalent restore: a fresh registry restoring the last
        // on-disk checkpoint sees exactly the output the original
        // session had at that tick boundary.
        if let Some(last) = outcome
            .checkpointed
            .iter()
            .rposition(|&checkpointed| checkpointed)
        {
            let restored = Registry::with_options(Some(dir.clone()), None);
            let v = parse_reply(&restored.dispatch("{\"cmd\":\"restore\",\"session\":\"chaos\"}"));
            assert_eq!(v["ok"], true, "seed {seed}: restore failed: {v:?}");
            let rows = query_rows(&restored, "chaos").expect("restored session answers queries");
            assert_eq!(
                rows, outcome.tick_rows[last],
                "seed {seed}: restored output differs from checkpointed tick {last}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_chaos_sweep_converges_or_quarantines() {
    // The fault-free reference (no plan installed — hooks are inert).
    let reference = run_workload(&Registry::new(), "reference");
    assert_eq!(reference.tick_rows.len() as i64, TICKS);
    assert!(reference.errors.is_empty(), "{:?}", reference.errors);
    assert!(!reference.tick_rows.last().unwrap().is_empty());

    // One seed from the environment (the CI matrix), or a fixed local
    // sweep when unset.
    let seeds: Vec<u64> = match std::env::var("RTEC_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("RTEC_CHAOS_SEED must be a u64")],
        Err(_) => (1..=8).collect(),
    };
    for seed in seeds {
        run_seed(seed, &reference);
    }
}
