//! Seeded ingest fuzz: a sorted event feed is shuffled within the
//! reorder slack, sprinkled with duplicates and corrupt records, and
//! driven through the wire protocol. The session must converge to the
//! exact output of the clean sorted run, with every refusal accounted
//! for in the dead-letter ledger — and admission control must shed
//! structured `overloaded` errors under a 10× budget flood without ever
//! wedging the session.
//!
//! The CI `ingest-fuzz` job sweeps fixed seeds via `RTEC_INGEST_SEED`;
//! locally the test sweeps 101..=104.

use rtec_service::Registry;
use serde_json::Value;

const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                    terminatedAt(on(X)=true, T) :- happensAt(down(X), T).";

const SLACK: i64 = 20;
const LAST_T: i64 = 200;
const HORIZON: i64 = 240;

/// Deterministic xorshift64, so a failing seed reproduces exactly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn parse_reply(raw: &str) -> Value {
    let v: Value =
        serde_json::from_str(raw).unwrap_or_else(|e| panic!("malformed reply {raw:?}: {e}"));
    assert!(v.get("ok").is_some(), "reply without ok: {raw:?}");
    v
}

fn dispatch(registry: &Registry, line: &str) -> Value {
    parse_reply(&registry.dispatch(line))
}

fn open(registry: &Registry, session: &str, extra: &str) {
    let line = format!(
        "{{\"cmd\":\"open\",\"session\":\"{session}\",\"description\":{}{extra}}}",
        serde_json::to_string(&Value::from(DESC)).unwrap()
    );
    let v = dispatch(registry, &line);
    assert_eq!(v["ok"], true, "open failed: {v:?}");
}

fn send_event(registry: &Registry, session: &str, t: i64, event: &str) -> Value {
    dispatch(
        registry,
        &format!("{{\"cmd\":\"event\",\"session\":\"{session}\",\"t\":{t},\"event\":\"{event}\"}}"),
    )
}

fn tick(registry: &Registry, session: &str, to: i64) -> Value {
    let v = dispatch(
        registry,
        &format!("{{\"cmd\":\"tick\",\"session\":\"{session}\",\"to\":{to}}}"),
    );
    assert_eq!(v["ok"], true, "tick failed: {v:?}");
    v
}

fn query_rows(registry: &Registry, session: &str) -> Vec<(String, String)> {
    let v = dispatch(
        registry,
        &format!("{{\"cmd\":\"query\",\"session\":\"{session}\"}}"),
    );
    assert_eq!(v["ok"], true, "query failed: {v:?}");
    let mut rows: Vec<(String, String)> = v["rows"]
        .as_array()
        .expect("rows array")
        .iter()
        .map(|r| {
            (
                r["fvp"].as_str().unwrap_or_default().to_string(),
                r["intervals"].as_str().unwrap_or_default().to_string(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn deadletter_counts(registry: &Registry, session: &str) -> Value {
    let v = dispatch(
        registry,
        &format!("{{\"cmd\":\"deadletter\",\"session\":\"{session}\"}}"),
    );
    assert_eq!(v["ok"], true, "deadletter failed: {v:?}");
    v
}

/// The clean feed: one `up`/`down` event per timepoint, deterministic
/// in the seed, sorted by time.
fn sorted_feed(rng: &mut Rng) -> Vec<(i64, String)> {
    (0..LAST_T)
        .map(|t| {
            let entity = ["a", "b", "c"][(rng.next() % 3) as usize];
            let ev = if rng.next().is_multiple_of(2) {
                "up"
            } else {
                "down"
            };
            (t, format!("{ev}({entity})"))
        })
        .collect()
}

/// The reference output: the same feed, sorted, through a plain session.
fn gold_rows(feed: &[(i64, String)]) -> Vec<(String, String)> {
    let registry = Registry::new();
    open(&registry, "gold", "");
    for (t, ev) in feed {
        let v = send_event(&registry, "gold", *t, ev);
        assert_eq!(v["ok"], true, "gold ingest failed: {v:?}");
    }
    tick(&registry, "gold", HORIZON);
    query_rows(&registry, "gold")
}

fn run_seed(seed: u64) {
    let mut rng = Rng::new(seed);
    let feed = sorted_feed(&mut rng);
    let gold = gold_rows(&feed);
    assert!(!gold.is_empty(), "seed {seed}: degenerate gold output");

    // Shuffle within the slack: sort stably by `t + delay`, so no event
    // arrives more than SLACK timepoints behind the frontier.
    let mut keyed: Vec<(i64, usize)> = feed
        .iter()
        .enumerate()
        .map(|(i, &(t, _))| (t + (rng.next() % (SLACK as u64 + 1)) as i64, i))
        .collect();
    keyed.sort();

    let registry = Registry::new();
    open(
        &registry,
        "fuzz",
        &format!(",\"reorder_slack\":{SLACK},\"dedup\":true"),
    );

    let mut expected_duplicates = 0u64;
    let mut expected_malformed = 0u64;
    let mut last_tick = -1i64;
    for &(key, i) in &keyed {
        // Intermediate ticks at key boundaries: every unsent event has
        // sort key >= this one, hence timestamp >= key - SLACK, so
        // ticking to key - SLACK - 1 can never orphan an in-slack event.
        let safe_to = key - SLACK - 1;
        if safe_to >= last_tick + 30 {
            tick(&registry, "fuzz", safe_to);
            last_tick = safe_to;
        }
        let (t, ref ev) = feed[i];
        let v = send_event(&registry, "fuzz", t, ev);
        assert_eq!(v["ok"], true, "seed {seed}: refused {v:?}");
        assert_eq!(v.get("accepted"), None, "seed {seed}: not accepted {v:?}");
        match rng.next() % 8 {
            // Duplicate the arrival: refused as an ok-frame, reason-coded.
            0 | 1 => {
                let v = send_event(&registry, "fuzz", t, ev);
                assert_eq!(v["ok"], true, "seed {seed}: {v:?}");
                assert_eq!(v["accepted"], false, "seed {seed}: {v:?}");
                assert_eq!(v["reason"], "duplicate", "seed {seed}: {v:?}");
                expected_duplicates += 1;
            }
            // Corrupt record: a structured parse error, ledgered as
            // malformed; the session keeps going.
            2 => {
                let v = send_event(&registry, "fuzz", t, "broken((");
                assert_eq!(v["ok"], false, "seed {seed}: {v:?}");
                assert!(v["code"].as_str().is_some(), "seed {seed}: {v:?}");
                expected_malformed += 1;
            }
            _ => {}
        }
    }
    tick(&registry, "fuzz", HORIZON);

    // Headline: byte-identical recognition despite the chaos.
    assert_eq!(
        query_rows(&registry, "fuzz"),
        gold,
        "seed {seed}: output diverged from the sorted run"
    );

    // Every refusal is accounted for, with the expected reasons only.
    let dl = deadletter_counts(&registry, "fuzz");
    assert_eq!(
        dl["counts"]["duplicate"], expected_duplicates as i64,
        "{dl:?}"
    );
    assert_eq!(
        dl["counts"]["malformed"], expected_malformed as i64,
        "{dl:?}"
    );
    assert_eq!(dl["counts"]["late"], 0i64, "seed {seed}: {dl:?}");
    assert_eq!(dl["counts"]["past_horizon"], 0i64, "seed {seed}: {dl:?}");
    assert_eq!(dl["counts"]["shed"], 0i64, "seed {seed}: {dl:?}");
    assert_eq!(
        dl["total"],
        (expected_duplicates + expected_malformed) as i64,
        "seed {seed}: {dl:?}"
    );
    let records = dl["records"].as_array().expect("records array");
    assert_eq!(
        records.len() as u64,
        (expected_duplicates + expected_malformed).min(100),
        "seed {seed}: default limit is 100"
    );

    let close = dispatch(&registry, "{\"cmd\":\"close\",\"session\":\"fuzz\"}");
    assert_eq!(close["ok"], true, "{close:?}");
}

#[test]
fn shuffled_duplicated_corrupted_feed_converges() {
    let seeds: Vec<u64> = match std::env::var("RTEC_INGEST_SEED") {
        Ok(s) => vec![s.parse().expect("RTEC_INGEST_SEED must be a u64")],
        Err(_) => (101..=104).collect(),
    };
    for seed in seeds {
        run_seed(seed);
    }
}

/// Admission control under a 10× flood of the per-tick event budget:
/// the first `budget` events are admitted, the rest shed as structured
/// `overloaded` errors; the tick reply reports the shed count (and the
/// deadline overrun), and the session admits events again afterwards —
/// it never deadlocks or quarantines.
#[test]
fn overload_sheds_structurally_and_recovers() {
    let registry = Registry::new();
    open(
        &registry,
        "flood",
        ",\"max_events_per_tick\":40,\"tick_deadline_ms\":0",
    );

    let mut accepted = 0u64;
    let mut shed = 0u64;
    for t in 0..400 {
        let v = send_event(&registry, "flood", t, "up(a)");
        if v["ok"] == true {
            accepted += 1;
        } else {
            assert_eq!(v["code"], "overloaded", "{v:?}");
            assert!(
                v["error"].as_str().unwrap_or_default().contains("budget"),
                "{v:?}"
            );
            shed += 1;
        }
    }
    assert_eq!(accepted, 40, "budget admits exactly max_events_per_tick");
    assert_eq!(shed, 360, "10x flood: everything past the budget sheds");

    // The tick accounts for the shed load; with a 0ms deadline over a
    // real workload it also reports the overrun.
    let v = tick(&registry, "flood", 500);
    assert_eq!(v["shed"], 360i64, "{v:?}");
    assert!(v["degraded"].as_bool().is_some(), "{v:?}");

    // Ledger: the sheds are reason-coded, with the record ring capped
    // (session cap 1024) while counts stay exact.
    let dl = deadletter_counts(&registry, "flood");
    assert_eq!(dl["counts"]["shed"], 360i64, "{dl:?}");

    // Recovery: the tick reset the budget, the session is still live.
    let v = send_event(&registry, "flood", 600, "up(a)");
    assert_eq!(v["ok"], true, "post-flood ingest: {v:?}");
    let v = tick(&registry, "flood", 700);
    assert_eq!(v["shed"], 0i64, "{v:?}");

    let stats = dispatch(&registry, "{\"cmd\":\"stats\",\"session\":\"flood\"}");
    assert_eq!(stats["shed"], 360i64, "{stats:?}");
    assert_eq!(stats["quarantined"], Value::Null, "{stats:?}");
}

/// The buffered-bytes budget: with a reorder buffer held back by slack
/// and a tiny byte budget, a flood sheds once the buffer fills, and a
/// tick (which drains the buffer) restores admission.
#[test]
fn buffered_bytes_budget_sheds_and_drains() {
    let registry = Registry::new();
    open(
        &registry,
        "bytes",
        ",\"reorder_slack\":1000,\"max_buffered_bytes\":2048",
    );

    let mut first_shed = None;
    for t in 0..2000 {
        let v = send_event(&registry, "bytes", t, "up(a)");
        if v["ok"] == false {
            assert_eq!(v["code"], "overloaded", "{v:?}");
            assert!(
                v["error"].as_str().unwrap_or_default().contains("bytes"),
                "{v:?}"
            );
            first_shed = Some(t);
            break;
        }
    }
    let first_shed = first_shed.expect("a 2KiB budget must fill well before 2000 events");
    assert!(first_shed > 0, "the first event must be admitted");

    // Ticking drains the buffer past the watermark, freeing budget.
    tick(&registry, "bytes", first_shed + 2000);
    let v = send_event(&registry, "bytes", first_shed + 2001, "up(a)");
    assert_eq!(v["ok"], true, "post-drain ingest: {v:?}");

    let dl = deadletter_counts(&registry, "bytes");
    assert_eq!(dl["counts"]["shed"], 1i64, "{dl:?}");
}
