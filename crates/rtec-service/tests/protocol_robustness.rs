//! Protocol hardening: a corpus of malformed NDJSON frames — truncated
//! JSON, wrong field types, missing fields, huge and deeply nested
//! terms, invalid UTF-8, unknown commands, oversized lines — must never
//! panic the server. Every bad frame gets a structured `error` reply
//! with a machine-readable `code`, only the offending request is
//! rejected, and subsequent valid frames on the same connection keep
//! working.

use rtec_service::{serve_stdio, Registry, Server, ServerConfig, MAX_FRAME};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                    terminatedAt(on(X)=true, T) :- happensAt(down(X), T).";

fn open_frame(session: &str) -> String {
    format!(
        "{{\"cmd\":\"open\",\"session\":{},\"description\":{}}}",
        serde_json::to_string(&Value::from(session)).unwrap(),
        serde_json::to_string(&Value::from(DESC)).unwrap()
    )
}

/// Malformed frames that must each draw an `{"ok":false,"code":...}`
/// reply. The comments name what each one probes.
fn corpus() -> Vec<Vec<u8>> {
    let mut frames: Vec<Vec<u8>> = [
        // Not JSON at all.
        "garbage",
        "{",
        "{\"cmd\":",
        "{\"cmd\":\"open\"",
        // Valid JSON, wrong shape.
        "[]",
        "[1,2,3]",
        "\"just a string\"",
        "null",
        "123",
        "true",
        // Objects without a usable command.
        "{}",
        "{\"cmd\":42}",
        "{\"cmd\":null}",
        "{\"cmd\":[\"open\"]}",
        "{\"session\":\"s\"}",
        // Unknown commands (the protocol is case-sensitive).
        "{\"cmd\":\"zap\"}",
        "{\"cmd\":\"OPEN\"}",
        // open: missing/ill-typed fields, bad description, duplicate.
        "{\"cmd\":\"open\"}",
        "{\"cmd\":\"open\",\"session\":\"x\"}",
        "{\"cmd\":\"open\",\"session\":9,\"description\":\"d\"}",
        "{\"cmd\":\"open\",\"session\":\"x\",\"description\":\"((((\"}",
        // open: descriptions that parse but fail semantic analysis
        // (undefined fluent under declarations; dependency cycle).
        "{\"cmd\":\"open\",\"session\":\"x\",\"description\":\"inputEvent(up/1). initiatedAt(on(X)=true, T) :- happensAt(up(X), T), holdsAt(ghost(X)=true, T).\"}",
        "{\"cmd\":\"open\",\"session\":\"x\",\"description\":\"initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T). initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).\"}",
        // event: missing fields, ghost session, wrong types, bad term.
        "{\"cmd\":\"event\"}",
        "{\"cmd\":\"event\",\"session\":\"ghost\",\"t\":1,\"event\":\"up(a)\"}",
        "{\"cmd\":\"event\",\"session\":\"s\",\"t\":\"one\",\"event\":\"up(a)\"}",
        "{\"cmd\":\"event\",\"session\":\"s\",\"event\":\"up(a)\"}",
        "{\"cmd\":\"event\",\"session\":\"s\",\"t\":2,\"event\":\"((((\"}",
        // batch / tick / query / close / restore edge cases.
        "{\"cmd\":\"batch\",\"session\":\"s\",\"events\":42}",
        "{\"cmd\":\"batch\",\"session\":\"s\",\"events\":[{\"t\":1}]}",
        "{\"cmd\":\"tick\",\"session\":\"s\"}",
        "{\"cmd\":\"tick\",\"session\":\"s\",\"to\":3.5}",
        "{\"cmd\":\"query\"}",
        "{\"cmd\":\"close\",\"session\":\"ghost\"}",
        "{\"cmd\":\"restore\",\"session\":\"x\"}",
    ]
    .into_iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();
    // Invalid UTF-8.
    frames.push(vec![0xff, 0xfe, 0xfd]);
    frames.push(b"{\"cmd\":\"ev\xc3\x28\"}".to_vec());
    // Huge non-JSON line (under the frame limit).
    frames.push(vec![b'x'; 100_000]);
    // A frame over the 1 MiB limit.
    frames.push(vec![b'a'; MAX_FRAME + 100]);
    frames
}

#[test]
fn malformed_corpus_gets_structured_errors_and_session_survives() {
    let registry = Registry::new();
    let corpus = corpus();
    assert!(corpus.len() >= 30, "corpus should stay substantial");

    let mut input: Vec<u8> = Vec::new();
    // A valid session first; the barrage must not disturb it.
    input.extend_from_slice(open_frame("s").as_bytes());
    input.push(b'\n');
    for frame in &corpus {
        input.extend_from_slice(frame);
        input.push(b'\n');
    }
    // Blank lines are skipped without a reply.
    input.extend_from_slice(b"\n   \n");
    // The session still works after every bad frame.
    for line in [
        "{\"cmd\":\"event\",\"session\":\"s\",\"t\":5,\"event\":\"up(a)\"}",
        "{\"cmd\":\"tick\",\"session\":\"s\",\"to\":10}",
        "{\"cmd\":\"query\",\"session\":\"s\"}",
        "{\"cmd\":\"stats\",\"session\":\"s\"}",
        "{\"cmd\":\"close\",\"session\":\"s\"}",
        "{\"cmd\":\"shutdown\"}",
    ] {
        input.extend_from_slice(line.as_bytes());
        input.push(b'\n');
    }

    let mut out = Vec::new();
    serve_stdio(&registry, &input[..], &mut out).unwrap();
    let replies: Vec<Value> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad reply {l:?}: {e}")))
        .collect();
    assert_eq!(replies.len(), 1 + corpus.len() + 6, "one reply per frame");

    assert_eq!(replies[0]["ok"], true, "open: {:?}", replies[0]);
    for (i, reply) in replies[1..=corpus.len()].iter().enumerate() {
        assert_eq!(reply["ok"], false, "corpus[{i}] must error: {reply:?}");
        let code = reply["code"]
            .as_str()
            .unwrap_or_else(|| panic!("corpus[{i}] reply lacks a string code: {reply:?}"));
        assert!(!code.is_empty(), "corpus[{i}]");
        let msg = reply["error"].as_str().unwrap_or_default();
        assert!(!msg.is_empty(), "corpus[{i}] reply lacks a message");
    }

    let tail = &replies[1 + corpus.len()..];
    assert!(
        tail.iter().all(|v| v["ok"] == true),
        "valid frames after the barrage must still succeed: {tail:?}"
    );
    // query still recognises the activity fed after the barrage.
    assert_eq!(tail[2]["rows"][0]["fvp"], "on(a)=true");
    // The per-session rejection counter saw the frames that named "s";
    // the session itself was never quarantined.
    let stats = &tail[3];
    assert!(stats["frames_rejected"].as_i64().unwrap() >= 3, "{stats:?}");
    assert_eq!(stats["quarantined"], Value::Null, "{stats:?}");
    assert_eq!(stats["worker_restarts"].as_i64(), Some(0), "{stats:?}");
}

#[test]
fn specific_codes_are_stable() {
    let registry = Registry::new();
    let case = |line: &str, want: &str| {
        let v: Value = serde_json::from_str(&registry.dispatch(line)).unwrap();
        assert_eq!(v["ok"], false, "{line}: {v:?}");
        assert_eq!(v["code"], want, "{line}: {v:?}");
    };
    case("garbage", "bad_frame");
    case("{\"cmd\":\"zap\"}", "unknown_command");
    case(
        "{\"cmd\":\"event\",\"session\":\"ghost\",\"t\":1,\"event\":\"up(a)\"}",
        "no_such_session",
    );
    case("{\"cmd\":\"open\"}", "bad_request");
    let open = open_frame("dup");
    let v: Value = serde_json::from_str(&registry.dispatch(&open)).unwrap();
    assert_eq!(v["ok"], true);
    case(&open, "session_exists");
}

#[test]
fn semantically_invalid_descriptions_are_rejected_with_diagnostics() {
    let registry = Registry::new();
    let reject = |desc: &str, want_code: &str| -> Value {
        let frame = format!(
            "{{\"cmd\":\"open\",\"session\":\"lint\",\"description\":{}}}",
            serde_json::to_string(&Value::from(desc)).unwrap()
        );
        let v: Value = serde_json::from_str(&registry.dispatch(&frame)).unwrap();
        assert_eq!(v["ok"], false, "{desc}: {v:?}");
        assert_eq!(v["code"], "invalid_description", "{desc}: {v:?}");
        let diags = v["diagnostics"]
            .as_array()
            .unwrap_or_else(|| panic!("{desc}: no diagnostics array: {v:?}"))
            .clone();
        assert!(!diags.is_empty(), "{desc}");
        for d in &diags {
            assert!(
                d["code"].as_str().is_some_and(|c| c.starts_with("RL")),
                "{d:?}"
            );
            assert!(d["severity"].as_str().is_some(), "{d:?}");
            assert!(
                d["message"].as_str().is_some_and(|m| !m.is_empty()),
                "{d:?}"
            );
        }
        assert!(
            diags.iter().any(|d| d["code"] == want_code),
            "{desc}: expected {want_code} in {diags:?}"
        );
        v
    };

    // An undefined fluent is an error once declarations close the schema.
    reject(
        "inputEvent(up/1).\n\
         initiatedAt(on(X)=true, T) :- happensAt(up(X), T), holdsAt(ghost(X)=true, T).",
        "RL0101",
    );
    // A cyclic definition can never stratify.
    reject(
        "initiatedAt(a(X)=true, T) :- happensAt(e(X), T), holdsAt(b(X)=true, T).\n\
         initiatedAt(b(X)=true, T) :- happensAt(e(X), T), holdsAt(a(X)=true, T).",
        "RL0301",
    );

    // The rejected opens must not leave a half-open session behind: the
    // same name opens cleanly with a valid description afterwards.
    let v: Value = serde_json::from_str(&registry.dispatch(&open_frame("lint"))).unwrap();
    assert_eq!(v["ok"], true, "{v:?}");
}

#[test]
fn tcp_connection_survives_binary_garbage() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.serve());

    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut exchange = |bytes: &[u8]| -> Value {
        writer.write_all(bytes).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        serde_json::from_str(line.trim_end()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    };

    // Binary garbage, truncated JSON, then an oversized frame — the
    // connection stays open through all of them.
    let v = exchange(&[0x00, 0xff, 0x13, 0x37]);
    assert_eq!(v["code"], "bad_frame", "{v:?}");
    let v = exchange(b"{\"cmd\":");
    assert_eq!(v["code"], "bad_frame", "{v:?}");
    let v = exchange(&vec![b'z'; MAX_FRAME + 1]);
    assert_eq!(v["code"], "bad_frame", "{v:?}");

    // The same connection still opens and drives a session.
    let v = exchange(open_frame("tcp").as_bytes());
    assert_eq!(v["ok"], true, "{v:?}");
    let v = exchange(b"{\"cmd\":\"event\",\"session\":\"tcp\",\"t\":5,\"event\":\"up(a)\"}");
    assert_eq!(v["ok"], true, "{v:?}");
    let v = exchange(b"{\"cmd\":\"tick\",\"session\":\"tcp\",\"to\":10}");
    assert_eq!(v["ok"], true, "{v:?}");
    let v = exchange(b"{\"cmd\":\"shutdown\"}");
    assert_eq!(v["ok"], true, "{v:?}");
    handle.join().unwrap().unwrap();
}
