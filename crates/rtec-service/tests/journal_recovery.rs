//! Cold-recovery tests for the per-session write-ahead journal.
//!
//! Each test runs a scripted workload against a `Registry` with
//! durable dirs, simulates a crash by dropping the registry without
//! closing the session (no `close`, no `shutdown` — exactly what a
//! SIGKILL leaves behind on disk), then restores into a fresh registry
//! and compares the recognised output against an uninterrupted oracle
//! run of the same feed. The invariant throughout: every *acked*
//! ingest survives, and the restored session's query output and
//! dead-letter accounting are byte-identical to the fault-free run.
//!
//! Corruption cases (truncated tail, bit-flipped frame, duplicated
//! tail) exercise the scan-side recovery rule: fall back to the newest
//! consistent prefix, physically truncate the rest, and never replay a
//! sequence number twice.

use rtec_service::journal::{journal_path, FsyncPolicy};
use rtec_service::Registry;
use serde_json::Value;
use std::path::{Path, PathBuf};

const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                    terminatedAt(on(X)=true, T) :- happensAt(down(X), T).";

const TICK_EVERY: i64 = 50;

fn temp_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("rtec-jrec-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    (base.join("checkpoints"), base.join("journal"))
}

fn registry(cp: &Path, jnl: &Path) -> Registry {
    Registry::with_options(Some(cp.to_path_buf()), None)
        .with_journal(Some(jnl.to_path_buf()), FsyncPolicy::Never)
}

fn dispatch_ok(registry: &Registry, line: &str) -> Value {
    let raw = registry.dispatch(line);
    let v: Value = serde_json::from_str(&raw).expect("reply parses");
    assert_eq!(v["ok"], true, "dispatch {line} -> {raw}");
    v
}

fn open_line(session: &str) -> String {
    format!(
        "{{\"cmd\":\"open\",\"session\":\"{session}\",\"description\":{},\"shards\":2,\"window\":{TICK_EVERY},\"dedup\":true,\"reorder_slack\":0}}",
        serde_json::to_string(&Value::from(DESC)).unwrap()
    )
}

/// The deterministic event feed: alternating up/down over three
/// entities, one event per timestamp.
fn events_for_tick(k: i64) -> Vec<(i64, String)> {
    (k * TICK_EVERY..(k + 1) * TICK_EVERY)
        .map(|t| {
            let entity = ["a", "b", "c"][(t % 3) as usize];
            let ev = if t % 10 < 5 { "up" } else { "down" };
            (t, format!("{ev}({entity})"))
        })
        .collect()
}

fn feed_tick(registry: &Registry, session: &str, k: i64) {
    for (t, ev) in events_for_tick(k) {
        dispatch_ok(
            registry,
            &format!(
                "{{\"cmd\":\"event\",\"session\":\"{session}\",\"t\":{t},\"event\":\"{ev}\"}}"
            ),
        );
    }
}

fn tick(registry: &Registry, session: &str, to: i64) -> Value {
    dispatch_ok(
        registry,
        &format!("{{\"cmd\":\"tick\",\"session\":\"{session}\",\"to\":{to}}}"),
    )
}

fn query_rows(registry: &Registry, session: &str) -> Vec<(String, String)> {
    let v = dispatch_ok(
        registry,
        &format!("{{\"cmd\":\"query\",\"session\":\"{session}\"}}"),
    );
    let mut rows: Vec<(String, String)> = v["rows"]
        .as_array()
        .expect("rows array")
        .iter()
        .map(|r| {
            (
                r["fvp"].as_str().unwrap_or_default().to_string(),
                r["intervals"].as_str().unwrap_or_default().to_string(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn deadletter_counts(registry: &Registry, session: &str) -> Value {
    dispatch_ok(
        registry,
        &format!("{{\"cmd\":\"deadletter\",\"session\":\"{session}\",\"limit\":0}}"),
    )["counts"]
        .clone()
}

/// Fault-free oracle: the same feed through an in-memory registry with
/// the same tick schedule; returns its final sorted query rows.
fn oracle_rows(ticks_fed: i64, final_to: i64) -> Vec<(String, String)> {
    let oracle = Registry::new();
    dispatch_ok(&oracle, &open_line("oracle"));
    for k in 0..ticks_fed {
        feed_tick(&oracle, "oracle", k);
        tick(&oracle, "oracle", (k + 1) * TICK_EVERY);
    }
    // Any events past the last synced tick.
    if final_to > ticks_fed * TICK_EVERY {
        feed_tick(&oracle, "oracle", ticks_fed);
        tick(&oracle, "oracle", final_to);
    }
    query_rows(&oracle, "oracle")
}

#[test]
fn cold_restore_replays_journal_tail_byte_identically() {
    let (cp, jnl) = temp_dirs("tail");
    {
        let r = registry(&cp, &jnl);
        dispatch_ok(&r, &open_line("s"));
        // Two checkpointed ticks, then a tail of acked-but-unticked
        // events that exists only in the journal.
        for k in 0..2 {
            feed_tick(&r, "s", k);
            let v = tick(&r, "s", (k + 1) * TICK_EVERY);
            assert_eq!(v["checkpointed"], true, "{v:?}");
        }
        feed_tick(&r, "s", 2);
        // Crash: drop without close/shutdown.
    }

    let r = registry(&cp, &jnl);
    let v = dispatch_ok(&r, r#"{"cmd":"restore","session":"s"}"#);
    // The journal tail past the newest checkpoint is a full tick of
    // events; all of them replay.
    assert_eq!(v["replayed"], TICK_EVERY, "{v:?}");
    assert_eq!(v["processed_to"], 2 * TICK_EVERY, "{v:?}");
    tick(&r, "s", 3 * TICK_EVERY);
    assert_eq!(query_rows(&r, "s"), oracle_rows(3, 3 * TICK_EVERY));
    let _ = std::fs::remove_dir_all(cp.parent().unwrap());
}

#[test]
fn restore_from_journal_alone_before_first_checkpoint() {
    let (cp, jnl) = temp_dirs("nocp");
    {
        let r = registry(&cp, &jnl);
        dispatch_ok(&r, &open_line("s"));
        feed_tick(&r, "s", 0);
        // Crash before the first tick: no checkpoint exists, only the
        // journal's open record plus the acked events.
    }
    assert!(
        !cp.join("s.session.json").exists(),
        "no checkpoint should exist before the first tick"
    );

    let r = registry(&cp, &jnl);
    let v = dispatch_ok(&r, r#"{"cmd":"restore","session":"s"}"#);
    assert_eq!(v["replayed"], TICK_EVERY, "{v:?}");
    tick(&r, "s", TICK_EVERY);
    assert_eq!(query_rows(&r, "s"), oracle_rows(1, TICK_EVERY));
    let _ = std::fs::remove_dir_all(cp.parent().unwrap());
}

#[test]
fn corrupted_tails_recover_the_newest_consistent_prefix() {
    let (cp, jnl) = temp_dirs("corrupt");
    {
        let r = registry(&cp, &jnl);
        dispatch_ok(&r, &open_line("s"));
        feed_tick(&r, "s", 0);
    }
    let path = journal_path(&jnl, "s");
    let pristine = std::fs::read(&path).unwrap();

    // (a) Torn tail: the last few bytes never hit the disk. Recovery
    // replays everything but the torn final record.
    std::fs::write(&path, &pristine[..pristine.len() - 3]).unwrap();
    {
        // Each sub-case restores from the journal alone: drop any
        // checkpoint the previous sub-case's tick wrote.
        let _ = std::fs::remove_dir_all(&cp);
        let r = registry(&cp, &jnl);
        let v = dispatch_ok(&r, r#"{"cmd":"restore","session":"s"}"#);
        assert_eq!(v["replayed"], TICK_EVERY - 1, "{v:?}");
        tick(&r, "s", TICK_EVERY);
        // The prefix oracle: same feed minus its final event.
        let oracle = Registry::new();
        dispatch_ok(&oracle, &open_line("o"));
        for (t, ev) in events_for_tick(0).iter().take(TICK_EVERY as usize - 1) {
            dispatch_ok(
                &oracle,
                &format!("{{\"cmd\":\"event\",\"session\":\"o\",\"t\":{t},\"event\":\"{ev}\"}}"),
            );
        }
        tick(&oracle, "o", TICK_EVERY);
        assert_eq!(query_rows(&r, "s"), query_rows(&oracle, "o"));
    }

    // (b) Bit flip mid-file: the damaged frame fails its checksum and
    // recovery keeps only the records before it — still a valid
    // prefix, never garbage.
    std::fs::write(&path, &pristine).unwrap();
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x20;
    std::fs::write(&path, &flipped).unwrap();
    {
        let _ = std::fs::remove_dir_all(&cp);
        let r = registry(&cp, &jnl);
        let v = dispatch_ok(&r, r#"{"cmd":"restore","session":"s"}"#);
        let replayed = v["replayed"].as_i64().unwrap();
        assert!(
            (0..TICK_EVERY).contains(&replayed),
            "flip must cost at least the damaged record: {v:?}"
        );
        tick(&r, "s", TICK_EVERY);
        let _ = query_rows(&r, "s"); // must stay queryable
    }

    // (c) Duplicated tail (a retried append that landed twice): replay
    // skips non-increasing sequence numbers, so the outcome is
    // identical to the pristine journal.
    let mut doubled = pristine.clone();
    doubled.extend_from_slice(&pristine);
    std::fs::write(&path, &doubled).unwrap();
    {
        let _ = std::fs::remove_dir_all(&cp);
        let r = registry(&cp, &jnl);
        let v = dispatch_ok(&r, r#"{"cmd":"restore","session":"s"}"#);
        assert_eq!(v["replayed"], TICK_EVERY, "{v:?}");
        tick(&r, "s", TICK_EVERY);
        assert_eq!(query_rows(&r, "s"), oracle_rows(1, TICK_EVERY));
    }
    let _ = std::fs::remove_dir_all(cp.parent().unwrap());
}

#[test]
fn dead_letter_accounting_survives_cold_restore_exactly() {
    let (cp, jnl) = temp_dirs("dl");
    let bad_feed = |r: &Registry, s: &str| {
        // A duplicate (dedup on), a malformed event, and — after the
        // first tick — a late arrival below the watermark. Each lands
        // in the dead-letter ledger with its own reason.
        let _ = r.dispatch(&format!(
            "{{\"cmd\":\"event\",\"session\":\"{s}\",\"t\":10,\"event\":\"up(b)\"}}"
        ));
        let _ = r.dispatch(&format!(
            "{{\"cmd\":\"event\",\"session\":\"{s}\",\"t\":11,\"event\":\"up((\"}}"
        ));
    };
    let drive = |r: &Registry, s: &str| {
        feed_tick(r, s, 0);
        bad_feed(r, s);
        tick(r, s, TICK_EVERY);
        // Late: below the post-tick watermark.
        let _ = r.dispatch(&format!(
            "{{\"cmd\":\"event\",\"session\":\"{s}\",\"t\":1,\"event\":\"up(b)\"}}"
        ));
        feed_tick(r, s, 1);
    };

    {
        let r = registry(&cp, &jnl);
        dispatch_ok(&r, &open_line("s"));
        drive(&r, "s");
    }

    let oracle = Registry::new();
    dispatch_ok(&oracle, &open_line("o"));
    drive(&oracle, "o");
    tick(&oracle, "o", 2 * TICK_EVERY);

    let r = registry(&cp, &jnl);
    dispatch_ok(&r, r#"{"cmd":"restore","session":"s"}"#);
    tick(&r, "s", 2 * TICK_EVERY);
    assert_eq!(
        deadletter_counts(&r, "s"),
        deadletter_counts(&oracle, "o"),
        "dead-letter ledger must replay to exactly the fault-free counts"
    );
    assert_eq!(query_rows(&r, "s"), query_rows(&oracle, "o"));
    let _ = std::fs::remove_dir_all(cp.parent().unwrap());
}

#[test]
fn close_keep_durable_retains_state_for_migration() {
    let (cp, jnl) = temp_dirs("migrate");
    let r = registry(&cp, &jnl);
    dispatch_ok(&r, &open_line("s"));
    feed_tick(&r, "s", 0);
    tick(&r, "s", TICK_EVERY);
    feed_tick(&r, "s", 1);
    // Graceful hand-off: close with keep_durable leaves checkpoint and
    // journal on disk for another process to restore from.
    dispatch_ok(&r, r#"{"cmd":"close","session":"s","keep_durable":true}"#);
    assert!(journal_path(&jnl, "s").exists(), "journal must survive");

    let r2 = registry(&cp, &jnl);
    let v = dispatch_ok(&r2, r#"{"cmd":"restore","session":"s"}"#);
    assert_eq!(v["replayed"], TICK_EVERY, "{v:?}");
    tick(&r2, "s", 2 * TICK_EVERY);
    assert_eq!(query_rows(&r2, "s"), oracle_rows(2, 2 * TICK_EVERY));

    // A plain close deletes both durable artifacts.
    dispatch_ok(&r2, r#"{"cmd":"close","session":"s"}"#);
    assert!(!journal_path(&jnl, "s").exists(), "journal must be gone");
    assert!(
        !cp.join("s.session.json").exists(),
        "checkpoint must be gone"
    );
    let _ = std::fs::remove_dir_all(cp.parent().unwrap());
}

#[cfg(feature = "testkit")]
mod faults {
    use super::*;
    use rtec_service::fault::with_plan;
    use rtec_service::{FaultPlan, IoFaultKind};

    #[test]
    fn torn_checkpoint_write_keeps_journal_coverage() {
        let (cp, jnl) = temp_dirs("torncp");
        let plan = FaultPlan::new().io_fault(1, IoFaultKind::Torn { keep_bytes: 40 });
        let _ = with_plan(plan, || {
            let r = registry(&cp, &jnl);
            dispatch_ok(&r, &open_line("s"));
            feed_tick(&r, "s", 0);
            // The checkpoint write tears mid-file: no rename happens and
            // the journal must NOT rotate, so recovery still sees every
            // acked event.
            let v = tick(&r, "s", TICK_EVERY);
            assert_eq!(v["checkpointed"], false, "{v:?}");
        });

        let r = registry(&cp, &jnl);
        let v = dispatch_ok(&r, r#"{"cmd":"restore","session":"s"}"#);
        assert_eq!(v["replayed"], TICK_EVERY, "{v:?}");
        tick(&r, "s", TICK_EVERY);
        assert_eq!(query_rows(&r, "s"), oracle_rows(1, TICK_EVERY));
        let _ = std::fs::remove_dir_all(cp.parent().unwrap());
    }

    #[test]
    fn journal_write_fault_fails_the_ack_not_the_session() {
        let (cp, jnl) = temp_dirs("jfault");
        let plan = FaultPlan::new().journal_fault(2, IoFaultKind::Error);
        let _ = with_plan(plan, || {
            let r = registry(&cp, &jnl);
            dispatch_ok(&r, &open_line("s"));
            // First journaled write is the open record; the second (the
            // event below) hits the injected error: the client sees a
            // structured error instead of an ack.
            let raw = r.dispatch(r#"{"cmd":"event","session":"s","t":5,"event":"up(a)"}"#);
            let v: Value = serde_json::from_str(&raw).unwrap();
            assert_eq!(v["ok"], false, "{raw}");
            // The session survives and the next append succeeds (the
            // pending frame is retried with the next commit).
            dispatch_ok(&r, r#"{"cmd":"event","session":"s","t":6,"event":"up(b)"}"#);
            tick(&r, "s", TICK_EVERY);
            let rows = query_rows(&r, "s");
            assert!(!rows.is_empty(), "session still recognises: {rows:?}");
        });
        let _ = std::fs::remove_dir_all(cp.parent().unwrap());
    }
}
