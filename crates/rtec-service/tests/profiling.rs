//! Profiler integration: the per-rule profiler must be a pure
//! observer. Toggling it on or off must leave every recognition
//! artefact byte-identical — query rows, warnings, tick replies, and
//! on-disk checkpoint state — for all three evaluators. On top of that the
//! `profile` wire command must report attributed rule costs, the
//! Prometheus exposition must stay valid and bounded in cardinality,
//! and (under `testkit`) a seeded slow tick must promote a
//! flight-recorder dump.

use rtec_service::Registry;
use serde_json::Value;
use std::path::{Path, PathBuf};

const DESC: &str = "initiatedAt(on(X)=true, T) :- happensAt(up(X), T).
                    terminatedAt(on(X)=true, T) :- happensAt(down(X), T).
                    holdsFor(busy(X)=true, I) :- holdsFor(on(X)=true, I).";

const TICK_EVERY: i64 = 40;
const TICKS: i64 = 4;

fn parse_reply(raw: &str) -> Value {
    let v: Value =
        serde_json::from_str(raw).unwrap_or_else(|e| panic!("malformed reply {raw:?}: {e}"));
    assert_eq!(v["ok"], true, "error reply: {raw:?}");
    v
}

fn open_line(session: &str, extra: &str) -> String {
    format!(
        "{{\"cmd\":\"open\",\"session\":\"{session}\",\"description\":{},\"shards\":2,\"window\":{TICK_EVERY}{extra}}}",
        serde_json::to_string(&Value::from(DESC)).unwrap()
    )
}

/// Streams the deterministic workload; returns every tick reply and
/// every post-tick query reply, verbatim.
fn run_workload(registry: &Registry, session: &str, extra: &str) -> (Vec<String>, Vec<String>) {
    parse_reply(&registry.dispatch(&open_line(session, extra)));
    let mut ticks = Vec::new();
    let mut queries = Vec::new();
    for k in 0..TICKS {
        for t in k * TICK_EVERY..(k + 1) * TICK_EVERY {
            let entity = ["a", "b", "c"][(t % 3) as usize];
            let ev = if t % 10 < 5 { "up" } else { "down" };
            let line = format!(
                "{{\"cmd\":\"event\",\"session\":\"{session}\",\"t\":{t},\"event\":\"{ev}({entity})\"}}"
            );
            parse_reply(&registry.dispatch(&line));
        }
        let tick = format!(
            "{{\"cmd\":\"tick\",\"session\":\"{session}\",\"to\":{}}}",
            (k + 1) * TICK_EVERY
        );
        ticks.push(registry.dispatch(&tick));
        queries
            .push(registry.dispatch(&format!("{{\"cmd\":\"query\",\"session\":\"{session}\"}}")));
    }
    (ticks, queries)
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rtec-prof-{tag}-{}", std::process::id()))
}

/// A checkpoint with the profiler *configuration* masked out: the
/// recorded `profile`/`slow_tick_ms` knobs are the one legitimate
/// difference between a profiled and an unprofiled run, so strip them
/// before demanding byte-identity of everything else.
fn normalized_checkpoint(dir: &Path, session: &str) -> String {
    let path = rtec_service::persist::checkpoint_path(dir, session);
    let raw =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read checkpoint {path:?}: {e}"));
    let mut v: Value = serde_json::from_str(&raw).expect("checkpoint is JSON");
    let Value::Object(doc) = &mut v else {
        panic!("checkpoint is not an object");
    };
    // The crc covers the state payload, so it tracks the config flags;
    // drop it along with them.
    doc.remove("crc");
    let Some(Value::Object(state)) = doc.get_mut("state") else {
        panic!("checkpoint has no state object");
    };
    let Some(Value::Object(config)) = state.get_mut("config") else {
        panic!("checkpoint has no config object");
    };
    config.remove("profile");
    config.remove("slow_tick_ms");
    // Queue high-water marks depend on thread scheduling, not on what
    // was recognised — they differ between any two runs.
    if let Some(Value::Object(stats)) = state.get_mut("stats") {
        stats.remove("queue_high_water");
    }
    serde_json::to_string(&v).unwrap()
}

#[test]
fn profiler_toggle_is_output_invariant() {
    for eval in ["interpreter", "plan", "optimized"] {
        let mut runs = Vec::new();
        for profile in [true, false] {
            let tag = format!("{eval}-{profile}");
            let dir = temp_dir(&tag);
            let _ = std::fs::remove_dir_all(&dir);
            let registry = Registry::with_options(Some(dir.clone()), None);
            let extra = format!(",\"eval\":\"{eval}\",\"profile\":{profile}");
            let (ticks, queries) = run_workload(&registry, "inv", &extra);
            let checkpoint = normalized_checkpoint(&dir, "inv");
            let _ = std::fs::remove_dir_all(&dir);
            runs.push((ticks, queries, checkpoint));
        }
        let (on, off) = (&runs[0], &runs[1]);
        assert_eq!(on.0, off.0, "{eval}: tick replies diverged");
        assert_eq!(on.1, off.1, "{eval}: query rows/warnings diverged");
        assert_eq!(on.2, off.2, "{eval}: checkpoint state diverged");
    }
}

#[test]
fn profile_command_reports_attributed_rule_costs() {
    for eval in ["interpreter", "plan", "optimized"] {
        let registry = Registry::new();
        let extra = format!(",\"eval\":\"{eval}\"");
        run_workload(&registry, "prof", &extra);
        let v = parse_reply(&registry.dispatch("{\"cmd\":\"profile\",\"session\":\"prof\"}"));
        assert_eq!(v["evaluator"], eval, "{v:?}");
        assert_eq!(v["enabled"], true, "{v:?}");
        assert!(v["windows"].as_i64().unwrap() >= 1, "{v:?}");
        let rules = v["rules"].as_array().expect("rules array");
        assert!(!rules.is_empty(), "no rule costs attributed: {v:?}");
        let names: Vec<&str> = rules.iter().map(|r| r["rule"].as_str().unwrap()).collect();
        assert!(names.contains(&"on/1"), "missing on/1 in {names:?}");
        for rule in rules {
            assert!(rule["calls"].as_i64().unwrap() >= 1, "{rule:?}");
            assert!(rule["self_us"].as_i64().is_some(), "{rule:?}");
            assert!(rule["interval_ops"].as_i64().is_some(), "{rule:?}");
            assert!(
                matches!(rule["kind"].as_str(), Some("simple") | Some("static")),
                "{rule:?}"
            );
        }
        assert!(v["total_self_us"].as_i64().is_some(), "{v:?}");
        // `top` truncates the list without touching the totals.
        let top =
            parse_reply(&registry.dispatch("{\"cmd\":\"profile\",\"session\":\"prof\",\"top\":1}"));
        assert_eq!(top["rules"].as_array().unwrap().len(), 1, "{top:?}");
        assert_eq!(top["total_self_us"], v["total_self_us"]);
    }
}

#[test]
fn profile_disabled_session_reports_enabled_false() {
    let registry = Registry::new();
    run_workload(&registry, "off", ",\"profile\":false");
    let v = parse_reply(&registry.dispatch("{\"cmd\":\"profile\",\"session\":\"off\"}"));
    assert_eq!(v["enabled"], false, "{v:?}");
    assert!(v.get("rules").is_none(), "{v:?}");
    // stats still names the evaluator even when profiling is off (the
    // default mode follows RTEC_EVAL, so only the shape is pinned here).
    let stats = parse_reply(&registry.dispatch("{\"cmd\":\"stats\",\"session\":\"off\"}"));
    assert!(
        matches!(
            stats["evaluator"].as_str(),
            Some("interpreter") | Some("plan") | Some("optimized")
        ),
        "{stats:?}"
    );
    assert_eq!(stats["evaluator"], v["evaluator"], "{stats:?} vs {v:?}");
}

#[test]
fn profile_metrics_are_valid_and_bounded() {
    let registry = Registry::new();
    run_workload(&registry, "metrics", ",\"eval\":\"plan\"");
    let text = registry.render_metrics();
    rtec_obs::expo::validate(&text).expect("valid exposition with profile families");
    for family in [
        "rtec_profile_rule_self_us",
        "rtec_profile_rule_calls",
        "rtec_profile_rule_interval_ops",
    ] {
        let series = text
            .lines()
            .filter(|l| l.starts_with(&format!("{family}{{")))
            .count();
        assert!(series >= 1, "missing family {family}");
        // Bounded cardinality: at most top-N rules plus the "other"
        // rollup, for the single profiled session.
        assert!(
            series <= rtec_obs::profile::DEFAULT_TOP_N + 1,
            "{family}: {series} series exceeds top-N bound"
        );
        // Label keys render sorted (kind, rule, session).
        assert!(
            text.lines().any(|l| {
                l.starts_with(&format!("{family}{{")) && l.contains("session=\"metrics\"")
            }),
            "{family} missing session label"
        );
    }
    // Recognition-latency histograms observed something.
    assert!(
        text.contains("rtec_recognition_latency_us_count{stage=\"admission\"}"),
        "missing admission latency series"
    );
    assert!(
        text.contains("rtec_recognition_latency_us_count{stage=\"release\"}"),
        "missing release latency series"
    );
    // Tick-duration histogram carries the evaluator label.
    assert!(
        text.contains("rtec_service_tick_duration_us_count{eval=\"plan\"}"),
        "missing eval-labelled tick duration"
    );
}

/// A seeded tick stall crossing `slow_tick_ms` must promote the
/// offending tick's trace into a retained flight-recorder dump.
#[cfg(feature = "testkit")]
#[test]
fn seeded_slow_tick_promotes_a_flight_dump() {
    use rtec_service::fault::with_plan;
    use rtec_service::FaultPlan;

    let registry = Registry::new();
    let plan = FaultPlan::new().delay_tick(2, 30);
    let (_, injected) = with_plan(plan, || {
        run_workload(&registry, "slow", ",\"slow_tick_ms\":20")
    });
    assert_eq!(injected, 1, "the tick delay must fire exactly once");
    let v = parse_reply(
        &registry.dispatch("{\"cmd\":\"profile\",\"session\":\"slow\",\"dumps\":true}"),
    );
    let dumps = v["flight_dumps"].as_array().expect("flight_dumps array");
    assert!(!dumps.is_empty(), "no flight dump after seeded slow tick");
    let dump = &dumps[0];
    assert_eq!(dump["session"], "slow", "{dump:?}");
    assert_eq!(dump["reason"], "slow_tick", "{dump:?}");
    let traces = dump["traces"].as_array().expect("traces array");
    assert_eq!(traces.len(), 1, "slow-tick dump carries the one tick");
    let trace = &traces[0];
    assert_eq!(trace["tick"], 2, "{trace:?}");
    assert!(
        trace["elapsed_us"].as_i64().unwrap() >= 20_000,
        "stall not visible in trace: {trace:?}"
    );
    assert!(
        trace["rules"].as_array().is_some_and(|r| !r.is_empty()),
        "dump lost per-rule attribution: {trace:?}"
    );
}
